"""Deterministic discrete-event simulation kernel.

Public surface:

- :class:`Simulator` — the event loop and clock;
- :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` — waitables;
- :class:`Process`, :class:`Interrupted` — generator-based processes;
- :class:`ParallelSimulator`, :class:`Partitioner` — the LP-partitioned
  conservative-synchronization engine (drop-in for :class:`Simulator`);
- :class:`RngRegistry` — named deterministic random streams;
- :class:`Tracer` — structured trace recording.
"""

from .engine import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    SimulationError,
    Simulator,
    TimerHandle,
)
from .events import AllOf, AnyOf, Event, EventAlreadyTriggered, Timeout
from .parallel import LogicalProcess, ParallelSimulator, Partitioner
from .process import Interrupted, Process
from .rng import RngRegistry, derive_seed, jittered
from .trace import IntervalAccumulator, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "SimulationError",
    "TimerHandle",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Event",
    "EventAlreadyTriggered",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupted",
    "ParallelSimulator",
    "Partitioner",
    "LogicalProcess",
    "RngRegistry",
    "derive_seed",
    "jittered",
    "Tracer",
    "TraceRecord",
    "IntervalAccumulator",
]
