"""Generator-based simulation processes.

A process is a Python generator driven by the simulator.  It advances by
yielding *waitables*:

- an :class:`~repro.sim.events.Event` (including :class:`Timeout`,
  :class:`AllOf`, :class:`AnyOf`, or another :class:`Process`) — the process
  resumes when it fires, receiving the event's value (for ``AnyOf``, the
  winning child event);
- a plain ``float``/``int`` — shorthand for ``Timeout(delay)``;
- ``None`` — resume on the next scheduler pass at the same instant.

A :class:`Process` is itself an :class:`Event` that triggers with the
generator's return value, so processes can wait for each other and be
combined in conditions.  An exception escaping the generator fails the
process event; if nothing is waiting on it the exception propagates out of
the simulation run (crashes should be loud, not silent).
"""

from __future__ import annotations

import typing as _t

from .engine import Simulator
from .events import Event


class Interrupted(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: _t.Any = None) -> None:
        """Raised inside a process; *cause* says who interrupted it."""
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process (also an event; fires on completion)."""

    __slots__ = ("_gen", "_waiting_on", "_started")

    def __init__(self, sim: Simulator, gen: _t.Generator, name: str = "") -> None:
        """Wrap generator *gen* as a process and schedule its first step."""
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Event | None = None
        self._started = False
        sim.call_soon(self._resume, None)

    # -- driving ------------------------------------------------------------
    def _resume(self, fired: Event | None) -> None:
        if self.triggered:
            return  # finished or interrupted while this wakeup was in flight
        if fired is not None and fired is not self._waiting_on:
            return  # stale wakeup from an event we stopped waiting on
        self._waiting_on = None
        try:
            if not self._started:
                self._started = True
                target = next(self._gen)
            elif fired is None:
                target = self._gen.send(None)
            elif fired.exception is not None:
                target = self._gen.throw(fired.exception)
            else:
                target = self._gen.send(fired.value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except BaseException as exc:
            self._crash(exc)
            return
        self._wait_for(target)

    def _wait_for(self, target: _t.Any) -> None:
        if target is None:
            self.sim.call_soon(self._resume, None)
            return
        if isinstance(target, (int, float)):
            target = self.sim.timeout(target)
        if not isinstance(target, Event):
            self._crash(TypeError(
                f"process {self.name!r} yielded {target!r}; expected an Event, "
                "a delay in seconds, or None"
            ))
            return
        if target is self:
            self._crash(RuntimeError(f"process {self.name!r} waited on itself"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _crash(self, exc: BaseException) -> None:
        """Fail the process; re-raise if nobody is observing the failure."""
        observed = bool(self._callbacks)
        self.fail(exc)
        if not observed:
            raise exc

    # -- control ------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current instant.

        A process blocked on an event is detached from it; the event may
        still fire later without affecting the interrupted process.
        """
        if self.triggered:
            return
        self.sim.call_soon(self._do_interrupt, cause)

    def _do_interrupt(self, cause: _t.Any) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            target = self._gen.throw(Interrupted(cause))
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupted as exc:
            self.fail(exc)
            return
        except BaseException as exc:
            self._crash(exc)
            return
        self._wait_for(target)
