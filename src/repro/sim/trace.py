"""Structured trace recording and metric aggregation.

Every substrate emits :class:`TraceRecord` rows through a shared
:class:`Tracer` (``kind`` + free-form fields).  The analysis layer then
computes the paper's metrics — per-phase makespans, per-task intervals,
backoff-induced delays — from the trace instead of from ad-hoc counters
inside the models, which keeps the models honest and the metrics testable.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace row: timestamp, event kind, and arbitrary fields."""

    time: float
    kind: str
    fields: _t.Mapping[str, _t.Any]

    def __getitem__(self, key: str) -> _t.Any:
        return self.fields[key]

    def get(self, key: str, default: _t.Any = None) -> _t.Any:
        """Field lookup with a default, dict-style."""
        return self.fields.get(key, default)


class Tracer:
    """Collects trace records; supports filtering and per-kind counters.

    Tracing can be restricted with *keep* (a predicate on kind) to bound
    memory in very long runs; counters are maintained regardless.
    """

    def __init__(self, keep: _t.Callable[[str], bool] | None = None) -> None:
        """An empty tracer; *keep* filters which kinds are stored."""
        self.records: list[TraceRecord] = []
        self.counts: collections.Counter[str] = collections.Counter()
        self._keep = keep
        self._taps: list[_t.Callable[[TraceRecord], None]] = []
        #: Per-kind index over kept records: select(kind) is O(matches),
        #: not O(all records) — the analysis layer queries per kind a lot.
        self._by_kind: dict[str, list[TraceRecord]] = {}

    def record(self, time: float, kind: str, /, **fields: _t.Any) -> None:
        """Append a record at simulated *time* under *kind*.

        The first two parameters are positional-only so ``fields`` may
        itself contain a ``kind`` key (e.g. a workunit's map/reduce kind).

        Taps run after the record is stored, in registration order; an
        exception from a tap propagates to the emitter (observability
        bugs should be loud), skipping any later taps.
        """
        self.counts[kind] += 1
        rec = TraceRecord(time=time, kind=kind, fields=fields)
        if self._keep is None or self._keep(kind):
            self.records.append(rec)
            self._by_kind.setdefault(kind, []).append(rec)
        for tap in self._taps:
            tap(rec)

    def tap(self, fn: _t.Callable[[TraceRecord], None]) -> None:
        """Register a live observer called for every record (kept or not)."""
        self._taps.append(fn)

    def untap(self, fn: _t.Callable[[TraceRecord], None]) -> None:
        """Remove a previously registered tap (no-op if absent)."""
        if fn in self._taps:
            self._taps.remove(fn)

    # -- queries -------------------------------------------------------------
    def select(self, kind: str | None = None, /,
               **field_filters: _t.Any) -> list[TraceRecord]:
        """Records matching *kind* and with every given field equal.

        ``kind`` is positional-only so a field named "kind" can be
        filtered on (e.g. a workunit's map/reduce kind).
        """
        pool = self.records if kind is None else self._by_kind.get(kind, [])
        out = []
        for rec in pool:
            if any(rec.get(k, _MISSING) != v for k, v in field_filters.items()):
                continue
            out.append(rec)
        return out

    def first(self, kind: str, /, **field_filters: _t.Any) -> TraceRecord | None:
        """Earliest matching record, or None."""
        matches = self.select(kind, **field_filters)
        return matches[0] if matches else None

    def last(self, kind: str, /, **field_filters: _t.Any) -> TraceRecord | None:
        """Latest matching record, or None."""
        matches = self.select(kind, **field_filters)
        return matches[-1] if matches else None

    def times(self, kind: str, /, **field_filters: _t.Any) -> list[float]:
        """Timestamps of matching records, in order."""
        return [r.time for r in self.select(kind, **field_filters)]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Tracer {len(self.records)} records, {sum(self.counts.values())} seen>"


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


_MISSING = _Missing()


class IntervalAccumulator:
    """Tracks named open intervals and computes their durations.

    Used for per-task ``(assigned → reported)`` intervals, transfer
    durations, phase spans, etc.
    """

    def __init__(self) -> None:
        """No intervals open yet."""
        self._open: dict[_t.Hashable, float] = {}
        self.closed: list[tuple[_t.Hashable, float, float]] = []

    def open(self, key: _t.Hashable, time: float) -> None:
        """Start the interval *key* at *time* (must not be open)."""
        if key in self._open:
            raise ValueError(f"interval {key!r} already open")
        self._open[key] = time

    def close(self, key: _t.Hashable, time: float) -> float:
        """End interval *key* at *time*; returns its duration."""
        start = self._open.pop(key, None)
        if start is None:
            raise ValueError(f"interval {key!r} is not open")
        if time < start:
            raise ValueError(f"interval {key!r} closes before it opens")
        self.closed.append((key, start, time))
        return time - start

    def durations(self) -> list[float]:
        """Durations of all closed intervals, in closing order."""
        return [end - start for _key, start, end in self.closed]

    def open_items(self) -> list[tuple[_t.Hashable, float]]:
        """Still-open ``(key, opened_at)`` pairs, in opening order.

        Leaked spans (a task assigned but never reported under churn)
        show up here; the run summary reports them.
        """
        return list(self._open.items())

    def close_all(self, time: float) -> list[tuple[_t.Hashable, float, float]]:
        """Force-close every open interval at *time*; returns those closed.

        Intervals opened after *time* close with zero duration rather
        than going backwards — this is a drain for end-of-run leak
        accounting, not a time machine.
        """
        drained: list[tuple[_t.Hashable, float, float]] = []
        for key, start in self.open_items():
            del self._open[key]
            end = max(start, time)
            item = (key, start, end)
            self.closed.append(item)
            drained.append(item)
        return drained

    @property
    def open_count(self) -> int:
        """Intervals opened but not yet closed."""
        return len(self._open)
