"""Deterministic discrete-event simulation engine.

The :class:`Simulator` owns a priority queue of ``(time, priority, seq,
callable)`` entries.  ``seq`` is a monotonically increasing tie-breaker so
that callbacks scheduled for the same instant run in FIFO order — this is
what makes every run with the same seed bit-identical, an invariant the
property tests rely on.

The engine is callback-based at the bottom; generator-based *processes*
(:mod:`repro.sim.process`) are layered on top and are the main way model
code is written.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import math
import time as _time
import typing as _t

from .events import AllOf, AnyOf, Event, Timeout

#: Scheduling priority for ordinary callbacks.
PRIORITY_NORMAL = 0
#: Runs before normal callbacks at the same timestamp (used by the network
#: model to retract stale flow-completion events before new ones fire).
PRIORITY_HIGH = -1
#: Runs after normal callbacks at the same timestamp.
PRIORITY_LOW = 1


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling into the past)."""


#: Cancelled-entry count below which heap compaction is never attempted
#: (compacting tiny heaps would cost more than the memory it reclaims).
_COMPACT_MIN = 512


class TimerHandle:
    """Cancellation token returned by :meth:`Simulator.schedule_cancellable`.

    Cancellation is lazy: the queue entry stays in the heap but is skipped
    (without advancing the clock or the dispatch count) when it reaches the
    front.  This keeps cancellation O(1), which the incremental flow
    allocator relies on to retract superseded completion timers cheaply.
    When cancelled entries pile up the owning simulator compacts the heap
    (see :meth:`Simulator._note_cancel`), so they can never dominate heap
    memory at scale.
    """

    __slots__ = ("_sim", "active", "lp")

    def __init__(self, sim: "Simulator") -> None:
        """Handle for a scheduled callback (internal; see Simulator.call_at)."""
        self._sim = sim
        #: True while the callback is still due to run.
        self.active = True
        #: Owning logical process when scheduled on a
        #: :class:`repro.sim.parallel.ParallelSimulator` (None otherwise).
        self.lp: _t.Any = None

    def cancel(self) -> bool:
        """Retract the callback; returns False if already cancelled/fired."""
        if not self.active:
            return False
        self.active = False
        self._sim._note_cancel(self)
        return True


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, print, "five seconds in")
        sim.run(until=10.0)

    Model code normally does not call :meth:`schedule` directly but spawns
    processes via :meth:`process` and creates events via :meth:`event` /
    :meth:`timeout`.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        """An empty simulator whose clock starts at *start_time*."""
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, _t.Callable[..., None], tuple,
                                TimerHandle | None]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        #: Entries in the heap whose TimerHandle was cancelled (lazy deletion).
        self._cancelled = 0
        #: Number of callbacks executed so far (diagnostic).
        self.dispatch_count = 0
        #: High-water mark of live scheduled callbacks (diagnostic; the
        #: scale benchmarks report it as "peak queue depth").
        self.peak_pending = 0
        #: Optional observer ``(fn, args, wall_seconds)`` called after every
        #: dispatched callback — the hook behind the engine self-profiler
        #: (:class:`repro.obs.probes.SelfProfiler`).  Leave ``None`` to keep
        #: :meth:`step` on its timer-free fast path.
        self.dispatch_hook: _t.Callable[
            [_t.Callable[..., None], tuple, float], None] | None = None

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay: float, fn: _t.Callable[..., None], *args: _t.Any,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Run ``fn(*args)`` *delay* seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule {delay!r} seconds into the past")
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, next(self._seq), fn, args, None),
        )
        live = len(self._queue) - self._cancelled
        if live > self.peak_pending:
            self.peak_pending = live

    def schedule_cancellable(self, delay: float, fn: _t.Callable[..., None],
                             *args: _t.Any,
                             priority: int = PRIORITY_NORMAL) -> TimerHandle:
        """Like :meth:`schedule`, but returns a :class:`TimerHandle`.

        Calling ``handle.cancel()`` retracts the callback in O(1); a
        cancelled entry is skipped silently when it surfaces in the heap.
        """
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule {delay!r} seconds into the past")
        handle = TimerHandle(self)
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, next(self._seq), fn, args, handle),
        )
        live = len(self._queue) - self._cancelled
        if live > self.peak_pending:
            self.peak_pending = live
        return handle

    def at(self, when: float, fn: _t.Callable[..., None], *args: _t.Any,
           priority: int = PRIORITY_NORMAL) -> None:
        """Run ``fn(*args)`` at absolute simulated time *when*."""
        self.schedule(when - self._now, fn, *args, priority=priority)

    def call_soon(self, fn: _t.Callable[..., None], *args: _t.Any) -> None:
        """Run ``fn(*args)`` at the current instant, after pending callbacks."""
        self.schedule(0.0, fn, *args)

    # -- event / process factories -------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event` owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: _t.Any = None, name: str = "") -> Timeout:
        """Create an event that fires *delay* seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """Event that fires when all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """Event that fires when the first of *events* fires."""
        return AnyOf(self, events)

    def process(self, gen: _t.Generator, name: str = "") -> "Process":
        """Spawn a generator-based process; see :mod:`repro.sim.process`."""
        from .process import Process  # local import to avoid a cycle

        return Process(self, gen, name=name)

    # -- partitioning ----------------------------------------------------------
    def partition(self, key: _t.Hashable) -> _t.ContextManager[None]:
        """Scope for scheduling on behalf of partition *key* (no-op here).

        The sequential engine has a single event queue, so this returns a
        null context; :class:`repro.sim.parallel.ParallelSimulator`
        overrides it to route scheduling into the logical process that
        owns *key*.  Model-construction code uses it unconditionally and
        stays engine-agnostic.
        """
        return contextlib.nullcontext()

    # -- execution -------------------------------------------------------------
    def _note_cancel(self, handle: TimerHandle) -> None:
        """Account a lazy cancellation; compact the heap when they pile up.

        Cancelled entries are normally skipped when they surface
        (:meth:`_prune`), but a workload that cancels far more timers than
        it fires — e.g. the incremental allocator retracting superseded
        completion timers under heavy churn — would otherwise let dead
        entries dominate heap memory.  Once more than half the heap is
        cancelled (and past :data:`_COMPACT_MIN`), the live entries are
        reheapified.  Compaction preserves the dispatch order exactly:
        entry keys are unique, so a heap over any subset pops in the same
        relative order.
        """
        self._cancelled += 1
        if (self._cancelled > _COMPACT_MIN
                and self._cancelled * 2 > len(self._queue)):
            self._queue = [entry for entry in self._queue
                           if entry[5] is None or entry[5].active]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def _prune(self) -> None:
        """Drop cancelled entries from the front of the heap."""
        queue = self._queue
        while queue:
            handle = queue[0][5]
            if handle is None or handle.active:
                return
            heapq.heappop(queue)
            self._cancelled -= 1

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False when empty."""
        self._prune()
        if not self._queue:
            return False
        when, _prio, _seq, fn, args, handle = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive; cannot happen
            raise SimulationError("event queue went backwards in time")
        if handle is not None:
            handle.active = False  # fired; a later cancel() is a no-op
        self._now = when
        self.dispatch_count += 1
        hook = self.dispatch_hook
        if hook is None:
            fn(*args)
        else:
            t0 = _time.perf_counter()
            fn(*args)
            hook(fn, args, _time.perf_counter() - t0)
        return True

    def peek(self) -> float:
        """Timestamp of the next live scheduled callback, or ``inf`` if none."""
        self._prune()
        return self._queue[0][0] if self._queue else math.inf

    def run(self, until: float | None = None,
            until_event: Event | None = None,
            max_steps: int | None = None) -> None:
        """Run until the queue drains, *until* is reached, or *until_event* fires.

        When *until* is given the clock is advanced exactly to *until* even
        if the queue drains earlier, mirroring simpy semantics.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        steps = 0
        try:
            while self._queue and not self._stopped:
                self._prune()
                if not self._queue:
                    break
                if until_event is not None and until_event.triggered:
                    break
                if until is not None and self._queue[0][0] > until:
                    break
                if max_steps is not None and steps >= max_steps:
                    raise SimulationError(
                        f"exceeded max_steps={max_steps}; likely a livelock "
                        f"(t={self._now:.3f}, queue={len(self._queue)})"
                    )
                self.step()
                steps += 1
        finally:
            self._running = False
        # Advance the clock to `until` only when the run genuinely reached
        # it — never after stop() or an until_event fired with callbacks
        # still queued (the clock must not jump past pending events).
        self._prune()
        if (until is not None and self._now < until and not self._stopped
                and (until_event is None or not until_event.triggered)
                and (not self._queue or self._queue[0][0] > until)):
            self._now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) callbacks currently scheduled."""
        return len(self._queue) - self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self._now:.3f} pending={self.pending()}>"
