"""Simulation event primitives.

An :class:`Event` is a one-shot synchronisation point: it starts *pending*,
is *triggered* exactly once with an optional value (or an exception via
:meth:`Event.fail`), and then invokes every registered callback.  Processes
(see :mod:`repro.sim.process`) wait on events by yielding them.

Composite conditions :class:`AllOf` / :class:`AnyOf` are themselves events,
so they compose: ``yield AnyOf(sim, [transfer.done, timeout])`` is the idiom
used throughout the BOINC client for "transfer finished or timed out".
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


class EventAlreadyTriggered(RuntimeError):
    """Raised when :meth:`Event.trigger` is called on a non-pending event."""


class Event:
    """A one-shot simulation event.

    Parameters
    ----------
    sim:
        Owning simulator; callbacks run through its scheduler so that event
        processing is deterministic and ordered by trigger time.
    name:
        Optional label used in ``repr`` and traces.
    """

    __slots__ = ("sim", "name", "lp", "_callbacks", "_triggered", "_value",
                 "_exc")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        """An untriggered event on *sim* (name aids tracing)."""
        self.sim = sim
        self.name = name
        #: Home logical process under a parallel engine (None on the
        #: sequential engine).  Stamped by the ParallelSimulator event
        #: factories; waiter callbacks are delivered into this LP.
        self.lp: _t.Any = None
        self._callbacks: list[_t.Callable[[Event], None]] | None = []
        self._triggered = False
        self._value: _t.Any = None
        self._exc: BaseException | None = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or with failure)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True once triggered successfully (no exception)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> _t.Any:
        """The value the event was triggered with.

        Raises the failure exception if the event failed, and
        :class:`RuntimeError` if it has not fired yet.
        """
        if not self._triggered:
            raise RuntimeError(f"event {self!r} has not been triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The exception the event failed with, if any."""
        return self._exc

    # -- triggering -------------------------------------------------------
    def trigger(self, value: _t.Any = None) -> "Event":
        """Fire the event successfully, delivering *value* to waiters."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception; waiting processes see it raised."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self._dispatch()
        return self

    def succeed_if_pending(self, value: _t.Any = None) -> bool:
        """Trigger unless already triggered; returns whether it fired now."""
        if self._triggered:
            return False
        self.trigger(value)
        return True

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            self.sim.call_soon(cb, self)

    # -- waiting ----------------------------------------------------------
    def add_callback(self, cb: _t.Callable[["Event"], None]) -> None:
        """Register *cb*; runs at trigger time (immediately if already fired)."""
        if self._callbacks is None:
            self.sim.call_soon(cb, self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "triggered" if self._triggered else "pending"
        label = self.name or hex(id(self))
        return f"<{type(self).__name__} {label} {state}>"


class Timeout(Event):
    """An event that fires automatically after *delay* simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: _t.Any = None,
                 name: str = "") -> None:
        """An event that self-triggers with *value* after *delay*."""
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name or f"timeout({delay:g})")
        self.delay = float(delay)
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: _t.Any) -> None:
        if not self._triggered:
            self.trigger(value)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: _t.Iterable[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events: tuple[Event, ...] = tuple(events)
        if not self.events:
            raise ValueError(f"{type(self).__name__} requires at least one event")
        self._remaining = len(self.events)
        for ev in self.events:
            ev.add_callback(self._child_fired)

    def _child_fired(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired.

    Its value is the list of child values in construction order.  If any
    child fails, the condition fails with that child's exception (first
    failure wins).
    """

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.exception is not None:
            self.fail(ev.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.trigger([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires as soon as the first child event fires.

    Its value is the child event itself (so the waiter can tell *which*
    fired).  A failing first child fails the condition.
    """

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.exception is not None:
            self.fail(ev.exception)
            return
        self.trigger(ev)
