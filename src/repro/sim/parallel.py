"""Partitioned parallel discrete-event engine (conservative synchronization).

:class:`ParallelSimulator` shards the single event heap of
:class:`~repro.sim.engine.Simulator` into per-partition *logical
processes* (LPs).  A :class:`Partitioner` assigns every volunteer host —
and with it the host's client state machine, timers, and flow callbacks —
to one LP; the project server and data server own the dedicated LP 0.
Scheduling is routed by affinity: an entry scheduled while LP *i* is
executing (or inside a :meth:`~ParallelSimulator.partition` scope) lands
in LP *i*'s heap, and an event waiter's wakeup is delivered into the
*waiter's* home LP, which is what makes a scheduler RPC reply or a
cross-host data transfer a **cross-partition send**.

Execution is organised into conservative safe windows.  Each round the
engine takes the globally earliest pending timestamp ``t_min`` and a
*lookahead* horizon ``t_min + lookahead`` — lookahead being the smallest
access-link latency any cross-partition message must pay (derived by
:class:`repro.core.system.VolunteerCloud` from the deployment's
:class:`~repro.net.topology.LinkSpec` latencies).  Every LP may execute
all of its events below the horizon before any LP crosses it; the window
then closes and a new horizon is computed — the classic barrier-
synchronous conservative algorithm (a null-message-free safe window).

Within a window, LP batches are executed under a **deterministic merge**:
events run in global ``(time, priority, seq)`` order, exactly the order
the sequential engine uses.  This serves two masters at once.  First, it
is the *sequential-equivalence oracle* — same seed produces byte-identical
traces on both engines, for any LP count, which tier-1 property tests and
the parallel benchmark assert.  Second, on CPython with the GIL the model
objects share one heap and per-event Python execution cannot overlap
anyway; the merge makes that safe and exact, while the window/batch
structure (per-LP heaps, horizon accounting, cross-partition delivery
counts) is precisely what a free-threaded or multi-process executor would
parallelise.  Deliveries that arrive *below* the lookahead (zero-delay
event wakeups across partitions) are counted per LP — they measure how
much protocol restructuring a fully distributed backend still needs, and
are exported as the ``sim.lp.*`` observability probes.
"""

from __future__ import annotations

import contextlib
import heapq
import math
import time as _time
import typing as _t

from .engine import (
    _COMPACT_MIN,
    PRIORITY_NORMAL,
    SimulationError,
    Simulator,
    TimerHandle,
)
from .events import AllOf, AnyOf, Event, Timeout


class Partitioner:
    """Deterministic host-to-LP assignment with a dedicated server LP.

    Keys are arbitrary hashables (host names in practice).  ``None`` —
    and anything the caller pins with it — maps to LP 0, the server/
    data-server partition.  Other keys are dealt round-robin over LPs
    ``1..n_lps-1`` in first-seen order, which is deterministic because
    deployment construction order is deterministic.  With a single LP
    everything maps to LP 0 and the engine degenerates to a sharded
    sequential simulator.
    """

    def __init__(self, n_lps: int) -> None:
        """A partitioner over *n_lps* logical processes (>= 1)."""
        if n_lps < 1:
            raise ValueError(f"n_lps must be >= 1, got {n_lps}")
        self.n_lps = n_lps
        self._assigned: dict[_t.Hashable, int] = {}
        self._next = 0

    def assign(self, key: _t.Hashable) -> int:
        """The LP index owning *key* (stable across repeated calls)."""
        if key is None or self.n_lps == 1:
            return 0
        lp = self._assigned.get(key)
        if lp is None:
            lp = 1 + self._next % (self.n_lps - 1)
            self._next += 1
            self._assigned[key] = lp
        return lp

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Partitioner {len(self._assigned)} keys over {self.n_lps} LPs>"


class LogicalProcess:
    """One event-queue shard plus its execution and channel statistics."""

    __slots__ = ("index", "heap", "cancelled", "executed", "cross_in",
                 "below_lookahead", "lag_sum", "lag_windows", "lag_max")

    def __init__(self, index: int) -> None:
        """An empty LP shard numbered *index* (0 = server partition)."""
        self.index = index
        #: This LP's event heap (same entry layout as the sequential engine).
        self.heap: list[tuple[float, int, int, _t.Callable[..., None], tuple,
                              TimerHandle | None]] = []
        #: Lazily-cancelled entries still buried in the heap.
        self.cancelled = 0
        #: Events this LP has executed.
        self.executed = 0
        #: Cross-partition deliveries received (scheduled by another LP).
        self.cross_in = 0
        #: Cross-partition deliveries that arrived with less delay than the
        #: lookahead — the couplings a distributed backend must restructure.
        self.below_lookahead = 0
        #: Horizon-lag accounting: distance of this LP's next event from the
        #: window base, summed per window (exported as ``sim.lp.lag``).
        self.lag_sum = 0.0
        self.lag_windows = 0
        self.lag_max = 0.0

    def pending(self) -> int:
        """Live (non-cancelled) entries in this LP's heap."""
        return len(self.heap) - self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LP{self.index} pending={self.pending()} "
                f"executed={self.executed}>")


class ParallelSimulator(Simulator):
    """LP-partitioned conservative-synchronization drop-in for :class:`Simulator`.

    Same public surface as the sequential engine — model code does not
    change — plus partition routing (:meth:`partition`), the lookahead
    knob, and per-LP statistics (:meth:`lp_stats`).  See the module
    docstring for the synchronization algorithm and the determinism
    contract (byte-identical traces versus the sequential engine).
    """

    def __init__(self, start_time: float = 0.0, n_lps: int = 1,
                 lookahead: float = 0.0,
                 partitioner: Partitioner | None = None) -> None:
        """An empty parallel simulator with *n_lps* logical processes.

        *lookahead* is the conservative window slack in simulated seconds
        (usually derived from access-link latency and updated via
        :meth:`shrink_lookahead` as hosts join); *partitioner* defaults to
        a fresh :class:`Partitioner` over *n_lps*.
        """
        super().__init__(start_time)
        if lookahead < 0 or math.isnan(lookahead):
            raise ValueError(f"lookahead must be >= 0, got {lookahead}")
        self.partitioner = partitioner or Partitioner(n_lps)
        if self.partitioner.n_lps != n_lps:
            raise ValueError("partitioner.n_lps disagrees with n_lps")
        #: The logical processes, index 0 being the server partition.
        self.lps: list[LogicalProcess] = [LogicalProcess(i)
                                          for i in range(n_lps)]
        #: Conservative window slack in simulated seconds.
        self.lookahead = float(lookahead)
        #: Safe windows executed so far.
        self.window_count = 0
        #: Events executed across all windows (== dispatch_count after run).
        self.window_events_total = 0
        #: Largest single-window event batch.
        self.window_events_max = 0
        self._current: LogicalProcess = self.lps[0]
        self._dispatching = False
        self._live = 0

    # -- partition routing -----------------------------------------------------
    @property
    def lp_count(self) -> int:
        """Number of logical processes."""
        return len(self.lps)

    def partition(self, key: _t.Hashable) -> _t.ContextManager[None]:
        """Scope within which scheduling targets *key*'s logical process."""
        return self._pinned(self.lps[self.partitioner.assign(key)])

    @contextlib.contextmanager
    def _pinned(self, lp: LogicalProcess) -> _t.Iterator[None]:
        """Temporarily make *lp* the routing target for new entries."""
        prev = self._current
        self._current = lp
        try:
            yield
        finally:
            self._current = prev

    def shrink_lookahead(self, seconds: float) -> float:
        """Lower the lookahead to *seconds* if smaller; returns the new value.

        Called as hosts join a deployment: the safe-window slack is the
        *minimum* latency any cross-partition message pays, so a new host
        with a faster access link can only shrink it.
        """
        if seconds < 0 or math.isnan(seconds):
            raise ValueError(f"lookahead must be >= 0, got {seconds}")
        if seconds < self.lookahead:
            self.lookahead = float(seconds)
        return self.lookahead

    def _target_lp(self, fn: _t.Callable[..., None]) -> LogicalProcess:
        """The LP an entry for *fn* belongs to.

        Bound methods of an :class:`Event` (process resumptions, timeout
        firings, condition wakeups) are delivered into the event's home
        LP; everything else inherits the current routing target — the
        executing LP during dispatch, or the innermost
        :meth:`partition` scope during model construction.
        """
        owner = getattr(fn, "__self__", None)
        lp = getattr(owner, "lp", None)
        return lp if lp is not None else self._current

    def _account_push(self, lp: LogicalProcess, delay: float) -> None:
        """Live-count/peak bookkeeping plus cross-partition send stats."""
        self._live += 1
        if self._live > self.peak_pending:
            self.peak_pending = self._live
        if self._dispatching and lp is not self._current:
            lp.cross_in += 1
            if delay < self.lookahead:
                lp.below_lookahead += 1

    # -- scheduling ------------------------------------------------------------
    def schedule(self, delay: float, fn: _t.Callable[..., None], *args: _t.Any,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Run ``fn(*args)`` *delay* seconds from now, in its owner's LP."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(
                f"cannot schedule {delay!r} seconds into the past")
        lp = self._target_lp(fn)
        heapq.heappush(
            lp.heap,
            (self._now + delay, priority, next(self._seq), fn, args, None))
        self._account_push(lp, delay)

    def schedule_cancellable(self, delay: float, fn: _t.Callable[..., None],
                             *args: _t.Any,
                             priority: int = PRIORITY_NORMAL) -> TimerHandle:
        """Like :meth:`schedule` but returns a cancellation handle."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(
                f"cannot schedule {delay!r} seconds into the past")
        lp = self._target_lp(fn)
        handle = TimerHandle(self)
        handle.lp = lp
        heapq.heappush(
            lp.heap,
            (self._now + delay, priority, next(self._seq), fn, args, handle))
        self._account_push(lp, delay)
        return handle

    def _note_cancel(self, handle: TimerHandle) -> None:
        """Per-LP lazy-cancellation accounting with opportunistic compaction."""
        self._live -= 1
        lp: LogicalProcess = handle.lp
        lp.cancelled += 1
        if (lp.cancelled > _COMPACT_MIN
                and lp.cancelled * 2 > len(lp.heap)):
            lp.heap = [entry for entry in lp.heap
                       if entry[5] is None or entry[5].active]
            heapq.heapify(lp.heap)
            lp.cancelled = 0

    # -- event / process factories ----------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh pending event homed in the current partition."""
        ev = Event(self, name=name)
        ev.lp = self._current
        return ev

    def timeout(self, delay: float, value: _t.Any = None,
                name: str = "") -> Timeout:
        """An auto-firing event homed in the current partition."""
        ev = Timeout(self, delay, value=value, name=name)
        ev.lp = self._current
        return ev

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """All-of condition homed in the current partition."""
        ev = AllOf(self, events)
        ev.lp = self._current
        return ev

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """Any-of condition homed in the current partition."""
        ev = AnyOf(self, events)
        ev.lp = self._current
        return ev

    def process(self, gen: _t.Generator, name: str = "") -> "Process":
        """Spawn a generator process homed in the current partition."""
        from .process import Process  # local import to avoid a cycle

        proc = Process(self, gen, name=name)
        proc.lp = self._current
        return proc

    # -- execution ---------------------------------------------------------------
    def _head(self) -> tuple[tuple[float, int, int], LogicalProcess] | None:
        """Globally earliest live entry key and its LP (fronts pruned)."""
        best: tuple[float, int, int] | None = None
        best_lp: LogicalProcess | None = None
        for lp in self.lps:
            heap = lp.heap
            while heap:
                handle = heap[0][5]
                if handle is None or handle.active:
                    break
                heapq.heappop(heap)
                lp.cancelled -= 1
            if heap:
                entry = heap[0]
                key = (entry[0], entry[1], entry[2])
                if best is None or key < best:
                    best = key
                    best_lp = lp
        if best is None:
            return None
        return best, best_lp  # type: ignore[return-value]

    def _prune(self) -> None:
        """Drop cancelled entries from the front of every LP heap."""
        for lp in self.lps:
            heap = lp.heap
            while heap:
                handle = heap[0][5]
                if handle is None or handle.active:
                    break
                heapq.heappop(heap)
                lp.cancelled -= 1

    def _execute(self, lp: LogicalProcess) -> None:
        """Pop and dispatch *lp*'s front entry (the global minimum)."""
        when, _prio, _seq, fn, args, handle = heapq.heappop(lp.heap)
        if when < self._now:  # pragma: no cover - defensive; cannot happen
            raise SimulationError("event queue went backwards in time")
        if handle is not None:
            handle.active = False  # fired; a later cancel() is a no-op
        self._now = when
        self.dispatch_count += 1
        self._live -= 1
        lp.executed += 1
        self._current = lp
        self._dispatching = True
        try:
            hook = self.dispatch_hook
            if hook is None:
                fn(*args)
            else:
                t0 = _time.perf_counter()
                fn(*args)
                hook(fn, args, _time.perf_counter() - t0)
        finally:
            self._dispatching = False

    def step(self) -> bool:
        """Execute the globally next callback.  Returns False when empty."""
        head = self._head()
        if head is None:
            return False
        self._execute(head[1])
        return True

    def peek(self) -> float:
        """Timestamp of the next live callback across all LPs (inf if none)."""
        head = self._head()
        return head[0][0] if head is not None else math.inf

    def pending(self) -> int:
        """Live (non-cancelled) callbacks scheduled across all LPs."""
        return self._live

    def run(self, until: float | None = None,
            until_event: Event | None = None,
            max_steps: int | None = None) -> None:
        """Run conservative safe windows until done (sequential semantics).

        Window loop: take the globally earliest timestamp ``t_min``,
        open the horizon ``t_min + lookahead``, and execute every event
        below it — in deterministic global ``(time, priority, seq)``
        merge order — before recomputing.  Stop/until/until_event/
        max_steps semantics match :meth:`Simulator.run` event for event,
        which is what makes the two engines trace-identical.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        steps = 0
        try:
            while not self._stopped:
                if until_event is not None and until_event.triggered:
                    break
                head = self._head()
                if head is None:
                    break
                t_min = head[0][0]
                if until is not None and t_min > until:
                    break
                horizon = t_min + self.lookahead
                self.window_count += 1
                for lp in self.lps:
                    if lp.heap:
                        lag = lp.heap[0][0] - t_min
                        lp.lag_sum += lag
                        lp.lag_windows += 1
                        if lag > lp.lag_max:
                            lp.lag_max = lag
                window_events = 0
                while not self._stopped:
                    if until_event is not None and until_event.triggered:
                        break
                    head = self._head()
                    if head is None:
                        break
                    when = head[0][0]
                    if when > horizon or (until is not None and when > until):
                        break
                    if max_steps is not None and steps >= max_steps:
                        raise SimulationError(
                            f"exceeded max_steps={max_steps}; likely a "
                            f"livelock (t={self._now:.3f}, "
                            f"queue={self.pending()})")
                    self._execute(head[1])
                    steps += 1
                    window_events += 1
                self.window_events_total += window_events
                if window_events > self.window_events_max:
                    self.window_events_max = window_events
                if window_events == 0:
                    break  # a guard fired before the window's first event
        finally:
            self._running = False
        # Mirror the sequential engine's end-of-run clock advance exactly.
        if (until is not None and self._now < until and not self._stopped
                and (until_event is None or not until_event.triggered)):
            head = self._head()
            if head is None or head[0][0] > until:
                self._now = until

    # -- statistics ----------------------------------------------------------------
    def mean_window_events(self) -> float:
        """Average events executed per safe window (0 before any window)."""
        if self.window_count == 0:
            return 0.0
        return self.window_events_total / self.window_count

    def cross_deliveries(self) -> int:
        """Total cross-partition deliveries received, all LPs."""
        return sum(lp.cross_in for lp in self.lps)

    def lp_stats(self) -> list[dict[str, _t.Any]]:
        """Per-LP statistics rows (JSON-able) for probes and benchmarks."""
        rows = []
        for lp in self.lps:
            rows.append({
                "lp": lp.index,
                "executed": lp.executed,
                "pending": lp.pending(),
                "cross_in": lp.cross_in,
                "below_lookahead": lp.below_lookahead,
                "lag_mean": (lp.lag_sum / lp.lag_windows
                             if lp.lag_windows else 0.0),
                "lag_max": lp.lag_max,
            })
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ParallelSimulator t={self._now:.3f} lps={self.lp_count} "
                f"pending={self.pending()} windows={self.window_count}>")
