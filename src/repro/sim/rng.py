"""Deterministic named random streams.

Simulation components never share a single RNG: each draws from its own
named stream so that adding a component (or reordering calls inside one)
does not perturb the randomness seen by the others.  Streams are derived
from the root seed with :class:`numpy.random.SeedSequence` spawning keyed
by the stream name, so ``RngRegistry(42).stream("client.3")`` is identical
across runs and across machines.
"""

from __future__ import annotations

import hashlib
import zlib

import numpy as np


def derive_seed(seed: int, *labels: object) -> int:
    """A stable derived seed for a labelled sub-experiment.

    Campaign grids fan one base seed out into many independent cells;
    hashing ``(seed, *labels)`` gives each cell its own well-separated
    root seed without any coordination, and the derivation is stable
    across runs, machines, and Python versions (unlike ``hash()``)::

        >>> derive_seed(1, "churn", 0) == derive_seed(1, "churn", 0)
        True
        >>> derive_seed(1, "churn", 0) != derive_seed(1, "churn", 1)
        True

    Returns a non-negative int that fits the ``seed >= 0`` contract of
    :class:`RngRegistry` and :class:`repro.core.CloudSpec`.
    """
    if seed < 0:
        raise ValueError(f"seed must be >= 0, got {seed}")
    digest = hashlib.sha256()
    digest.update(str(seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x00" + str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


class RngRegistry:
    """Factory for reproducible, independent named random streams."""

    def __init__(self, seed: int = 0) -> None:
        """Root the registry at *seed*; streams derive from it by name."""
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so state advances across calls — but the stream's initial
        state depends only on ``(seed, name)``.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Key the child seed by a stable hash of the name so stream
            # creation order is irrelevant.
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry with a seed derived from this one (for sub-scenarios)."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"


def jittered(rng: np.random.Generator, base: float, rel_jitter: float) -> float:
    """*base* multiplied by a uniform factor in ``[1-rel_jitter, 1+rel_jitter]``.

    The standard way model code perturbs deterministic costs (compute times,
    poll periods) without changing their mean.
    """
    if rel_jitter < 0 or rel_jitter >= 1:
        raise ValueError(f"rel_jitter must be in [0, 1), got {rel_jitter}")
    if rel_jitter == 0:
        return base
    return base * (1.0 + rng.uniform(-rel_jitter, rel_jitter))
