"""Command-line interface: ``python -m repro <command>``.

Each subcommand regenerates one of the paper's artefacts (or an extension
study) and prints it; they are thin wrappers over
:mod:`repro.experiments`, so everything is also available as a library.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import typing as _t


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import PAPER_TABLE1, run_table1
    from .experiments.table1 import render

    records = run_table1(PAPER_TABLE1, seed=args.seed)
    print(render(records))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from .experiments import run_fig4

    result = run_fig4(base_seed=args.seed)
    print(result.render(width=args.width))
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from .experiments.ablations import run_all

    for o in run_all(seed=args.seed):
        print(f"{o.name:24s} total {o.baseline_total:8.1f}s -> "
              f"{o.mitigated_total:8.1f}s ({o.improvement * 100:+5.1f}%)")
    return 0


def _cmd_nat(args: argparse.Namespace) -> int:
    from .experiments import run_ladder_study

    for o in run_ladder_study(seed=args.seed):
        print(f"{o.label:16s} total {o.total:7.1f}s  peer {o.peer_fetches:4d}"
              f"  fallback {o.server_fallbacks:4d}  {o.method_counts}")
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    from .experiments import run_churn

    o = run_churn(seed=args.seed, mean_on_s=args.mean_on,
                  mean_off_s=args.mean_off,
                  departure_prob=args.departures)
    print(f"total {o.total:.1f}s  transitions {o.transitions}  "
          f"departed {o.departed}  replacements {o.replacement_results}  "
          f"peer {o.peer_fetches} / fallback {o.server_fallbacks}")
    return 0


def _cmd_planetlab(args: argparse.Namespace) -> int:
    from .experiments import run_lan_vs_internet

    for label, d in run_lan_vs_internet(seed=args.seed).items():
        print(f"{label:18s} total {d.total:8.0f}s  "
              f"map {d.metrics.map_stats.mean:6.0f}s  "
              f"reduce {d.metrics.reduce_stats.mean:6.0f}s  "
              f"server {d.server_gb_served:.2f}GB  peer {d.peer_gb:.2f}GB")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .analysis import job_metrics, trace_to_csv
    from .core import BoincMRConfig, CloudSpec, MapReduceJobSpec, VolunteerCloud
    from .obs import chrome_trace_json, trace_to_jsonl

    mr_config = (BoincMRConfig() if args.mr
                 else BoincMRConfig(upload_map_outputs=True,
                                    reduce_from_peers=False))
    cloud = VolunteerCloud.from_spec(CloudSpec(
        seed=args.seed, mr_config=mr_config, allocator=args.allocator,
        engine=args.engine, sim_workers=args.sim_workers))
    cloud.add_volunteers(args.nodes, mr=args.mr)
    if args.trace_out or args.faults:
        cloud.attach_observability(spans=True, probes=False)
    if args.faults:
        injector = cloud.apply_faults(args.faults)
    job = cloud.run_job(MapReduceJobSpec(
        "job", n_maps=args.maps, n_reducers=args.reducers,
        input_size=args.input_gb * 1e9))
    m = job_metrics(cloud.tracer, "job")
    print(f"map {m.map_stats.mean:.1f}s [{m.map_stats.mean_discard_slowest:.1f}s]"
          f"  reduce {m.reduce_stats.mean:.1f}s"
          f"  total {m.total:.1f}s  transition gap {m.transition_gap:.1f}s")
    if args.engine == "parallel":
        sim = cloud.sim
        print(f"parallel engine: {sim.lp_count} LPs  "
              f"{sim.window_count} windows "
              f"(mean {sim.mean_window_events():.1f} events/window)  "
              f"{sim.cross_deliveries()} cross-LP deliveries  "
              f"lookahead {sim.lookahead * 1e3:.1f}ms")
    if args.trace_out:
        builder = cloud.finish_observability()
        if args.trace_format == "chrome":
            text = chrome_trace_json(builder)
        elif args.trace_format == "jsonl":
            text = trace_to_jsonl(cloud.tracer)
        else:
            text = trace_to_csv(cloud.tracer)
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        leaked = len(builder.leaked) if builder is not None else 0
        print(f"wrote {args.trace_format} trace to {args.trace_out} "
              f"({len(cloud.tracer)} records, {leaked} leaked spans)")
    if args.faults:
        report = cloud.audit(job)
        print(f"faults injected: {len(injector.events)} "
              f"(plan {injector.plan_name!r})")
        print(report.render())
        if not report.ok:
            return 1
    return 0


def _render_fault_log(injector: _t.Any) -> str:
    lines = [f"plan {injector.plan_name!r}: "
             f"{len(injector.events)} fault(s) injected"]
    for ev in injector.events:
        lines.append(f"  {ev['fault']:>4s}  {ev['kind']:18s} "
                     f"t={ev['begin']:7.1f}..{ev['end']:7.1f}  {ev['target']}")
    return "\n".join(lines)


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .core import CloudSpec, MapReduceJobSpec, VolunteerCloud
    from .faults import BUILTIN_PLANS, resolve_plan
    from .obs import chrome_trace_json

    if args.list_plans:
        for name in sorted(BUILTIN_PLANS):
            plan = BUILTIN_PLANS[name]
            print(f"{name:22s} {len(plan.faults):2d} faults  "
                  f"{plan.description}")
        return 0
    if args.plan is None:
        print("chaos: a plan name or TOML path is required "
              "(or --list-plans)", file=sys.stderr)
        return 2
    plan = resolve_plan(args.plan)
    cloud = VolunteerCloud.from_spec(CloudSpec(seed=args.seed))
    cloud.add_volunteers(args.nodes, mr=True)
    cloud.attach_observability(spans=True, probes=False)
    injector = cloud.apply_faults(plan)
    job = cloud.submit(MapReduceJobSpec(
        "chaos", n_maps=args.maps, n_reducers=args.reducers,
        input_size=args.input_gb * 1e9))
    diagnosis = None
    try:
        cloud.run_until(job.done)
    except Exception as exc:  # noqa: BLE001 — any failure becomes a diagnosis
        diagnosis = f"{type(exc).__name__}: {exc}"
    report = cloud.audit(job)
    builder = cloud.finish_observability()
    print(_render_fault_log(injector))
    if diagnosis is None:
        print(f"job finished at t={job.finished_at:g}s")
    else:
        print(f"job failed with diagnosis: {diagnosis}")
    print(report.render())
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(chrome_trace_json(builder))
        print(f"wrote chrome trace to {args.trace_out}")
    if args.summary_out:
        summary = {
            "plan": injector.plan_name,
            "seed": args.seed,
            "faults": injector.events,
            "job_done": diagnosis is None,
            "diagnosis": diagnosis,
            "audit": report.to_dict(),
        }
        with open(args.summary_out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"wrote run summary to {args.summary_out}")
    return 0 if report.ok else 1


def _resolve_campaign_grid(args: argparse.Namespace) -> _t.Any:
    """Resolve ``--grid``/``--seeds``/``--faults`` into a grid (or raise)."""
    from .experiments import resolve_grid

    seeds = None
    if args.seeds:
        try:
            seeds = tuple(_seed_type(tok) for tok in args.seeds.split(","))
        except argparse.ArgumentTypeError as exc:
            raise ValueError(f"bad --seeds value: {exc}") from exc
    return resolve_grid(args.grid, seeds=seeds, faults=args.faults)


def _cmd_campaign_coordinate(args: argparse.Namespace) -> int:
    import json

    from .analysis import aggregate_store, render_campaign_table
    from .campaign import CampaignCoordinator, ResultStore

    try:
        grid = _resolve_campaign_grid(args)
    except (ValueError, OSError) as exc:
        print(f"campaign coordinate: {exc}", file=sys.stderr)
        return 2
    coordinator = CampaignCoordinator(
        grid, ResultStore(args.out), spawn=args.spawn, host=args.bind,
        port=args.port, timeout_s=args.timeout, retries=args.retries,
        resume=args.resume, heartbeat_s=args.heartbeat,
        steal_after_s=args.steal_after, shard_dir=args.shard_dir,
        chaos_kills=args.kill_workers,
        chaos_interval_s=args.kill_interval,
        wall_limit_s=args.wall_limit,
        echo=None if args.quiet else print)
    report = coordinator.run()
    print(report.render())
    if report.ran or report.skipped:
        print(render_campaign_table(
            aggregate_store(args.out),
            title=f"campaign {grid.name!r} — headline metric by group"))
    if args.summary_out:
        with open(args.summary_out, "w", encoding="utf-8") as fh:
            json.dump(coordinator.summary(), fh, indent=2)
            fh.write("\n")
        print(f"wrote control-plane summary to {args.summary_out}")
    print(f"results in {args.out} "
          f"(resume with --resume to skip completed cells)")
    return 0 if report.ok else 1


def _cmd_campaign_work(args: argparse.Namespace) -> int:
    from .campaign import CampaignWorker, ResultStore

    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        print(f"campaign work: address must be HOST:PORT, "
              f"got {args.address!r}", file=sys.stderr)
        return 2
    worker = CampaignWorker(
        host, int(port), worker_id=args.id,
        shard=ResultStore(args.shard) if args.shard else None,
        max_cells=args.max_cells)
    completed = worker.run()
    print(f"worker {worker.worker_id}: completed {completed} cell(s)")
    return 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from .campaign import merge_stores

    try:
        merged = merge_stores(args.out, args.shards)
    except (ValueError, OSError) as exc:
        print(f"campaign merge: {exc}", file=sys.stderr)
        return 2
    ok = sum(1 for r in merged.values() if r.ok)
    print(f"merged {len(args.shards)} shard(s) into {args.out}: "
          f"{len(merged)} cell(s), {ok} ok, {len(merged) - ok} failed")
    return 0


def _cmd_campaign_diff(args: argparse.Namespace) -> int:
    from .campaign import diff_stores

    try:
        mismatches = diff_stores(args.left, args.right)
    except (ValueError, OSError) as exc:
        print(f"campaign diff: {exc}", file=sys.stderr)
        return 2
    for line in mismatches:
        print(line)
    if mismatches:
        print(f"{len(mismatches)} mismatch(es) between "
              f"{args.left} and {args.right}")
        return 1
    print(f"stores {args.left} and {args.right} are result-equivalent")
    return 0


_CAMPAIGN_MODES: dict[str, _t.Callable[[argparse.Namespace], int]] = {
    "coordinate": _cmd_campaign_coordinate,
    "work": _cmd_campaign_work,
    "merge": _cmd_campaign_merge,
    "diff": _cmd_campaign_diff,
}


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .analysis import aggregate_store, render_campaign_table
    from .campaign import CampaignRunner, ResultStore
    from .experiments import GRID_BUILDERS, resolve_grid

    mode = getattr(args, "mode", None)
    if mode is not None:
        return _CAMPAIGN_MODES[mode](args)
    if args.list_grids:
        for name in sorted(GRID_BUILDERS):
            grid = GRID_BUILDERS[name]()
            print(f"{name:12s} {len(grid):3d} cells  {grid.description}")
        return 0
    if args.aggregate:
        if not pathlib.Path(args.aggregate).exists():
            print(f"campaign: no such store: {args.aggregate}",
                  file=sys.stderr)
            return 2
        try:
            groups = aggregate_store(args.aggregate)
        except (ValueError, OSError) as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
        print(render_campaign_table(
            groups, title=f"campaign store {args.aggregate} — "
                          f"headline metric by group"))
        return 0
    seeds = None
    if args.seeds:
        try:
            seeds = tuple(_seed_type(tok) for tok in args.seeds.split(","))
        except argparse.ArgumentTypeError as exc:
            print(f"campaign: bad --seeds value: {exc}", file=sys.stderr)
            return 2
    try:
        grid = resolve_grid(args.grid, seeds=seeds, faults=args.faults)
    except (ValueError, OSError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    runner = CampaignRunner(
        grid, ResultStore(args.out), workers=args.workers,
        timeout_s=args.timeout, retries=args.retries, resume=args.resume,
        echo=None if args.quiet else print)
    report = runner.run()
    print(report.render())
    print(render_campaign_table(
        aggregate_store(args.out),
        title=f"campaign {grid.name!r} — headline metric by group"))
    print(f"results in {args.out} "
          f"(resume with --resume to skip completed cells)")
    return 0 if report.ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .core import BoincMRConfig, CloudSpec, MapReduceJobSpec, VolunteerCloud
    from .obs import run_summary

    cloud = VolunteerCloud.from_spec(CloudSpec(
        seed=args.seed, mr_config=BoincMRConfig()))
    cloud.add_volunteers(args.nodes, mr=True)
    cloud.attach_observability(spans=True, probes=True,
                               sample_period_s=args.sample_period,
                               profile=True)
    cloud.run_job(MapReduceJobSpec(
        "wordcount", n_maps=args.maps, n_reducers=args.reducers,
        input_size=args.input_gb * 1e9))
    cloud.finish_observability()
    print(run_summary(cloud.tracer, metrics=cloud.metrics,
                      builder=cloud.span_builder, profiler=cloud.profiler))
    return 0


def _cmd_wordcount(args: argparse.Namespace) -> int:
    import collections

    from .runtime import LocalRunner
    from .runtime.apps import WordCount
    from .workloads import generate_corpus

    corpus = generate_corpus(int(args.size_mb * 1e6), seed=args.seed)
    report = LocalRunner(WordCount(), n_maps=args.maps,
                         n_reducers=args.reducers).run(corpus, parallel=True)
    assert report.output == dict(collections.Counter(corpus.split()))
    print(f"{sum(report.output.values())} words, "
          f"{len(report.output)} distinct, "
          f"{report.intermediate_bytes / 1e3:.1f} kB intermediate — "
          "verified against collections.Counter")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import time as _time

    from .gateway import GatewayConfig, GatewayServer

    async def _serve() -> None:
        server = GatewayServer(GatewayConfig(
            host=args.host, port=args.port,
            daemon_period_s=args.daemon_period,
            delay_bound_s=args.delay_bound))
        await server.start()
        print(f"gateway serving on {server.address} "
              f"(protocol docs/protocol.md; ctrl-c to stop)", flush=True)
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                while True:
                    await asyncio.sleep(3600)
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("gateway stopped")
    return 0


def _cmd_volunteer(args: argparse.Namespace) -> int:
    import os

    from .gateway import run_volunteer

    name = args.name or f"vol-{os.getpid()}"
    stats = run_volunteer(args.address, name=name, flops=args.flops,
                          poll_s=args.poll, idle_limit=args.idle_limit)
    print(f"{name}: {stats.tasks_done} tasks done, "
          f"{stats.tasks_failed} failed, {stats.rpcs} scheduler RPCs")
    return 0 if stats.tasks_failed == 0 else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .gateway import LoadConfig, run_loadgen, write_report

    config = LoadConfig(
        n_clients=args.clients, duration_s=args.duration, seed=args.seed,
        corpus_bytes=args.corpus_kb * 1024, n_maps=args.maps,
        n_reducers=args.reducers, replication=args.replication,
        quorum=args.quorum)
    report = run_loadgen(address=args.address, config=config, echo=print)
    write_report(report, args.out)
    lat = report.latency_ms
    print(f"{report.rpcs} scheduler RPCs from {report.n_clients} clients "
          f"in {report.wall_s:.1f}s — "
          f"p50 {lat['p50']:.2f}ms  p90 {lat['p90']:.2f}ms  "
          f"p99 {lat['p99']:.2f}ms  max {lat['max']:.2f}ms")
    print(f"job {report.job_state}; lost={report.lost_results} "
          f"duplicated={report.duplicated_results} "
          f"equivalent={report.equivalent} -> {args.out}")
    if args.strict and not report.clean:
        print("loadgen: correctness gates FAILED", file=sys.stderr)
        return 1
    return 0


def _seed_type(text: str) -> int:
    """Validate a ``--seed`` value: a non-negative integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seed must be an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be >= 0, got {value}")
    return value


def _add_campaign_modes(p: argparse.ArgumentParser,
                        common: argparse.ArgumentParser) -> None:
    """Attach the distributed control-plane modes under ``campaign``.

    ``campaign`` with no mode keeps its legacy in-process pool
    behaviour; ``coordinate`` / ``work`` / ``merge`` / ``diff`` are the
    distributed front end.
    """
    csub = p.add_subparsers(
        dest="mode", metavar="MODE",
        help="distributed control-plane modes (omit MODE for the "
             "in-process pool)")

    pc = csub.add_parser(
        "coordinate", parents=[common],
        help="serve a grid to worker processes under lease discipline "
             "(spawns local workers, accepts external ones)")
    pc.add_argument("--grid", default="table1",
                    help="builtin grid name or TOML grid path "
                         "(default table1)")
    pc.add_argument("--seeds", default=None, metavar="S1,S2,...",
                    help="comma-separated seed fan-out")
    pc.add_argument("--faults", metavar="PLAN", default=None,
                    help="arm a chaos plan on every cell "
                         "(table1 grid only)")
    pc.add_argument("--out", default="campaign.jsonl", metavar="FILE",
                    help="authoritative JSONL result store "
                         "(default campaign.jsonl)")
    pc.add_argument("--spawn", type=int, default=3,
                    help="local worker processes to fork "
                         "(0 = external workers only; default 3)")
    pc.add_argument("--bind", default="127.0.0.1", metavar="HOST",
                    help="control-socket bind address (default 127.0.0.1)")
    pc.add_argument("--port", type=int, default=0,
                    help="control-socket port (default 0 = pick a free one)")
    pc.add_argument("--heartbeat", type=float, default=0.5,
                    metavar="SECONDS",
                    help="worker heartbeat cadence; a worker silent for "
                         "3x this is declared dead (default 0.5)")
    pc.add_argument("--steal-after", type=float, default=None,
                    metavar="SECONDS",
                    help="age before a sole in-flight lease may be "
                         "duplicated onto an idle worker "
                         "(default 4x --heartbeat)")
    pc.add_argument("--timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-cell lease budget (default: unbounded)")
    pc.add_argument("--retries", type=int, default=1,
                    help="extra attempts before quarantining a cell "
                         "(default 1)")
    pc.add_argument("--resume", action="store_true",
                    help="skip cells already completed in --out")
    pc.add_argument("--shard-dir", metavar="DIR", default=None,
                    help="give each spawned worker a per-worker JSONL "
                         "shard in DIR (merge with 'campaign merge')")
    pc.add_argument("--kill-workers", type=int, default=0, metavar="N",
                    help="fault hook: SIGKILL N spawned workers mid-cell "
                         "and respawn replacements (default 0)")
    pc.add_argument("--kill-interval", type=float, default=1.0,
                    metavar="SECONDS",
                    help="spacing between --kill-workers kills (default 1)")
    pc.add_argument("--wall-limit", type=float, default=None,
                    metavar="SECONDS",
                    help="quarantine whatever is unfinished after this "
                         "long (default: unbounded)")
    pc.add_argument("--summary-out", metavar="FILE", default=None,
                    help="write the JSON control-plane summary "
                         "(leases granted/expired/reclaimed/stolen, "
                         "worker failures, chaos kills)")
    pc.add_argument("--quiet", action="store_true",
                    help="suppress per-cell progress lines")

    pw = csub.add_parser(
        "work", parents=[common],
        help="run cells for a coordinator at HOST:PORT until it "
             "shuts the campaign down")
    pw.add_argument("address", metavar="HOST:PORT",
                    help="coordinator control-socket address")
    pw.add_argument("--id", default=None, metavar="NAME",
                    help="worker id (default <hostname>-<pid>)")
    pw.add_argument("--shard", metavar="FILE", default=None,
                    help="also append every outcome to this per-worker "
                         "JSONL shard")
    pw.add_argument("--max-cells", type=int, default=None, metavar="N",
                    help="stop after completing N cells (default: serve "
                         "until shutdown)")

    pm = csub.add_parser(
        "merge", parents=[common],
        help="fold per-worker JSONL shards into one resumable store "
             "(ok beats failed per key, last record wins otherwise)")
    pm.add_argument("shards", nargs="+", metavar="SHARD",
                    help="per-worker shard files to merge")
    pm.add_argument("--out", required=True, metavar="FILE",
                    help="merged store to write (must not be a SHARD)")

    pd = csub.add_parser(
        "diff", parents=[common],
        help="compare the successful per-key payloads of two stores "
             "(exit 1 on any mismatch)")
    pd.add_argument("left", metavar="STORE")
    pd.add_argument("right", metavar="STORE")


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BOINC-MR reproduction: regenerate the paper's tables, "
                    "figures, and extension studies.")
    parser.add_argument("--seed", type=_seed_type, default=1,
                        help="experiment seed (default 1)")
    # Every subcommand also accepts --seed after the command name; a value
    # there overrides the global one (SUPPRESS keeps the global default).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=_seed_type, default=argparse.SUPPRESS,
                        help="experiment seed (overrides the global --seed)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", parents=[common],
                   help="Table I: word-count makespan grid")

    p = sub.add_parser("fig4", parents=[common],
                       help="Fig. 4: backoff straggler timeline")
    p.add_argument("--width", type=int, default=64)

    sub.add_parser("ablations", parents=[common],
                   help="Section IV.C mitigations")
    sub.add_parser("nat", parents=[common],
                   help="Section III.D NAT traversal ladder")

    p = sub.add_parser("churn", parents=[common], help="volunteer churn study")
    p.add_argument("--mean-on", type=float, default=1800.0)
    p.add_argument("--mean-off", type=float, default=600.0)
    p.add_argument("--departures", type=float, default=0.05)

    sub.add_parser("planetlab", parents=[common],
                   help="LAN vs Internet deployment study")

    p = sub.add_parser("run", parents=[common],
                       help="run one simulated MapReduce job")
    p.add_argument("--nodes", type=int, default=20)
    p.add_argument("--maps", type=int, default=20)
    p.add_argument("--reducers", type=int, default=5)
    p.add_argument("--input-gb", type=float, default=1.0)
    p.add_argument("--mr", action="store_true",
                   help="use BOINC-MR clients (default: original BOINC)")
    p.add_argument("--allocator", choices=("incremental", "full"),
                   default="incremental",
                   help="flow-network rate allocation strategy "
                        "(default incremental; full = the O(F) reference)")
    p.add_argument("--engine", choices=("sequential", "parallel"),
                   default="sequential",
                   help="event-loop engine; parallel shards the loop into "
                        "--sim-workers logical processes (same seed, "
                        "byte-identical traces)")
    p.add_argument("--sim-workers", type=int, default=1, metavar="N",
                   help="logical-process count for --engine parallel "
                        "(LP 0 is the server partition; default 1)")
    p.add_argument("--faults", metavar="PLAN", default=None,
                   help="inject a chaos plan (builtin name or TOML path) "
                        "and audit the run afterwards")
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write the run's trace to FILE")
    p.add_argument("--trace-format", choices=("chrome", "jsonl", "csv"),
                   default="chrome",
                   help="chrome = Perfetto/chrome://tracing timeline "
                        "(default), jsonl = raw records, csv = flat table")

    p = sub.add_parser(
        "metrics", parents=[common],
        help="word-count run with the full observability stack, then the "
             "metrics/self-profile summary")
    p.add_argument("--nodes", type=int, default=20)
    p.add_argument("--maps", type=int, default=20)
    p.add_argument("--reducers", type=int, default=5)
    p.add_argument("--input-gb", type=float, default=1.0)
    p.add_argument("--sample-period", type=float, default=30.0,
                   help="gauge sampling cadence in sim seconds")

    p = sub.add_parser("wordcount", parents=[common],
                       help="run REAL word count on real bytes")
    p.add_argument("--size-mb", type=float, default=2.0)
    p.add_argument("--maps", type=int, default=8)
    p.add_argument("--reducers", type=int, default=4)

    p = sub.add_parser(
        "campaign", parents=[common],
        help="run a whole experiment grid (scenario x seed x fault-plan "
             "cells) over a worker pool, into a resumable result store")
    p.add_argument("--grid", default="table1",
                   help="builtin grid name (see --list-grids) or a "
                        "declarative TOML grid path (default table1)")
    p.add_argument("--list-grids", action="store_true",
                   help="list the builtin campaign grids and exit")
    p.add_argument("--aggregate", metavar="FILE", default=None,
                   help="render the aggregated table of an existing result "
                        "store and exit (runs nothing)")
    p.add_argument("--seeds", default=None, metavar="S1,S2,...",
                   help="comma-separated seed fan-out "
                        "(default: the grid's own, typically 1,2,3)")
    p.add_argument("--workers", type=int, default=4,
                   help="worker processes (0 = sequential in-process "
                        "reference mode; default 4)")
    p.add_argument("--out", default="campaign.jsonl", metavar="FILE",
                   help="JSONL result store (default campaign.jsonl)")
    p.add_argument("--resume", action="store_true",
                   help="skip cells already completed in --out instead of "
                        "starting the store over")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell wall-clock budget (default: unbounded)")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts before quarantining a failing "
                        "cell (default 1)")
    p.add_argument("--faults", metavar="PLAN", default=None,
                   help="arm a chaos plan on every cell (table1 grid only)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-cell progress lines")
    _add_campaign_modes(p, common)

    p = sub.add_parser(
        "serve", parents=[common],
        help="run the live asyncio gateway (real volunteers dial in over "
             "HTTP; see docs/protocol.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8523,
                   help="listen port (0 = OS-assigned; default 8523)")
    p.add_argument("--daemon-period", type=float, default=0.02,
                   metavar="SECONDS",
                   help="wall-clock cadence of the feeder/transitioner/"
                        "validator/assimilator pipeline tick (default 0.02)")
    p.add_argument("--delay-bound", type=float, default=10.0,
                   metavar="SECONDS",
                   help="result lease deadline; expired leases are "
                        "reissued by the transitioner (default 10)")
    p.add_argument("--duration", type=float, default=0.0, metavar="SECONDS",
                   help="serve for this long then exit (0 = forever)")

    p = sub.add_parser(
        "volunteer", parents=[common],
        help="run one real volunteer process against a live gateway")
    p.add_argument("--address", required=True, metavar="HOST:PORT")
    p.add_argument("--name", default=None,
                   help="host name to register as (default vol-<pid>)")
    p.add_argument("--flops", type=float, default=1e9)
    p.add_argument("--idle-limit", type=int, default=100,
                   help="consecutive no-work polls before exiting")
    p.add_argument("--poll", type=float, default=0.02, metavar="SECONDS",
                   help="minimum poll period when the server sets no delay")

    p = sub.add_parser(
        "loadgen", parents=[common],
        help="replay simulated client schedules against a live gateway "
             "and emit BENCH_gateway.json with the p99 latency report")
    p.add_argument("--address", default=None, metavar="HOST:PORT",
                   help="gateway to load (default: self-host one in-process)")
    p.add_argument("--clients", type=int, default=500)
    p.add_argument("--duration", type=float, default=8.0, metavar="SECONDS",
                   help="wall-clock replay window for the compressed "
                        "availability schedules (default 8)")
    p.add_argument("--maps", type=int, default=12)
    p.add_argument("--reducers", type=int, default=6)
    p.add_argument("--replication", type=int, default=2)
    p.add_argument("--quorum", type=int, default=2)
    p.add_argument("--corpus-kb", type=int, default=200,
                   help="benchmark job corpus size in KiB (default 200)")
    p.add_argument("--out", default="BENCH_gateway.json", metavar="FILE")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero unless the correctness gates hold "
                        "(zero lost/duplicated results, oracle-equivalent "
                        "output, job done)")

    p = sub.add_parser(
        "chaos", parents=[common],
        help="run a MapReduce job under a chaos plan, then audit the "
             "end state with RunAuditor")
    p.add_argument("plan", nargs="?", default=None,
                   help="builtin plan name or TOML file path "
                        "(see --list-plans)")
    p.add_argument("--list-plans", action="store_true",
                   help="list the bundled chaos plans and exit")
    p.add_argument("--nodes", type=int, default=12)
    p.add_argument("--maps", type=int, default=12)
    p.add_argument("--reducers", type=int, default=3)
    p.add_argument("--input-gb", type=float, default=0.5)
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write the chrome trace (fault spans included)")
    p.add_argument("--summary-out", metavar="FILE", default=None,
                   help="write a JSON run summary (faults + audit report)")

    return parser


_COMMANDS: dict[str, _t.Callable[[argparse.Namespace], int]] = {
    "table1": _cmd_table1,
    "fig4": _cmd_fig4,
    "ablations": _cmd_ablations,
    "nat": _cmd_nat,
    "churn": _cmd_churn,
    "planetlab": _cmd_planetlab,
    "run": _cmd_run,
    "campaign": _cmd_campaign,
    "metrics": _cmd_metrics,
    "wordcount": _cmd_wordcount,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "volunteer": _cmd_volunteer,
    "loadgen": _cmd_loadgen,
}


def main(argv: _t.Sequence[str] | None = None) -> int:
    """Entry point: parse *argv* and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
