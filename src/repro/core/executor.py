"""Client-side MapReduce application executor.

The paper's first prototype had no general MapReduce API; the word-count
behaviour was compiled into the application ("we inserted MapReduce
functionalities into the code").  :class:`MapReduceExecutor` plays that
application's role in the simulation: given a map or reduce assignment it
produces the deterministic output digest (what quorum validation compares)
and the output file set — one intermediate file per reduce partition for a
map task (keys hashed modulo the number of reducers), one final output
file for a reduce task.

Byzantine behaviour — "malicious users or errors during the computation"
(Section III.B) — is injected here: a corrupt execution yields a digest
unique to this host and attempt, so it can never accidentally match
another replica and pass the quorum.
"""

from __future__ import annotations

import numpy as np

from ..boinc.client import Client, ClientTask
from ..boinc.model import FileRef, OutputData
from .jobtracker import JobTracker


class MapReduceExecutor:
    """Produces outputs for ``map``/``reduce`` workunits of known jobs."""

    def __init__(self, jobtracker: JobTracker,
                 byzantine_rate: float = 0.0,
                 platform_variance: bool = False,
                 rng: np.random.Generator | None = None) -> None:
        """Create an executor; *byzantine_rate* corrupts that fraction of runs."""
        if not 0.0 <= byzantine_rate <= 1.0:
            raise ValueError("byzantine_rate must be in [0, 1]")
        self.jobtracker = jobtracker
        self.byzantine_rate = byzantine_rate
        #: Numerically platform-sensitive application: outputs (digests)
        #: differ across hr_class platforms, so bitwise validation only
        #: works under homogeneous redundancy.
        self.platform_variance = platform_variance
        self.rng = rng or np.random.default_rng(0)
        self._corruptions = 0

    def execute(self, client: Client, task: ClientTask) -> OutputData:
        """Produce the output digest + file set for one map/reduce task."""
        wu = task.assignment.wu
        if wu.mr_job is None:
            raise ValueError(f"workunit {wu.id} is not a MapReduce task")
        spec = self.jobtracker.spec(wu.mr_job)
        if wu.mr_kind == "map":
            files = tuple(
                FileRef(spec.map_output_file(wu.mr_index, r),
                        spec.map_output_size())
                for r in range(spec.n_reducers)
            )
            digest = f"{spec.name}:map:{wu.mr_index}"
        elif wu.mr_kind == "reduce":
            files = (FileRef(spec.reduce_output_file(wu.mr_index),
                             spec.reduce_output_size()),)
            digest = f"{spec.name}:reduce:{wu.mr_index}"
        else:
            raise ValueError(f"unknown MapReduce kind {wu.mr_kind!r}")
        if self.platform_variance and client.record.hr_class:
            digest = f"{digest}@{client.record.hr_class}"
        if getattr(client, "corrupt_results", False):
            # Deterministic byzantine fault on this host: corrupt every
            # execution without touching the rng, so the draw sequence of
            # a fault-free run is left intact (trace determinism).
            self._corruptions += 1
            digest = f"corrupt:{client.name}:{self._corruptions}:{digest}"
        elif self.byzantine_rate > 0 and self.rng.random() < self.byzantine_rate:
            self._corruptions += 1
            digest = f"corrupt:{client.name}:{self._corruptions}:{digest}"
        return OutputData(digest=digest, files=files)

    @property
    def corruptions(self) -> int:
        """How many executions this instance corrupted (diagnostics)."""
        return self._corruptions
