"""BOINC-MR client strategies: input fetching and output disposal.

These plug into :class:`repro.boinc.client.Client` and implement the
behaviours Section III.C adds to the stock client:

- **Map outputs** on a BOINC-MR client are *served to peers* instead of
  uploaded (optionally both, enabling the server fallback); on a legacy
  client they are uploaded as usual.
- **Reduce inputs** on a BOINC-MR client are downloaded directly from the
  mapper addresses the scheduler appended to the assignment, with *n*
  retries per partition and a final fallback to the project data server;
  on a legacy client everything comes from the data server.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..boinc.client import (
    Client,
    ClientTask,
    ServerInputFetcher,
    ServerUploadPolicy,
    download_with_retry,
)
from ..net import ConnectivityPolicy, Host, TransferFailed, peer_download
from .config import BoincMRConfig
from .interclient import PeerStore
from .jobtracker import JobTracker


class ClientDirectory:
    """Address book resolving scheduler-provided addresses to live clients.

    Addresses look like ``hostname:port`` (the paper sends IP and port);
    resolution strips the port and finds the client by host name.
    """

    def __init__(self) -> None:
        """An empty directory."""
        self._clients: dict[str, Client] = {}

    def register(self, client: Client) -> None:
        """Make *client* resolvable by its host name."""
        self._clients[client.name] = client

    def resolve(self, address: str) -> Client | None:
        """Find the live client behind a ``host:port`` address, if any."""
        name = address.split(":", 1)[0]
        return self._clients.get(name)

    def __len__(self) -> int:
        return len(self._clients)


class MapReduceOutputPolicy:
    """Dispose of task outputs per BOINC-MR rules (Section III.B/III.C)."""

    def __init__(self, jobtracker: JobTracker, config: BoincMRConfig) -> None:
        """Output policy bound to one job tracker and BOINC-MR config."""
        self.jobtracker = jobtracker
        self.config = config

    def handle(self, client: Client, task: ClientTask) -> _t.Generator:
        """Serve map outputs from the client or upload them (sim process)."""
        wu = task.assignment.wu
        assert task.output is not None
        is_mr_map = wu.mr_kind == "map" and client.record.supports_mr
        if is_mr_map:
            store: PeerStore | None = getattr(client, "peer_store", None)
            if store is None:
                raise RuntimeError(
                    f"BOINC-MR client {client.name} has no peer store")
            for ref in task.output.files:
                store.serve(ref, job=wu.mr_job)
            client.tracer.record(client.sim.now, "peer.serving",
                                 host=client.name, wu=wu.id,
                                 files=len(task.output.files))
            if not self.config.upload_map_outputs:
                # Hash-only reporting: nothing moves to the server; the
                # digest travels with the scheduler report.
                return
        # Legacy map outputs, reduce outputs, and (optionally) MR map
        # outputs all go to the data server.
        yield from ServerUploadPolicy().handle(client, task)


class MapReduceInputFetcher:
    """Fetch task inputs: data server for maps, peers-then-server for reduces."""

    def __init__(self, jobtracker: JobTracker, directory: ClientDirectory,
                 config: BoincMRConfig,
                 connectivity: ConnectivityPolicy,
                 relay: Host | None = None,
                 relay_selector: _t.Callable[[Host, Host], Host] | None = None,
                 rng: np.random.Generator | None = None) -> None:
        """Input fetcher using *directory* for peer lookup, NAT-aware."""
        self.jobtracker = jobtracker
        self.directory = directory
        self.config = config
        self.connectivity = connectivity
        self.relay = relay
        #: Optional dynamic relay choice ``(downloader, uploader) -> relay``
        #: (e.g. a supernode overlay); falls back to the fixed ``relay``.
        self.relay_selector = relay_selector
        self.rng = rng or np.random.default_rng(0)
        self._server_fetch = ServerInputFetcher()
        #: Diagnostics: peer download successes / fallbacks to the server.
        self.peer_fetches = 0
        self.server_fallbacks = 0

    def fetch(self, client: Client, task: ClientTask) -> _t.Generator:
        """Download task inputs: server for maps, peers-then-server for reduces."""
        assignment = task.assignment
        wu = assignment.wu
        if wu.mr_kind != "reduce":
            yield from self._server_fetch.fetch(client, task)
            return
        spec = self.jobtracker.spec(wu.mr_job)
        procs = []
        for map_index in range(spec.n_maps):
            name = spec.map_output_file(map_index, wu.mr_index)
            holders = assignment.peer_locations.get(map_index, [])
            procs.append(client.sim.process(
                self._fetch_partition(client, name, spec.map_output_size(),
                                      holders),
                name=f"fetch:{client.name}:{name}"))
        if not procs:
            return
        try:
            yield client.sim.all_of(procs)
        finally:
            # A churn kill of the reduce task must cascade: partition
            # fetches (and their nested peer downloads) may not keep
            # pulling bytes for a task that no longer exists.
            for proc in procs:
                if proc.alive:
                    proc.interrupt("reduce fetch cancelled")

    def _fetch_partition(self, client: Client, filename: str, size: float,
                         holders: _t.Sequence[str]) -> _t.Generator:
        """Try each holder (with retries), then fall back to the server."""
        sim = client.sim
        # Locality: a reducer that mapped this index already holds the
        # partition — read it from local disk, no transfer at all.
        own_store: PeerStore | None = getattr(client, "peer_store", None)
        if own_store is not None and own_store.available(filename):
            client.tracer.record(sim.now, "peer.local", host=client.name,
                                 file=filename)
            return None
        attempts = 0
        order = list(holders)
        if len(order) > 1:
            order = [order[i] for i in self.rng.permutation(len(order))]
        for address in order * max(1, self.config.peer_retries):
            if attempts >= self.config.peer_retries:
                break
            mapper = self.directory.resolve(address)
            if mapper is None or mapper is client:
                attempts += 1
                continue
            store: PeerStore | None = getattr(mapper, "peer_store", None)
            if store is None or not store.available(filename):
                attempts += 1
                client.tracer.record(sim.now, "peer.unavailable",
                                     host=client.name, frm=address,
                                     file=filename)
                continue
            relay = self.relay
            if self.relay_selector is not None:
                try:
                    relay = self.relay_selector(client.host, mapper.host)
                except Exception:  # noqa: BLE001 - overlay empty: keep default
                    relay = self.relay
            ref = store.get(filename)
            dl = sim.process(peer_download(
                sim, client.net, self.connectivity,
                src=mapper.endpoint, dst=client.endpoint,
                size=ref.size, relay=relay,
                failure_rate=self.config.peer_failure_rate,
                rng=self.rng,
                label=f"mr:{filename}->{client.name}"),
                name=f"peerdl:{client.name}:{filename}")
            try:
                record = yield dl
            except TransferFailed as exc:
                attempts += 1
                client.tracer.record(sim.now, "peer.fetch_failed",
                                     host=client.name, frm=mapper.name,
                                     file=filename, reason=exc.reason,
                                     attempt=attempts)
                continue
            finally:
                if dl.alive:
                    dl.interrupt("partition fetch cancelled")
            if record.corrupted:
                # Byzantine serve: the payload fails checksum validation.
                # Evict the poisoned copy so no reducer tries it again,
                # and move on to the next holder (or the server).
                attempts += 1
                store.evict(filename)
                if client.metrics is not None:
                    client.metrics.counter("peer.evictions_total").inc()
                client.tracer.record(sim.now, "peer.corrupt",
                                     host=client.name, frm=mapper.name,
                                     file=filename, attempt=attempts)
                continue
            self.peer_fetches += 1
            client.tracer.record(sim.now, "peer.fetched",
                                 host=client.name, frm=mapper.name,
                                 file=filename,
                                 duration=record.duration,
                                 method=record.method.value)
            return record
        # Fallback: download from the project data server (only possible
        # when map outputs were uploaded there).  With early reduce
        # creation (reduce_creation_fraction < 1) the file may simply not
        # exist *yet* — poll for it, overlapping this wait with the other
        # partitions' downloads (the §IV.C "intermediate downloads" idea).
        polls = 0
        while polls < self.config.fetch_poll_attempts:
            if client.server.dataserver.has(filename):
                self.server_fallbacks += 1
                client.tracer.record(sim.now, "peer.fallback_server",
                                     host=client.name, file=filename,
                                     polls=polls)
                # Retry-with-backoff: survives data-server outages, slow
                # mode, and corrupt transfers (checksum re-download).
                yield from download_with_retry(client, filename)
                return None
            if self.config.reduce_creation_fraction >= 1.0:
                break  # nothing will ever appear; fail fast
            polls += 1
            yield sim.timeout(self.config.fetch_poll_s)
        raise TransferFailed(
            f"reduce input {filename} unavailable: no reachable peer and "
            "no server copy (upload_map_outputs is off)")
