"""Mapper-side serving of map outputs to reduce workers (Section III.C).

A BOINC-MR client that finishes a map task "opens a TCP [socket] for
listening to incoming connections ... and stop[s] accepting connections
when there are no more files available for upload".  :class:`PeerStore`
models that serving table: files enter with an expiry (the serving
timeout), can be renewed when the server reschedules a reduce task, and
are withdrawn when the job finishes.

The actual byte movement happens through
:func:`repro.net.transfer.peer_download`, gated by the client's
:class:`~repro.net.transfer.TransferEndpoint` connection limits.
"""

from __future__ import annotations

import dataclasses

from ..sim import Simulator
from ..boinc.model import FileRef


@dataclasses.dataclass(slots=True)
class ServedFile:
    """A map output this client serves to peers until its lease expires."""

    ref: FileRef
    job: str
    expires_at: float
    downloads: int = 0


class PeerStore:
    """The files one BOINC-MR client is currently serving to peers."""

    def __init__(self, sim: Simulator, serve_timeout_s: float) -> None:
        """An empty store whose entries expire after *serve_timeout_s*."""
        if serve_timeout_s <= 0:
            raise ValueError("serve_timeout_s must be positive")
        self.sim = sim
        self.serve_timeout_s = serve_timeout_s
        self._files: dict[str, ServedFile] = {}
        self.bytes_served = 0.0
        self.evictions = 0

    # -- mapper side -------------------------------------------------------------
    def serve(self, ref: FileRef, job: str) -> None:
        """Start (or restart) serving *ref* for *job*."""
        self._files[ref.name] = ServedFile(
            ref=ref, job=job, expires_at=self.sim.now + self.serve_timeout_s)

    def renew(self, name: str) -> bool:
        """Reset a file's timeout — "even if it has already been reached".

        Returns False when the file was never served (nothing to renew).
        """
        entry = self._files.get(name)
        if entry is None:
            return False
        entry.expires_at = self.sim.now + self.serve_timeout_s
        return True

    def renew_job(self, job: str) -> int:
        """Renew every file of *job*; returns how many were renewed."""
        n = 0
        for entry in self._files.values():
            if entry.job == job:
                entry.expires_at = self.sim.now + self.serve_timeout_s
                n += 1
        return n

    def evict(self, name: str) -> bool:
        """Withdraw a file that served corrupt data (checksum mismatch).

        Downloaders stop considering this copy; the reducer falls back to
        another holder or the data server.  Returns False when the file
        was not being served (already evicted by a concurrent downloader).
        """
        if self._files.pop(name, None) is None:
            return False
        self.evictions += 1
        return True

    def stop_job(self, job: str) -> int:
        """Withdraw all files of a finished job; returns how many."""
        victims = [name for name, e in self._files.items() if e.job == job]
        for name in victims:
            del self._files[name]
        return len(victims)

    # -- reducer side ------------------------------------------------------------
    def available(self, name: str) -> bool:
        """Is *name* currently served (present and not expired)?"""
        entry = self._files.get(name)
        return entry is not None and self.sim.now <= entry.expires_at

    def get(self, name: str) -> FileRef:
        """Look up a served file for download; raises KeyError if unavailable."""
        entry = self._files.get(name)
        if entry is None:
            raise KeyError(f"{name} is not being served")
        if self.sim.now > entry.expires_at:
            raise KeyError(f"{name} serving timeout expired")
        entry.downloads += 1
        self.bytes_served += entry.ref.size
        return entry.ref

    @property
    def serving_count(self) -> int:
        """Files currently within their serving window."""
        return sum(1 for e in self._files.values()
                   if self.sim.now <= e.expires_at)
