"""The top-level BOINC-MR system facade.

:class:`VolunteerCloud` wires a complete deployment together — simulator,
network, project server (with daemons), JobTracker, and volunteer clients
(original BOINC or BOINC-MR) — behind a small API:

    spec = CloudSpec(seed=1)
    cloud = VolunteerCloud.from_spec(spec)
    cloud.add_volunteers(20, mr=True)
    job = cloud.submit(MapReduceJobSpec("wc", n_maps=20, n_reducers=5))
    cloud.run_until(job.done)
    print(job.makespan())

Everything is deterministic under the seed.  :class:`CloudSpec` is the
single construction surface — a frozen dataclass, so a spec can be shared,
hashed, and ``replace()``-ed between experiment variants without any risk
of one run mutating another's configuration.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing as _t
import warnings

from ..boinc.client import Client, ClientConfig
from ..boinc.server import ProjectServer, ServerConfig
from ..net import (
    EMULAB_LINK,
    ConnectivityPolicy,
    LinkSpec,
    NatBox,
    Network,
    TraversalConfig,
)
from ..obs import MetricsRegistry, Sampler, SelfProfiler, SpanBuilder
from ..obs import attach_standard_probes
from ..sim import (
    Event,
    ParallelSimulator,
    RngRegistry,
    SimulationError,
    Simulator,
    Tracer,
)
from .config import BoincMRConfig
from .executor import MapReduceExecutor
from .interclient import PeerStore
from .job import MapReduceJob, MapReduceJobSpec
from .jobtracker import JobTracker
from .policies import ClientDirectory, MapReduceInputFetcher, MapReduceOutputPolicy

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..faults import AuditReport, FaultInjector
    from ..net.supernode import SupernodeOverlay


@dataclasses.dataclass(frozen=True, slots=True)
class CloudSpec:
    """Everything needed to construct a :class:`VolunteerCloud`.

    Replaces the historical keyword sprawl of ``VolunteerCloud.__init__``:
    build a spec, then ``VolunteerCloud.from_spec(spec)``.  Being frozen,
    specs are safely shareable between runs; derive variants with
    :meth:`replace`::

        base = CloudSpec(seed=1, server_link=SERVER_LINK)
        fullalloc = base.replace(allocator="full")
    """

    seed: int = 0
    server_config: ServerConfig | None = None
    mr_config: BoincMRConfig | None = None
    client_config: ClientConfig | None = None
    traversal_config: TraversalConfig | None = None
    server_link: LinkSpec = EMULAB_LINK
    #: Rate-allocation strategy for the flow network ("incremental"/"full");
    #: see :data:`repro.net.ALLOCATORS`.
    allocator: str = "incremental"
    #: Event-loop engine: "sequential" (single heap) or "parallel"
    #: (:class:`repro.sim.ParallelSimulator`, LP-partitioned).
    engine: str = "sequential"
    #: Logical-process count for the parallel engine (ignored when
    #: sequential); LP 0 is the server/data-server partition.
    sim_workers: int = 1

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.engine not in ("sequential", "parallel"):
            raise ValueError(
                f"engine must be 'sequential' or 'parallel', got "
                f"{self.engine!r}")
        if self.sim_workers < 1:
            raise ValueError(
                f"sim_workers must be >= 1, got {self.sim_workers}")

    def replace(self, **changes: _t.Any) -> "CloudSpec":
        """A copy of this spec with *changes* applied."""
        return dataclasses.replace(self, **changes)


#: Keywords the deprecated VolunteerCloud(...) shim still accepts.
_LEGACY_SPEC_KEYS = frozenset(
    f.name for f in dataclasses.fields(CloudSpec))


class VolunteerCloud:
    """A complete simulated BOINC-MR deployment."""

    def __init__(self, spec: "CloudSpec | int | None" = None, *,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 **legacy: _t.Any) -> None:
        """Build a cloud from a :class:`CloudSpec` (legacy kwargs deprecated)."""
        if isinstance(spec, int):  # historical positional seed
            legacy = {"seed": spec, **legacy}
            spec = None
        if legacy:
            if spec is not None:
                raise TypeError(
                    "pass either a CloudSpec or legacy keyword arguments, "
                    "not both")
            unknown = set(legacy) - _LEGACY_SPEC_KEYS
            if unknown:
                raise TypeError(
                    f"unknown VolunteerCloud argument(s): {sorted(unknown)}")
            warnings.warn(
                "VolunteerCloud(seed=..., server_config=..., ...) is "
                "deprecated; build a CloudSpec and call "
                "VolunteerCloud.from_spec(spec)",
                DeprecationWarning, stacklevel=2)
            spec = CloudSpec(**legacy)
        elif spec is None:
            spec = CloudSpec()
        #: The frozen construction spec this deployment was built from.
        self.spec = spec
        if spec.engine == "parallel":
            self.sim: Simulator = ParallelSimulator(n_lps=spec.sim_workers,
                                                    lookahead=float("inf"))
        else:
            self.sim = Simulator()
        #: Two smallest access-link latencies seen so far; their sum is the
        #: parallel engine's lookahead (the least latency any cross-host
        #: message pays end to end).
        self._access_latencies: list[float] = []
        self.rngs = RngRegistry(spec.seed)
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        with self.sim.partition(None):  # LP 0: server/data-server partition
            self.net = Network(self.sim, tracer=None,  # flow traces are noisy
                               metrics=self.metrics, allocator=spec.allocator)
            self.server_host = self.net.add_host("server", spec.server_link)
            self.server = ProjectServer(self.sim, self.net, self.server_host,
                                        config=spec.server_config,
                                        tracer=self.tracer,
                                        rng=self.rngs.stream("server"),
                                        metrics=self.metrics)
            self.mr_config = spec.mr_config or BoincMRConfig()
            self.client_config = spec.client_config or ClientConfig()
            self.jobtracker = JobTracker(self.sim, self.server,
                                         config=self.mr_config,
                                         tracer=self.tracer)
            self.jobtracker.on_job_done = self._cleanup_job
            self.directory = ClientDirectory()
            self.connectivity = ConnectivityPolicy(
                spec.traversal_config or TraversalConfig(),
                rng=self.rngs.stream("nat"))
        self._note_access_latency(spec.server_link.latency_s)
        self.clients: list[Client] = []
        self._started = False
        #: Observability attachments (populated by attach_observability).
        self.span_builder: SpanBuilder | None = None
        self.sampler: Sampler | None = None
        self.profiler: SelfProfiler | None = None

    @classmethod
    def from_spec(cls, spec: CloudSpec, *, tracer: Tracer | None = None,
                  metrics: MetricsRegistry | None = None) -> "VolunteerCloud":
        """Build a deployment from a frozen :class:`CloudSpec`.

        The preferred constructor; *tracer* and *metrics* stay out of the
        spec because they are stateful observers, not configuration.
        """
        return cls(spec, tracer=tracer, metrics=metrics)

    def _note_access_latency(self, latency_s: float) -> None:
        """Fold a new host's access latency into the parallel lookahead.

        The conservative safe-window slack is the minimum latency any
        cross-partition message pays: two access-link traversals for a
        host-to-host (or host-to-server) hop.  Tracking the two smallest
        latencies keeps the derivation O(1) per host, and a new host can
        only shrink the window, never widen it.
        """
        lat = self._access_latencies
        bisect.insort(lat, latency_s)
        del lat[2:]
        if len(lat) == 2 and isinstance(self.sim, ParallelSimulator):
            self.sim.shrink_lookahead(lat[0] + lat[1])

    # -- population ------------------------------------------------------------
    def add_volunteer(self, name: str | None = None, *, flops: float = 1.0,
                      mr: bool = False, link_spec: LinkSpec = EMULAB_LINK,
                      nat: NatBox | None = None,
                      config: ClientConfig | None = None,
                      byzantine_rate: float = 0.0,
                      hr_class: str = "",
                      platform_variance: bool = False) -> Client:
        """Create one volunteer host and its client (not yet started)."""
        if name is None:
            name = f"host{len(self.clients):03d}"
        with self.sim.partition(name):  # host + client live in one LP
            host = self.net.add_host(name, link_spec, nat=nat)
            record = self.server.register_host(name, flops, supports_mr=mr,
                                               hr_class=hr_class)
            cfg = config or self.client_config
            executor = MapReduceExecutor(
                self.jobtracker, byzantine_rate=byzantine_rate,
                platform_variance=platform_variance,
                rng=self.rngs.stream(f"exec.{name}"))
            fetcher = MapReduceInputFetcher(
                self.jobtracker, self.directory, self.mr_config,
                connectivity=self.connectivity, relay=self.server_host,
                rng=self.rngs.stream(f"fetch.{name}"))
            output_policy = MapReduceOutputPolicy(self.jobtracker,
                                                  self.mr_config)
            client = Client(self.sim, self.net, self.server, host, record,
                            config=cfg, rng=self.rngs.stream(f"client.{name}"),
                            tracer=self.tracer, input_fetcher=fetcher,
                            output_policy=output_policy, executor=executor)
            if mr:
                client.peer_store = PeerStore(self.sim,
                                              self.mr_config.serve_timeout_s)
            self.directory.register(client)
            self.clients.append(client)
            if self._started:
                client.start()
        self._note_access_latency(link_spec.latency_s)
        return client

    def add_volunteers(self, n: int, **kwargs: _t.Any) -> list[Client]:
        """Add *n* identical volunteers (names auto-generated)."""
        return [self.add_volunteer(**kwargs) for _ in range(n)]

    def enable_supernode_overlay(self, n_supernodes: int = 3,
                                 fanout: int = 2) -> "SupernodeOverlay":
        """Relay NAT-blocked transfers through a supernode overlay.

        Section III.D's alternative to relaying through the project
        server: publicly reachable, well-provisioned volunteers are
        elected supernodes and carry relayed inter-client traffic,
        keeping the server's access link out of the data path.  Call
        after the volunteer population is built.
        """
        from ..net.supernode import SupernodeOverlay

        overlay = SupernodeOverlay([c.host for c in self.clients],
                                   n_supernodes=n_supernodes, fanout=fanout)
        for client in self.clients:
            fetcher = client.input_fetcher
            if hasattr(fetcher, "relay_selector"):
                fetcher.relay_selector = overlay.pick_relay
        self.overlay = overlay
        return overlay

    # -- observability -----------------------------------------------------------
    def attach_observability(self, spans: bool = True, probes: bool = True,
                             sample_period_s: float = 30.0,
                             profile: bool = False) -> None:
        """Wire the full observability stack onto this deployment.

        Call before the first job: *spans* folds the trace into per-result
        timelines (export with :func:`repro.obs.chrome_trace_json`),
        *probes* registers the standard queue-depth gauges and starts a
        :class:`Sampler` over them, and *profile* hooks the wall-clock
        :class:`SelfProfiler` onto the event loop.  Idempotent.
        """
        if spans and self.span_builder is None:
            self.span_builder = SpanBuilder(self.tracer)
        if probes:
            attach_standard_probes(self)
            if self.sampler is None:
                self.sampler = Sampler(self.sim, self.metrics,
                                       period_s=sample_period_s)
        if profile and self.profiler is None:
            self.profiler = SelfProfiler(self.sim)

    def finish_observability(self) -> SpanBuilder | None:
        """Close leaked spans at the current sim time; returns the builder."""
        if self.span_builder is not None:
            self.span_builder.finish(self.sim.now)
        return self.span_builder

    # -- fault injection ---------------------------------------------------------
    def apply_faults(self, plan: _t.Any) -> "FaultInjector":
        """Arm a chaos plan (name, TOML path, ChaosPlan, or FaultSpec list).

        Faults draw from the dedicated ``"faults"`` rng stream, so armed
        plans never perturb the draw sequences of the model itself: the
        same seed + the same plan reproduces the same run byte for byte.
        """
        from ..faults import FaultInjector, resolve_plan

        if isinstance(plan, str):
            plan = resolve_plan(plan)
        injector = FaultInjector(self, plan)
        return injector.arm()

    def audit(self, job: "MapReduceJob | None" = None,
              settle: bool = True) -> "AuditReport":
        """Post-run invariant sweep; see :class:`repro.faults.RunAuditor`."""
        from ..faults import RunAuditor

        auditor = RunAuditor(self)
        if settle:
            auditor.settle()
            auditor.drain()
        return auditor.audit(job)

    # -- jobs --------------------------------------------------------------------
    def submit(self, spec: MapReduceJobSpec) -> MapReduceJob:
        """Submit a MapReduce job; starts the system on first use."""
        self.start()
        return self.jobtracker.submit(spec)

    def start(self) -> None:
        """Start server daemons and all clients (idempotent)."""
        if self._started:
            return
        self._started = True
        with self.sim.partition(None):
            self.server.start_daemons()
        for client in self.clients:
            with self.sim.partition(client.host.name):
                client.start()

    def _cleanup_job(self, job: MapReduceJob) -> None:
        """Withdraw served map outputs once the job completes."""
        for client in self.clients:
            store: PeerStore | None = getattr(client, "peer_store", None)
            if store is not None:
                store.stop_job(job.spec.name)

    # -- execution ---------------------------------------------------------------
    def run_until(self, event: Event, timeout: float = 7 * 24 * 3600.0) -> None:
        """Advance the simulation until *event* fires.

        Raises :class:`SimulationError` if the deadline passes first — a
        stuck job should fail loudly, not spin.
        """
        self.start()
        deadline = self.sim.now + timeout
        self.sim.run(until_event=event, until=deadline)
        if not event.triggered:
            raise SimulationError(
                f"event {event.name!r} did not fire within {timeout:g}s "
                f"(t={self.sim.now:g})")
        if event.exception is not None:
            raise event.exception  # e.g. the job failed — be loud

    def run_job(self, spec: MapReduceJobSpec,
                timeout: float = 7 * 24 * 3600.0) -> MapReduceJob:
        """Submit *spec*, run to completion, and return the finished job."""
        job = self.submit(spec)
        self.run_until(job.done, timeout=timeout)
        return job
