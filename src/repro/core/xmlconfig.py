"""The ``mr_jobtracker.xml`` project configuration file (Section III.B).

"We created a general configuration file to the project's directory,
``mr_jobtracker.xml``, which is used to specify MapReduce parameters,
such as number of mappers and reducers."  The paper never shows the
format, so this module defines one in BOINC's configuration idiom
(element-per-setting, snake_case tags) and parses it into the library's
config objects:

.. code-block:: xml

    <mr_jobtracker>
      <config>
        <reduce_from_peers>1</reduce_from_peers>
        <upload_map_outputs>0</upload_map_outputs>
        <serve_timeout>14400</serve_timeout>
        <peer_retries>3</peer_retries>
      </config>
      <job>
        <name>wordcount</name>
        <n_maps>20</n_maps>
        <n_reducers>5</n_reducers>
        <input_size>1000000000</input_size>
        <replication>2</replication>
        <quorum>2</quorum>
        <app_name>wordcount</app_name>
      </job>
    </mr_jobtracker>
"""

from __future__ import annotations

import pathlib
import typing as _t
import xml.etree.ElementTree as ET

from .config import BoincMRConfig
from .job import MapReduceJobSpec


class ConfigError(ValueError):
    """Malformed ``mr_jobtracker.xml`` content."""


def _text(elem: ET.Element, tag: str, default: str | None = None) -> str:
    child = elem.find(tag)
    if child is None or child.text is None:
        if default is None:
            raise ConfigError(f"missing <{tag}> element")
        return default
    return child.text.strip()


def _as_bool(text: str) -> bool:
    if text in ("1", "true"):
        return True
    if text in ("0", "false"):
        return False
    raise ConfigError(f"expected boolean 0/1, got {text!r}")


def parse_mr_config(elem: ET.Element) -> BoincMRConfig:
    """Parse a ``<config>`` element into :class:`BoincMRConfig`."""
    defaults = BoincMRConfig()
    try:
        return BoincMRConfig(
            reduce_from_peers=_as_bool(_text(
                elem, "reduce_from_peers",
                "1" if defaults.reduce_from_peers else "0")),
            upload_map_outputs=_as_bool(_text(
                elem, "upload_map_outputs",
                "1" if defaults.upload_map_outputs else "0")),
            serve_timeout_s=float(_text(elem, "serve_timeout",
                                        str(defaults.serve_timeout_s))),
            peer_retries=int(_text(elem, "peer_retries",
                                   str(defaults.peer_retries))),
            peer_failure_rate=float(_text(elem, "peer_failure_rate",
                                          str(defaults.peer_failure_rate))),
            reduce_creation_fraction=float(_text(
                elem, "reduce_creation_fraction",
                str(defaults.reduce_creation_fraction))),
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def parse_job_spec(elem: ET.Element) -> MapReduceJobSpec:
    """Parse a ``<job>`` element into :class:`MapReduceJobSpec`."""
    try:
        return MapReduceJobSpec(
            name=_text(elem, "name"),
            n_maps=int(_text(elem, "n_maps")),
            n_reducers=int(_text(elem, "n_reducers")),
            input_size=float(_text(elem, "input_size", "1e9")),
            replication=int(_text(elem, "replication", "2")),
            quorum=int(_text(elem, "quorum", "2")),
            app_name=_text(elem, "app_name", "wordcount"),
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def load_jobtracker_xml(source: str | pathlib.Path
                        ) -> tuple[BoincMRConfig, list[MapReduceJobSpec]]:
    """Parse an ``mr_jobtracker.xml`` document (path or XML text).

    Returns the project-wide config and every ``<job>`` declared.
    """
    text = source
    path = pathlib.Path(str(source))
    try:
        if path.exists():
            text = path.read_text()
    except OSError:
        pass  # definitely inline XML
    try:
        root = ET.fromstring(str(text))
    except ET.ParseError as exc:
        raise ConfigError(f"invalid XML: {exc}") from exc
    if root.tag != "mr_jobtracker":
        raise ConfigError(f"expected <mr_jobtracker> root, got <{root.tag}>")
    config_elem = root.find("config")
    config = (parse_mr_config(config_elem) if config_elem is not None
              else BoincMRConfig())
    jobs = [parse_job_spec(j) for j in root.findall("job")]
    return config, jobs


def dump_jobtracker_xml(config: BoincMRConfig,
                        jobs: _t.Sequence[MapReduceJobSpec] = ()) -> str:
    """Serialise config + jobs back to ``mr_jobtracker.xml`` text."""
    root = ET.Element("mr_jobtracker")
    cfg = ET.SubElement(root, "config")

    def setting(tag: str, value: _t.Any) -> None:
        child = ET.SubElement(cfg, tag)
        if isinstance(value, bool):
            child.text = "1" if value else "0"
        else:
            child.text = str(value)

    setting("reduce_from_peers", config.reduce_from_peers)
    setting("upload_map_outputs", config.upload_map_outputs)
    setting("serve_timeout", config.serve_timeout_s)
    setting("peer_retries", config.peer_retries)
    setting("peer_failure_rate", config.peer_failure_rate)
    setting("reduce_creation_fraction", config.reduce_creation_fraction)
    for spec in jobs:
        job = ET.SubElement(root, "job")
        for tag, value in (
            ("name", spec.name), ("n_maps", spec.n_maps),
            ("n_reducers", spec.n_reducers), ("input_size", spec.input_size),
            ("replication", spec.replication), ("quorum", spec.quorum),
            ("app_name", spec.app_name),
        ):
            ET.SubElement(job, tag).text = str(value)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")
