"""MapReduce job specification and runtime state (BOINC-MR side).

A :class:`MapReduceJobSpec` captures what the paper's ``mr_jobtracker.xml``
configures: the number of mappers and reducers, replication/quorum, and —
via a :class:`~repro.core.costmodel.MapReduceCostModel` — the compute and
data volumes of each task.  :class:`MapReduceJob` is the server-side
runtime record the JobTracker maintains: per-phase progress, validated
mapper locations, and completion events the harness can wait on.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from ..sim import Event, Simulator
from .costmodel import WORD_COUNT, MapReduceCostModel


class JobPhase(enum.Enum):
    """Coarse MapReduce job state as driven by the JobTracker."""

    MAP = "map"
    REDUCE = "reduce"
    DONE = "done"
    FAILED = "failed"


@dataclasses.dataclass(frozen=True, slots=True)
class MapReduceJobSpec:
    """Static description of one MapReduce job."""

    name: str
    n_maps: int
    n_reducers: int
    input_size: float = 1e9          # paper: fixed 1 GB initial input
    replication: int = 2             # results per workunit
    quorum: int = 2                  # identical outputs required
    cost: MapReduceCostModel = WORD_COUNT
    app_name: str = "wordcount"

    def __post_init__(self) -> None:
        if self.n_maps < 1 or self.n_reducers < 1:
            raise ValueError("n_maps and n_reducers must be >= 1")
        if self.input_size <= 0:
            raise ValueError("input_size must be positive")
        if self.quorum < 1 or self.replication < self.quorum:
            raise ValueError("need replication >= quorum >= 1")

    # -- derived geometry ------------------------------------------------------
    @property
    def chunk_size(self) -> float:
        """Input bytes per map task (input split into #maps chunks)."""
        return self.input_size / self.n_maps

    @property
    def map_flops(self) -> float:
        """Compute cost of one map task, from the cost model."""
        return self.cost.map_flops(self.chunk_size)

    @property
    def reduce_flops(self) -> float:
        """Compute cost of one reduce task, from the cost model."""
        return self.cost.reduce_flops(self.chunk_size, self.n_maps,
                                      self.n_reducers)

    def map_output_size(self) -> float:
        """Bytes of one (mapper, reducer-partition) intermediate file."""
        return self.cost.map_output_bytes(self.chunk_size, self.n_reducers)

    def reduce_output_size(self) -> float:
        """Bytes one reduce task writes, from the cost model."""
        return self.cost.reduce_output_bytes(self.chunk_size, self.n_maps,
                                             self.n_reducers)

    # -- file naming conventions (shared by executor, fetcher, jobtracker) ----
    def map_input_file(self, map_index: int) -> str:
        """Canonical name of map *map_index*'s input chunk."""
        return f"{self.name}_map{map_index}_in"

    def map_output_file(self, map_index: int, reduce_index: int) -> str:
        """Canonical name of the (mapper, reducer) intermediate file."""
        return f"{self.name}_m{map_index}_r{reduce_index}"

    def reduce_output_file(self, reduce_index: int) -> str:
        """Canonical name of reduce *reduce_index*'s final output."""
        return f"{self.name}_out{reduce_index}"


@dataclasses.dataclass(slots=True)
class MapTaskRecord:
    """JobTracker's view of one validated map task."""

    map_index: int
    wu_id: int
    #: Addresses (host names) of clients holding validated output.
    holders: list[str] = dataclasses.field(default_factory=list)
    validated_at: float | None = None


class MapReduceJob:
    """Runtime state of a submitted job (owned by the JobTracker)."""

    def __init__(self, sim: Simulator, spec: MapReduceJobSpec) -> None:
        """Track *spec* through its phases on *sim* (starts in MAP)."""
        self.sim = sim
        self.spec = spec
        self.phase = JobPhase.MAP
        self.map_tasks: dict[int, MapTaskRecord] = {}
        self.reduce_done: set[int] = set()
        self.map_wu_ids: dict[int, int] = {}      # map_index -> wu id
        self.reduce_wu_ids: dict[int, int] = {}   # reduce_index -> wu id
        self.submitted_at = sim.now
        self.map_phase_done_at: float | None = None
        self.reduce_created_at: float | None = None
        self.finished_at: float | None = None
        #: Fired when every map WU has been validated & assimilated.
        self.map_phase_done: Event = sim.event(f"{spec.name}.maps_done")
        #: Fired when the job completes (all reduce outputs returned).
        self.done: Event = sim.event(f"{spec.name}.done")

    # -- progress ------------------------------------------------------------
    @property
    def maps_completed(self) -> int:
        """Validated map tasks so far."""
        return len(self.map_tasks)

    @property
    def reduces_completed(self) -> int:
        """Validated reduce tasks so far."""
        return len(self.reduce_done)

    @property
    def finished(self) -> bool:
        """True in either terminal phase (DONE or FAILED)."""
        return self.phase in (JobPhase.DONE, JobPhase.FAILED)

    def record_map_validated(self, map_index: int, wu_id: int,
                             holders: _t.Sequence[str], now: float) -> None:
        """A map WU passed validation; remember which hosts hold output."""
        if map_index in self.map_tasks:
            raise ValueError(f"map {map_index} already validated")
        self.map_tasks[map_index] = MapTaskRecord(
            map_index=map_index, wu_id=wu_id, holders=list(holders),
            validated_at=now)
        if len(self.map_tasks) == self.spec.n_maps:
            self.phase = JobPhase.REDUCE
            self.map_phase_done_at = now
            self.map_phase_done.trigger(self)

    def record_reduce_validated(self, reduce_index: int, now: float) -> None:
        """A reduce WU passed validation; flips to DONE on the last one."""
        if reduce_index in self.reduce_done:
            raise ValueError(f"reduce {reduce_index} already validated")
        self.reduce_done.add(reduce_index)
        if len(self.reduce_done) == self.spec.n_reducers:
            self.phase = JobPhase.DONE
            self.finished_at = now
            self.done.trigger(self)

    def fail(self, reason: str) -> None:
        """Mark the job FAILED with *reason* (no-op when already terminal)."""
        if self.finished:
            return
        self.phase = JobPhase.FAILED
        self.finished_at = self.sim.now
        self.done.fail(RuntimeError(f"job {self.spec.name} failed: {reason}"))

    def makespan(self) -> float | None:
        """Submission to completion, if finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<MapReduceJob {self.spec.name} {self.phase.value} "
                f"maps={self.maps_completed}/{self.spec.n_maps} "
                f"reduces={self.reduces_completed}/{self.spec.n_reducers}>")
