"""BOINC-MR: pull-model MapReduce over volunteer computing (the paper's core).

Public surface:

- :class:`VolunteerCloud` — build and run a complete deployment;
- :class:`CloudSpec` — its frozen construction spec
  (``VolunteerCloud.from_spec(spec)``);
- :class:`MapReduceJobSpec`, :class:`MapReduceJob`, :class:`JobPhase`;
- :class:`JobTracker` — the new server module;
- :class:`BoincMRConfig` — project-wide MR policy;
- cost models: :class:`MapReduceCostModel`, ``WORD_COUNT``, ``GREP``,
  ``INVERTED_INDEX``;
- client strategies: :class:`MapReduceExecutor`,
  :class:`MapReduceInputFetcher`, :class:`MapReduceOutputPolicy`,
  :class:`PeerStore`, :class:`ClientDirectory`.
"""

from .config import BoincMRConfig
from .costmodel import GREP, INVERTED_INDEX, WORD_COUNT, MapReduceCostModel
from .executor import MapReduceExecutor
from .interclient import PeerStore, ServedFile
from .job import JobPhase, MapReduceJob, MapReduceJobSpec, MapTaskRecord
from .jobtracker import JobTracker
from .policies import ClientDirectory, MapReduceInputFetcher, MapReduceOutputPolicy
from .system import CloudSpec, VolunteerCloud
from .workflow import MapReduceWorkflow, WorkflowStage, pipeline
from .xmlconfig import ConfigError, dump_jobtracker_xml, load_jobtracker_xml

__all__ = [
    "VolunteerCloud",
    "CloudSpec",
    "MapReduceWorkflow",
    "WorkflowStage",
    "pipeline",
    "ConfigError",
    "load_jobtracker_xml",
    "dump_jobtracker_xml",
    "MapReduceJobSpec",
    "MapReduceJob",
    "JobPhase",
    "MapTaskRecord",
    "JobTracker",
    "BoincMRConfig",
    "MapReduceCostModel",
    "WORD_COUNT",
    "GREP",
    "INVERTED_INDEX",
    "MapReduceExecutor",
    "MapReduceInputFetcher",
    "MapReduceOutputPolicy",
    "PeerStore",
    "ServedFile",
    "ClientDirectory",
]
