"""BOINC-MR project configuration (the paper's ``mr_jobtracker.xml``).

One place for every MapReduce-specific policy knob: whether map outputs
are additionally uploaded to the server (enabling the n-retries-then-server
fallback, at the cost of the bandwidth the prototype was built to save),
how long mappers serve their outputs, and how reducers retry peer
downloads.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(slots=True)
class BoincMRConfig:
    """Project-wide BOINC-MR settings."""

    #: Reduce inputs are fetched from mapper peers when possible.
    reduce_from_peers: bool = True
    #: Map outputs are *also* uploaded to the data server.  Required for
    #: the server-fallback path and for serving non-MR clients; the paper
    #: calls this "not an ideal solution, but [it] guarantees that a job's
    #: execution will not be stopped due to transfer failures".
    upload_map_outputs: bool = False
    #: How long a mapper keeps its outputs available for peers before the
    #: serving timeout expires (Section III.C: "chosen according to the
    #: expected execution time of a map task"; the paper used a value
    #: "large enough to allow all inter-client transfers").
    serve_timeout_s: float = 4 * 3600.0
    #: Failed inter-client download attempts before falling back.
    peer_retries: int = 3
    #: Probability that any single inter-client transfer fails (injected).
    peer_failure_rate: float = 0.0
    #: Whether non-BOINC-MR clients may run reduce tasks (via the server).
    #: Requires ``upload_map_outputs``.
    legacy_reduce_via_server: bool = True
    #: §IV.C "intermediate data downloads" ablation: create reduce
    #: workunits once this fraction of map WUs has validated (1.0 =
    #: paper behaviour, wait for every map).  Reducers then overlap their
    #: downloads with the tail of the map phase, polling the data server
    #: for partitions that are not ready yet.
    reduce_creation_fraction: float = 1.0
    #: While waiting for a late map output, poll the server this often.
    fetch_poll_s: float = 30.0
    #: Give up on a missing reduce input after this many polls.
    fetch_poll_attempts: int = 120

    def __post_init__(self) -> None:
        if not 0.0 < self.reduce_creation_fraction <= 1.0:
            raise ValueError("reduce_creation_fraction must be in (0, 1]")
        if self.fetch_poll_s <= 0 or self.fetch_poll_attempts < 1:
            raise ValueError("fetch poll settings must be positive")
        if (self.reduce_creation_fraction < 1.0
                and not self.upload_map_outputs):
            # Early reduce WUs carry peer locations only for maps already
            # validated; late partitions can only be found on the server.
            raise ValueError(
                "reduce_creation_fraction < 1 requires upload_map_outputs "
                "(late map outputs are fetched by polling the data server)")
        if self.peer_retries < 0:
            raise ValueError("peer_retries must be >= 0")
        if not 0.0 <= self.peer_failure_rate <= 1.0:
            raise ValueError("peer_failure_rate must be in [0, 1]")
        if self.serve_timeout_s <= 0:
            raise ValueError("serve_timeout_s must be positive")
