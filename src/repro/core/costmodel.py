"""Application cost models calibrated against the paper's Table I.

The simulator needs, for every task, (a) compute time on a reference host
and (b) intermediate/output data volumes.  For word count these are derived
from the paper's own numbers:

- Map: with the straggler discarded, map times cluster at ~360–400 s
  regardless of chunk size (25–100 MB), implying the measured interval is
  dominated by queue position and shared-server download time on top of a
  per-byte compute cost.  Working back from the 20-node / 20-map row
  (50 MB chunks, ~360 s including a ~80 s shared download) gives a
  word-count map throughput of ~0.6 MB/s on the pc3001-class hosts — slow,
  but consistent with the paper's app writing one output line per input
  word through the BOINC API.
- Reduce: each reducer consumes ~(input_size / n_reducers) bytes of map
  output (1 GB/5 = 200 MB in the 20-node rows) in ~340 s including an
  ~80 s download, giving ~1.2 MB/s reduce throughput (counting is cheaper
  than tokenising + emitting).
- Intermediate volume: word count emits "word 1" per input word, so map
  output ≈ input chunk size (ratio 1.0), split evenly over reducers by the
  hash-mod partitioner.  Final reduce output is the distinct-word counts,
  a small fraction of the input.

Absolute values are *calibration*, not ground truth — the benchmarks
assert relational shape, not these constants.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class MapReduceCostModel:
    """Per-byte compute costs and data-volume ratios for one application."""

    #: Bytes/s a reference (flops=1.0) host maps.
    map_throughput: float
    #: Bytes/s a reference host reduces.
    reduce_throughput: float
    #: Map output bytes per input byte (total across partitions).
    intermediate_ratio: float
    #: Final output bytes per reducer, per byte of reduce input.
    final_output_ratio: float

    def __post_init__(self) -> None:
        for field in ("map_throughput", "reduce_throughput"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        for field in ("intermediate_ratio", "final_output_ratio"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")

    # -- per-task quantities -------------------------------------------------
    def map_flops(self, chunk_bytes: float) -> float:
        """Compute cost of one map task, in reference-host seconds."""
        return chunk_bytes / self.map_throughput

    def map_output_bytes(self, chunk_bytes: float, n_reducers: int) -> float:
        """Bytes of map output destined for *each* reducer partition."""
        if n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        return chunk_bytes * self.intermediate_ratio / n_reducers

    def reduce_input_bytes(self, chunk_bytes: float, n_maps: int,
                           n_reducers: int) -> float:
        """Total bytes one reducer downloads (one partition per mapper)."""
        return self.map_output_bytes(chunk_bytes, n_reducers) * n_maps

    def reduce_flops(self, chunk_bytes: float, n_maps: int,
                     n_reducers: int) -> float:
        """Compute cost of one reduce task, in reference-host seconds."""
        return (self.reduce_input_bytes(chunk_bytes, n_maps, n_reducers)
                / self.reduce_throughput)

    def reduce_output_bytes(self, chunk_bytes: float, n_maps: int,
                            n_reducers: int) -> float:
        """Final output bytes of one reduce task."""
        return (self.reduce_input_bytes(chunk_bytes, n_maps, n_reducers)
                * self.final_output_ratio)


#: Word count, calibrated as described in the module docstring.
WORD_COUNT = MapReduceCostModel(
    map_throughput=0.6e6,
    reduce_throughput=1.2e6,
    intermediate_ratio=1.0,
    final_output_ratio=0.05,
)

#: Distributed grep: maps scan fast and emit only matching lines; the
#: reduce side is nearly free.  Used by the extension benchmarks to explore
#: "which scenarios are the most suited" (Section IV.B future work).
GREP = MapReduceCostModel(
    map_throughput=5e6,
    reduce_throughput=20e6,
    intermediate_ratio=0.01,
    final_output_ratio=1.0,
)

#: Inverted index: map emits (term, doc) postings comparable in volume to
#: the input; reduce sorts/merges them — both sides heavier than word count.
INVERTED_INDEX = MapReduceCostModel(
    map_throughput=0.3e6,
    reduce_throughput=0.4e6,
    intermediate_ratio=1.2,
    final_output_ratio=0.8,
)
