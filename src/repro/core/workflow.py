"""MapReduce workflows: chains of jobs over a volunteer cloud.

Section II positions MapReduce "as a gateway to allow other paradigms or
more complex applications" — "there are several examples of MapReduce
workflows" — and the conclusion notes that "many applications can be
broken down into sequences of MapReduce jobs (some with only map or just
reduce sections)".  :class:`MapReduceWorkflow` executes such a sequence on
a :class:`~repro.core.system.VolunteerCloud`: each stage's reduce outputs
(landed on the project data server) become the next stage's input, whose
size is derived from the previous stage's actual output volume.

Stages may be full map+reduce jobs or map-only (``n_reducers`` semantics
still apply server-side: BOINC-MR always creates reduce workunits, so a
"map-only" stage is expressed as one pass-through reducer with a
negligible reduce cost).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..sim import Event
from .costmodel import WORD_COUNT, MapReduceCostModel
from .job import MapReduceJob, MapReduceJobSpec

if _t.TYPE_CHECKING:  # pragma: no cover
    from .system import VolunteerCloud


@dataclasses.dataclass(frozen=True, slots=True)
class WorkflowStage:
    """One stage of a workflow (geometry + cost profile)."""

    name: str
    n_maps: int
    n_reducers: int
    cost: MapReduceCostModel = WORD_COUNT
    app_name: str = "stage"
    replication: int = 2
    quorum: int = 2

    def __post_init__(self) -> None:
        if self.n_maps < 1 or self.n_reducers < 1:
            raise ValueError("stage geometry must be >= 1")


class MapReduceWorkflow:
    """A sequence of MapReduce jobs, each consuming its predecessor's output."""

    def __init__(self, cloud: "VolunteerCloud", name: str,
                 stages: _t.Sequence[WorkflowStage],
                 input_size: float) -> None:
        """A workflow of *stages* over *input_size* bytes on *cloud*."""
        if not stages:
            raise ValueError("workflow needs at least one stage")
        if input_size <= 0:
            raise ValueError("input_size must be positive")
        if len({s.name for s in stages}) != len(stages):
            raise ValueError("stage names must be unique")
        self.cloud = cloud
        self.name = name
        self.stages = tuple(stages)
        self.input_size = float(input_size)
        self.jobs: list[MapReduceJob] = []
        #: Fires with the job list when the last stage completes (fails if
        #: any stage fails).
        self.done: Event = cloud.sim.event(f"workflow:{name}")
        self._started = False

    # -- execution ---------------------------------------------------------------
    def start(self) -> "MapReduceWorkflow":
        """Submit stage 0 and chain the rest on completion events."""
        if self._started:
            raise RuntimeError(f"workflow {self.name} already started")
        self._started = True
        self.cloud.start()
        self.cloud.sim.process(self._drive(), name=f"workflow:{self.name}")
        return self

    def _drive(self) -> _t.Generator:
        size = self.input_size
        try:
            for stage in self.stages:
                spec = MapReduceJobSpec(
                    name=f"{self.name}.{stage.name}",
                    n_maps=stage.n_maps,
                    n_reducers=stage.n_reducers,
                    input_size=size,
                    replication=stage.replication,
                    quorum=stage.quorum,
                    cost=stage.cost,
                    app_name=stage.app_name,
                )
                job = self.cloud.jobtracker.submit(spec)
                self.jobs.append(job)
                yield job.done
                # Next stage's input is this stage's total reduce output.
                size = max(1.0, spec.reduce_output_size() * spec.n_reducers)
        except Exception as exc:  # noqa: BLE001 - stage failed: fail workflow
            self.done.fail(RuntimeError(
                f"workflow {self.name} failed at stage "
                f"{len(self.jobs)}: {exc}"))
            return
        self.done.trigger(list(self.jobs))

    def run(self, timeout: float = 14 * 24 * 3600.0) -> list[MapReduceJob]:
        """Start (if needed) and block until the workflow completes."""
        if not self._started:
            self.start()
        self.cloud.run_until(self.done, timeout=timeout)
        return list(self.jobs)

    # -- results ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once every stage has completed."""
        return self.done.triggered

    def makespan(self) -> float | None:
        """First stage submission to last stage completion."""
        if not self.finished or not self.jobs:
            return None
        return self.jobs[-1].finished_at - self.jobs[0].submitted_at

    def stage_makespans(self) -> list[float]:
        """Per-stage makespans in submission order."""
        return [job.makespan() or 0.0 for job in self.jobs]


def pipeline(cloud: "VolunteerCloud", name: str, input_size: float,
             *stages: WorkflowStage) -> MapReduceWorkflow:
    """Convenience constructor: ``pipeline(cloud, "w", 1e9, s1, s2).run()``."""
    return MapReduceWorkflow(cloud, name, stages, input_size)
