"""The JobTracker: BOINC-MR's new server module (Section III.B).

The JobTracker owns MapReduce job state on the server: it creates map
workunits from a job spec, learns which clients hold validated map outputs
(via the assimilator hook), automatically creates reduce workunits once
every map is validated, and answers the scheduler's question "where can
this reduce task's inputs be downloaded from?" — appending mapper
addresses to reduce assignments for BOINC-MR clients, or nothing for
legacy clients (whose inputs come from the data server).
"""

from __future__ import annotations

import typing as _t

from ..boinc.model import FileRef, HostRecord, Result, Workunit
from ..boinc.server import ProjectServer
from ..sim import Simulator, Tracer
from .config import BoincMRConfig
from .job import JobPhase, MapReduceJob, MapReduceJobSpec


class JobTracker:
    """Coordinates MapReduce jobs over a :class:`ProjectServer`."""

    def __init__(self, sim: Simulator, server: ProjectServer,
                 config: BoincMRConfig | None = None,
                 tracer: Tracer | None = None) -> None:
        """Attach the tracker to a server; jobs are added via submit()."""
        self.sim = sim
        self.server = server
        self.config = config or BoincMRConfig()
        self.tracer = tracer if tracer is not None else server.tracer
        self.metrics = server.metrics
        self.jobs: dict[str, MapReduceJob] = {}
        server.assimilate_handler = self._on_assimilated
        server.locate_reduce_inputs = self.locate_reduce_inputs
        server.on_wu_error = self._on_wu_error
        #: Optional callback fired when a job finishes (system wiring).
        self.on_job_done: _t.Callable[[MapReduceJob], None] | None = None

    # -- job submission -----------------------------------------------------------
    def submit(self, spec: MapReduceJobSpec) -> MapReduceJob:
        """Create the job's map workunits (``create_work`` + mapreduce tag)."""
        if spec.name in self.jobs:
            raise ValueError(f"job {spec.name!r} already submitted")
        job = MapReduceJob(self.sim, spec)
        self.jobs[spec.name] = job
        for i in range(spec.n_maps):
            wu = Workunit(
                id=self.server.db.new_wu_id(),
                app_name=f"{spec.app_name}_map",
                input_files=(FileRef(spec.map_input_file(i), spec.chunk_size),),
                flops=spec.map_flops,
                target_nresults=spec.replication,
                min_quorum=spec.quorum,
                mr_job=spec.name,
                mr_kind="map",
                mr_index=i,
                created_at=self.sim.now,
            )
            self.server.submit_workunit(wu, publish_inputs=True)
            job.map_wu_ids[i] = wu.id
        if self.metrics is not None:
            self.metrics.counter("jobtracker.jobs_submitted_total").inc()
        self.tracer.record(self.sim.now, "jobtracker.submitted", job=spec.name,
                           n_maps=spec.n_maps, n_reducers=spec.n_reducers)
        return job

    # -- server hooks -----------------------------------------------------------
    def _on_assimilated(self, wu: Workunit, canonical: Result) -> None:
        if wu.mr_job is None:
            return
        job = self.jobs.get(wu.mr_job)
        if job is None or job.finished:
            return
        if wu.mr_kind == "map":
            holders = [
                h.name for h in self.server.valid_hosts_for_wu(wu.id)
                if h.supports_mr
            ]
            job.record_map_validated(wu.mr_index, wu.id, holders, self.sim.now)
            if self.metrics is not None:
                self.metrics.counter("jobtracker.maps_validated_total").inc()
            self.tracer.record(self.sim.now, "jobtracker.map_done",
                               job=job.spec.name, index=wu.mr_index,
                               holders=len(holders))
            threshold = max(1, int(round(self.config.reduce_creation_fraction
                                         * job.spec.n_maps)))
            if job.maps_completed >= threshold and not job.reduce_wu_ids:
                self._create_reduce_wus(job)
        elif wu.mr_kind == "reduce":
            job.record_reduce_validated(wu.mr_index, self.sim.now)
            if self.metrics is not None:
                self.metrics.counter("jobtracker.reduces_validated_total").inc()
            self.tracer.record(self.sim.now, "jobtracker.reduce_done",
                               job=job.spec.name, index=wu.mr_index)
            if job.phase is JobPhase.DONE:
                if self.metrics is not None:
                    self.metrics.counter("jobtracker.jobs_done_total").inc()
                    self.metrics.histogram("jobtracker.job_makespan_s").observe(
                        job.makespan())
                self.tracer.record(self.sim.now, "jobtracker.job_done",
                                   job=job.spec.name,
                                   makespan=job.makespan())
                if self.on_job_done is not None:
                    self.on_job_done(job)

    def _on_wu_error(self, wu: Workunit) -> None:
        if wu.mr_job is None:
            return
        job = self.jobs.get(wu.mr_job)
        if job is not None:
            job.fail(f"{wu.mr_kind} workunit {wu.mr_index} errored: "
                     f"{wu.error_reason}")

    def _create_reduce_wus(self, job: MapReduceJob) -> None:
        """All maps validated: create the reduce workunits (Section III.B).

        Reduce inputs are the map-output partitions; they are *not*
        published on the data server here — they arrive there only if map
        clients upload them (``upload_map_outputs``).
        """
        spec = job.spec
        job.reduce_created_at = self.sim.now
        for r in range(spec.n_reducers):
            inputs = tuple(
                FileRef(spec.map_output_file(i, r), spec.map_output_size())
                for i in range(spec.n_maps)
            )
            wu = Workunit(
                id=self.server.db.new_wu_id(),
                app_name=f"{spec.app_name}_reduce",
                input_files=inputs,
                flops=spec.reduce_flops,
                target_nresults=spec.replication,
                min_quorum=spec.quorum,
                mr_job=spec.name,
                mr_kind="reduce",
                mr_index=r,
                created_at=self.sim.now,
            )
            self.server.submit_workunit(wu, publish_inputs=False)
            job.reduce_wu_ids[r] = wu.id
        self.tracer.record(self.sim.now, "jobtracker.reduce_created",
                           job=spec.name, n=spec.n_reducers)

    # -- scheduler hook ------------------------------------------------------------
    def locate_reduce_inputs(self, wu: Workunit,
                             host: HostRecord) -> dict[int, list[str]]:
        """Mapper addresses for a reduce assignment (empty for legacy path)."""
        job = self.jobs.get(wu.mr_job or "")
        if job is None:
            return {}
        if not (self.config.reduce_from_peers and host.supports_mr):
            return {}
        return {
            i: list(rec.holders)
            for i, rec in job.map_tasks.items()
            if rec.holders
        }

    def spec(self, job_name: str) -> MapReduceJobSpec:
        """Spec of a submitted job (KeyError if unknown)."""
        return self.jobs[job_name].spec
