"""Named chaos plans: curated fault schedules that ship with the repo.

A :class:`ChaosPlan` is an ordered set of :class:`FaultSpec`s.  The
bundled plans each stress one recovery mechanism the paper's design
claims (peer retry + server fallback, deadline timeouts + replica top-up,
exponential backoff against a dead server, quorum validation against
byzantine hosts); ``kitchen-sink`` layers them all.  Plans can also be
loaded from TOML files::

    name = "my-plan"

    [[fault]]
    kind = "dataserver_outage"
    at = 60.0
    duration = 300.0

    [[fault]]
    kind = "straggler"
    at = 120.0
    duration = 900.0
    target = "random:2"
    factor = 6.0

Times are simulated seconds from run start; unknown keys on a row become
the fault's kind-specific params.
"""

from __future__ import annotations

import dataclasses
import pathlib
import tomllib
import typing as _t

from .spec import FaultSpec


@dataclasses.dataclass(frozen=True, slots=True)
class ChaosPlan:
    """An ordered, named collection of faults."""

    name: str
    description: str
    faults: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        if not self.faults:
            raise ValueError(f"chaos plan {self.name!r} has no faults")


def _plan(name: str, description: str,
          rows: _t.Sequence[dict[str, _t.Any]]) -> ChaosPlan:
    return ChaosPlan(name=name, description=description,
                     faults=tuple(FaultSpec.from_dict(r) for r in rows))


BUILTIN_PLANS: dict[str, ChaosPlan] = {p.name: p for p in (
    _plan("flaky-network",
          "Volunteer links flap and degrade mid-job; peer retry and "
          "transfer re-starts must carry the shuffle through.",
          [
              {"kind": "link_flap", "at": 150.0, "duration": 200.0,
               "target": "random:2"},
              {"kind": "bandwidth", "at": 500.0, "duration": 600.0,
               "target": "random:3", "factor": 0.2},
              {"kind": "link_flap", "at": 900.0, "duration": 150.0,
               "target": "random"},
          ]),
    _plan("split-brain",
          "Network partitions cut islands of volunteers off from the "
          "server and each other; deadline timeouts and replicas recover "
          "the stranded work.",
          [
              {"kind": "partition", "at": 200.0, "duration": 500.0,
               "isolate": 3},
              {"kind": "partition", "at": 1000.0, "duration": 300.0,
               "isolate": 2},
          ]),
    _plan("dataserver-degraded",
          "The project data server corrupts, refuses, and throttles "
          "transfers — timed to hit the initial input distribution, the "
          "replica top-up, and the reduce phase; clients must retry with "
          "backoff and re-download on checksum failure.",
          [
              {"kind": "transfer_corrupt", "at": 3.0, "duration": 30.0,
               "rate": 1.0},
              {"kind": "dataserver_outage", "at": 40.0, "duration": 120.0},
              {"kind": "dataserver_slow", "at": 600.0, "duration": 600.0,
               "factor": 0.15},
          ]),
    _plan("server-chaos",
          "Server daemons hang and the whole project crashes and "
          "restarts; clients poll through the outage with exponential "
          "backoff and nothing is lost (state is in the database).",
          [
              {"kind": "daemon_stall", "at": 120.0, "duration": 300.0,
               "daemon": "transitioner"},
              {"kind": "server_crash", "at": 600.0, "duration": 300.0},
              {"kind": "daemon_stall", "at": 1200.0, "duration": 200.0,
               "daemon": "validator"},
          ]),
    _plan("bad-volunteers",
          "Stragglers, byzantine hosts, and corrupt peer serves; quorum "
          "validation, replica top-up, and peer-store eviction must keep "
          "the output honest.",
          [
              {"kind": "straggler", "at": 60.0, "duration": 1500.0,
               "target": "random:2", "factor": 6.0},
              {"kind": "byzantine", "at": 60.0, "duration": 1200.0,
               "target": "random:2"},
              {"kind": "peer_corrupt", "at": 300.0, "duration": 600.0,
               "target": "random"},
          ]),
    _plan("kitchen-sink",
          "Every fault class in one run: the full failure surface the "
          "paper's design defends against, injected deterministically.",
          [
              {"kind": "straggler", "at": 60.0, "duration": 1200.0,
               "target": "random", "factor": 5.0},
              {"kind": "link_flap", "at": 150.0, "duration": 200.0,
               "target": "random:2"},
              {"kind": "dataserver_outage", "at": 300.0, "duration": 240.0},
              {"kind": "byzantine", "at": 400.0, "duration": 900.0,
               "target": "random"},
              {"kind": "partition", "at": 700.0, "duration": 300.0,
               "isolate": 2},
              {"kind": "daemon_stall", "at": 900.0, "duration": 240.0,
               "daemon": "validator"},
              {"kind": "server_crash", "at": 1300.0, "duration": 240.0},
              {"kind": "bandwidth", "at": 1700.0, "duration": 400.0,
               "target": "random:2", "factor": 0.25},
          ]),
)}


def load_plan(path: str | pathlib.Path) -> ChaosPlan:
    """Load a chaos plan from a TOML file (``[[fault]]`` rows)."""
    p = pathlib.Path(path)
    with p.open("rb") as fh:
        doc = tomllib.load(fh)
    rows = doc.get("fault", [])
    if not isinstance(rows, list) or not rows:
        raise ValueError(f"{p}: no [[fault]] tables found")
    return ChaosPlan(
        name=str(doc.get("name", p.stem)),
        description=str(doc.get("description", f"loaded from {p}")),
        faults=tuple(FaultSpec.from_dict(row) for row in rows))


def resolve_plan(ref: str) -> ChaosPlan:
    """Resolve a plan reference: a builtin name or a TOML file path."""
    if ref in BUILTIN_PLANS:
        return BUILTIN_PLANS[ref]
    p = pathlib.Path(ref)
    if p.exists():
        return load_plan(p)
    raise ValueError(
        f"unknown chaos plan {ref!r}: not a builtin "
        f"({', '.join(sorted(BUILTIN_PLANS))}) and no such file")
