"""Declarative fault specifications.

A :class:`FaultSpec` names one fault to inject at a point in simulated
time: *what* (``kind``), *when* (``at``), *for how long* (``duration``),
*where* (``target``), plus kind-specific ``params``.  Specs are plain
data — validation happens here, application happens in
:mod:`repro.faults.injector` — so chaos plans can live in TOML files and
ship with the repo.

The fault vocabulary covers the failure surface the paper's design
defends against but its evaluation deferred ("we did not consider node
failure in our tests"): flaky links, partitions, degraded or dead data
servers, corrupt transfers, stalled or crashed server daemons, straggler
hosts, and byzantine volunteers.
"""

from __future__ import annotations

import dataclasses
import typing as _t

#: Every fault kind the injector knows how to apply.
FAULT_KINDS: frozenset[str] = frozenset({
    # network substrate
    "link_flap",          # target host drops off the network, then returns
    "bandwidth",          # scale target host's access-link capacity by `factor`
    "partition",          # isolate `isolate` random clients (or `groups`)
    # data server
    "dataserver_outage",  # 503-style refusals on every download/upload
    "dataserver_slow",    # per-transfer rate capped to `factor` of capacity
    "transfer_corrupt",   # served payloads fail checksum with prob `rate`
    # peers
    "peer_corrupt",       # target host serves corrupt map outputs
    # project server
    "daemon_stall",       # `daemon` skips its passes (hung query)
    "server_crash",       # scheduler + daemons + data server down, then restart
    # volunteers
    "straggler",          # target host computes `factor`x slower
    "byzantine",          # target host corrupts every result digest
})

#: Keys lifted out of a plan-file row into FaultSpec fields; everything
#: else lands in ``params``.
_FIELD_KEYS = ("kind", "at", "duration", "target")


@dataclasses.dataclass(frozen=True, slots=True)
class FaultSpec:
    """One fault: kind, schedule, target, and kind-specific parameters.

    ``target`` selects hosts for per-host kinds: an exact client name,
    ``"random"`` (one seeded pick), ``"random:N"`` (N distinct picks), or
    ``"all"``.  Kinds acting on a singleton (the data server, the project
    server) ignore it.
    """

    kind: str
    at: float
    duration: float
    target: str = ""
    params: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ValueError(
                f"fault duration must be positive, got {self.duration}")

    @classmethod
    def from_dict(cls, row: _t.Mapping[str, _t.Any]) -> "FaultSpec":
        """Build a spec from one plan-file table (``[[fault]]`` row)."""
        if "kind" not in row:
            raise ValueError(f"fault row missing 'kind': {dict(row)!r}")
        params = {k: v for k, v in row.items() if k not in _FIELD_KEYS}
        return cls(kind=str(row["kind"]),
                   at=float(row.get("at", 0.0)),
                   duration=float(row.get("duration", 60.0)),
                   target=str(row.get("target", "")),
                   params=params)

    def to_dict(self) -> dict[str, _t.Any]:
        """Flat dict form (params inlined) for logs and campaign cells."""
        out: dict[str, _t.Any] = {"kind": self.kind, "at": self.at,
                                  "duration": self.duration}
        if self.target:
            out["target"] = self.target
        out.update(self.params)
        return out
