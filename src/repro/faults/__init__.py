"""Deterministic fault injection and post-run consistency auditing.

Public surface:

- :class:`FaultSpec` / :data:`FAULT_KINDS` — declarative fault rows;
- :class:`FaultInjector` — schedules and applies a plan to a cloud;
- :class:`ChaosPlan`, :data:`BUILTIN_PLANS`, :func:`load_plan`,
  :func:`resolve_plan` — named chaos plans (builtin or TOML files);
- :class:`RunAuditor`, :class:`AuditReport`, :class:`Violation` —
  end-state invariant checking.

Typical use::

    cloud = VolunteerCloud.from_spec(CloudSpec(seed=7))
    cloud.add_volunteers(12, mr=True)
    cloud.apply_faults("kitchen-sink")
    job = cloud.run_job(spec)
    report = cloud.audit(job)
    assert report.ok, report.render()
"""

from .audit import AuditReport, RunAuditor, Violation
from .injector import FaultInjector
from .plans import BUILTIN_PLANS, ChaosPlan, load_plan, resolve_plan
from .spec import FAULT_KINDS, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultInjector",
    "ChaosPlan",
    "BUILTIN_PLANS",
    "load_plan",
    "resolve_plan",
    "RunAuditor",
    "AuditReport",
    "Violation",
]
