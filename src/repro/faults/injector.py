"""Deterministic application of :class:`FaultSpec`s to a running cloud.

The injector schedules every fault of a plan on simulated time, applies
it through the substrate's own fault surface (``Network.set_online``,
``DataServer.available``, ``ProjectServer.crash`` …), and undoes it when
its duration elapses.  All randomness — which host is "random", which
served payload is corrupted — comes from one dedicated seeded stream
(``rngs.stream("faults")``), so the same seed + the same plan injects the
same faults at the same instants into the same targets, and the exported
chrome trace stays byte-identical run over run.

Every begin/end emits a ``fault.begin``/``fault.end`` tracer record (the
span builder pairs them into spans on the ``faults`` timeline track) and
ticks ``repro.obs`` metrics.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from .spec import FaultSpec

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..boinc.client import Client
    from ..core.system import VolunteerCloud
    from .plans import ChaosPlan

#: Fault kinds whose target selects volunteer hosts.
_PER_HOST = frozenset({"link_flap", "bandwidth", "peer_corrupt",
                       "straggler", "byzantine"})


class FaultInjector:
    """Arms one chaos plan against one :class:`repro.core.system.VolunteerCloud`."""

    def __init__(self, cloud: "VolunteerCloud",
                 plan: "ChaosPlan | _t.Sequence[FaultSpec]",
                 rng: np.random.Generator | None = None) -> None:
        """Arm *plan*'s faults against *cloud* (scheduled at start())."""
        self.cloud = cloud
        self.specs: tuple[FaultSpec, ...] = tuple(getattr(plan, "faults", plan))
        self.plan_name = getattr(plan, "name", "custom")
        self.rng = rng if rng is not None else cloud.rngs.stream("faults")
        self.tracer = cloud.tracer
        self.metrics = cloud.metrics
        #: Chronological log of applied faults (fid, kind, target, begin, end).
        self.events: list[dict[str, _t.Any]] = []
        self.active = 0
        self._armed = False

    # -- scheduling -----------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every fault of the plan; idempotent."""
        if self._armed:
            return self
        self._armed = True
        for idx, spec in enumerate(self.specs):
            self.cloud.sim.at(spec.at, self._begin, f"f{idx}", spec)
        return self

    def _begin(self, fid: str, spec: FaultSpec) -> None:
        undo, target = self._apply(spec)
        self.active += 1
        self.events.append({"fault": fid, "kind": spec.kind, "target": target,
                            "begin": self.cloud.sim.now,
                            "end": self.cloud.sim.now + spec.duration})
        self.tracer.record(self.cloud.sim.now, "fault.begin", fault=fid,
                           kind=spec.kind, target=target,
                           duration=spec.duration)
        if self.metrics is not None:
            self.metrics.counter("faults.injected_total").inc()
            self.metrics.gauge("faults.active").set(self.active)
        self.cloud.sim.schedule(spec.duration, self._end, fid, spec, undo,
                                target)

    def _end(self, fid: str, spec: FaultSpec, undo: _t.Callable[[], None],
             target: str) -> None:
        undo()
        self.active -= 1
        self.tracer.record(self.cloud.sim.now, "fault.end", fault=fid,
                           kind=spec.kind, target=target)
        if self.metrics is not None:
            self.metrics.gauge("faults.active").set(self.active)

    # -- target resolution ------------------------------------------------------
    def _pick_clients(self, spec: FaultSpec) -> list["Client"]:
        clients = self.cloud.clients
        if not clients:
            raise ValueError(f"fault {spec.kind!r} needs volunteer hosts")
        sel = spec.target or "random"
        if sel == "all":
            return list(clients)
        if sel == "random" or sel.startswith("random:"):
            n = 1 if sel == "random" else int(sel.split(":", 1)[1])
            n = min(n, len(clients))
            idx = self.rng.choice(len(clients), size=n, replace=False)
            return [clients[i] for i in sorted(int(i) for i in idx)]
        for c in clients:
            if c.name == sel:
                return [c]
        raise ValueError(f"fault target {sel!r} matches no client")

    # -- application ------------------------------------------------------------
    def _apply(self, spec: FaultSpec) -> tuple[_t.Callable[[], None], str]:
        """Apply *spec* now; returns (undo, target-description)."""
        if spec.kind in _PER_HOST:
            clients = self._pick_clients(spec)
            undos = [self._apply_host_fault(spec, c) for c in clients]

            def undo_all() -> None:
                for u in undos:
                    u()
            return undo_all, ",".join(c.name for c in clients)
        handler = getattr(self, f"_apply_{spec.kind}")
        return handler(spec)

    def _apply_host_fault(self, spec: FaultSpec,
                          client: "Client") -> _t.Callable[[], None]:
        net = self.cloud.net
        if spec.kind == "link_flap":
            net.set_online(client.host, False)

            def undo() -> None:
                # Churn may have taken (or permanently departed) this host
                # while its link was down; the flap must not resurrect it.
                if (getattr(client, "_stopped", False)
                        or getattr(client, "_paused", False)):
                    return
                net.set_online(client.host, True)
            return undo
        if spec.kind == "bandwidth":
            factor = float(spec.params.get("factor", 0.1))
            if factor <= 0:
                raise ValueError("bandwidth factor must be positive")
            saved = [(client.host.uplink, client.host.uplink.capacity),
                     (client.host.downlink, client.host.downlink.capacity)]
            for link, cap in saved:
                link.capacity = cap * factor
            net.flownet.recompute()

            def undo() -> None:
                for link, cap in saved:
                    link.capacity = cap
                net.flownet.recompute()
            return undo
        if spec.kind == "peer_corrupt":
            client.endpoint.corrupt_serves = True

            def undo() -> None:
                client.endpoint.corrupt_serves = False
            return undo
        if spec.kind == "straggler":
            factor = float(spec.params.get("factor", 4.0))
            if factor < 1.0:
                raise ValueError("straggler factor must be >= 1")
            client.slowdown = factor

            def undo() -> None:
                client.slowdown = 1.0
            return undo
        if spec.kind == "byzantine":
            client.corrupt_results = True

            def undo() -> None:
                client.corrupt_results = False
            return undo
        raise AssertionError(f"unhandled per-host kind {spec.kind!r}")

    def _apply_partition(self, spec: FaultSpec) -> tuple[_t.Callable[[], None], str]:
        net = self.cloud.net
        groups = spec.params.get("groups")
        if groups is None:
            n = int(spec.params.get("isolate", 1))
            island = [c.name for c in self._pick_clients(
                FaultSpec(kind="partition", at=spec.at, duration=spec.duration,
                          target=f"random:{n}"))]
            groups = [island]
        net.set_partition(groups)

        def undo() -> None:
            net.clear_partition()
        return undo, "|".join(",".join(g) for g in groups)

    def _apply_dataserver_outage(
            self, spec: FaultSpec) -> tuple[_t.Callable[[], None], str]:
        ds = self.cloud.server.dataserver
        ds.available = False

        def undo() -> None:
            # A concurrent server_crash owns the flag until restore().
            if self.cloud.server.available:
                ds.available = True
        return undo, "dataserver"

    def _apply_dataserver_slow(
            self, spec: FaultSpec) -> tuple[_t.Callable[[], None], str]:
        ds = self.cloud.server.dataserver
        factor = float(spec.params.get("factor", 0.1))
        if factor <= 0:
            raise ValueError("dataserver_slow factor must be positive")
        previous = ds.slow_factor
        ds.slow_factor = factor

        def undo() -> None:
            ds.slow_factor = previous
        return undo, "dataserver"

    def _apply_transfer_corrupt(
            self, spec: FaultSpec) -> tuple[_t.Callable[[], None], str]:
        ds = self.cloud.server.dataserver
        rate = float(spec.params.get("rate", 1.0))
        if not 0.0 < rate <= 1.0:
            raise ValueError("transfer_corrupt rate must be in (0, 1]")
        ds.corrupt_rate = rate
        ds.corrupt_rng = self.rng

        def undo() -> None:
            ds.corrupt_rate = 0.0
            ds.corrupt_rng = None
        return undo, "dataserver"

    def _apply_daemon_stall(
            self, spec: FaultSpec) -> tuple[_t.Callable[[], None], str]:
        server = self.cloud.server
        name = str(spec.params.get("daemon", "transitioner"))
        if name in server._daemon_procs:
            server.stall_daemon(name, spec.duration)

        def undo() -> None:
            server._stalled_until.pop(name, None)
        return undo, name

    def _apply_server_crash(
            self, spec: FaultSpec) -> tuple[_t.Callable[[], None], str]:
        server = self.cloud.server
        server.crash()

        def undo() -> None:
            server.restore()
        return undo, "server"
