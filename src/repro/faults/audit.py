"""Post-run consistency auditing: did the system actually recover?

Surviving a fault is not the same as recovering from it.  A chaos run can
"finish" while quietly leaking a semaphore slot (one volunteer computes at
half capacity forever), an aborted flow (phantom bandwidth consumption),
or a result the server neither validated nor timed out (work lost without
diagnosis).  :class:`RunAuditor` sweeps every substrate of a
:class:`~repro.core.system.VolunteerCloud` after a run and asserts the
end-state invariants:

- every workunit is terminal (assimilated, or errored with a reason) —
  or its job failed with a diagnosis;
- every result is accounted for (reported, withdrawn, or deadline-timed
  out — never silently lost);
- no active flows, no semaphore imbalance or stuck waiters, no phantom
  CPU occupancy;
- no open observability spans for results that no longer exist.

Use :meth:`settle` (let the daemon pipeline flush) and :meth:`drain`
(let straggling replicas hit their deadline) before :meth:`audit` when
the run just completed a job.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..boinc.model import ResultState, WorkunitState
from ..core.job import JobPhase

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..core.job import MapReduceJob
    from ..core.system import VolunteerCloud
    from ..net.transfer import SimSemaphore


@dataclasses.dataclass(frozen=True, slots=True)
class Violation:
    """One broken invariant: which check, on what, and what is wrong."""

    check: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.detail}"


@dataclasses.dataclass(slots=True)
class AuditReport:
    """Outcome of one :meth:`RunAuditor.audit` sweep."""

    violations: list[Violation]
    checks: dict[str, int]  # check name -> subjects examined
    at: float

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def render(self) -> str:
        """Human-readable audit summary (one line per check/violation)."""
        lines = [f"audit at t={self.at:g}: "
                 + ("OK" if self.ok else f"{len(self.violations)} violation(s)")]
        for name in sorted(self.checks):
            lines.append(f"  {name}: {self.checks[name]} checked")
        for v in self.violations:
            lines.append(f"  FAIL {v}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, _t.Any]:
        """JSON-serialisable form of the report."""
        return {
            "ok": self.ok,
            "at": self.at,
            "checks": dict(self.checks),
            "violations": [dataclasses.asdict(v) for v in self.violations],
        }


class RunAuditor:
    """End-state invariant checker for a :class:`repro.core.system.VolunteerCloud`."""

    def __init__(self, cloud: "VolunteerCloud") -> None:
        """Auditor over one finished (or quiesced) cloud."""
        self.cloud = cloud

    # -- quiescing --------------------------------------------------------------
    def _daemon_period_sum(self) -> float:
        cfg = self.cloud.server.config
        return (cfg.feeder_period_s + cfg.transitioner_period_s
                + cfg.validator_period_s + cfg.assimilator_period_s)

    def settle(self, grace_s: float | None = None) -> None:
        """Run the sim long enough for the daemon pipeline to flush."""
        if grace_s is None:
            grace_s = 3.0 * self._daemon_period_sum()
        self.cloud.sim.run(until=self.cloud.sim.now + grace_s)

    def drain(self, max_s: float | None = None) -> bool:
        """Run until no result is in flight (reported or deadline-timed out).

        Redundant replicas of an already-finished job legitimately stay
        IN_PROGRESS after the job completes; the server recovers them via
        report or deadline timeout.  Returns True when fully drained
        within *max_s* (default: one delay bound plus daemon margin).
        """
        cfg = self.cloud.server.config
        if max_s is None:
            max_s = cfg.delay_bound_s + 3.0 * cfg.transitioner_period_s + 600.0
        sim = self.cloud.sim
        deadline = sim.now + max_s
        step = max(60.0, cfg.transitioner_period_s)
        while sim.now < deadline:
            if not any(r.state is ResultState.IN_PROGRESS
                       for r in self.cloud.server.db.results.values()):
                return True
            sim.run(until=min(sim.now + step, deadline))
        return not any(r.state is ResultState.IN_PROGRESS
                       for r in self.cloud.server.db.results.values())

    # -- the sweep --------------------------------------------------------------
    def audit(self, job: "MapReduceJob | None" = None) -> AuditReport:
        """Sweep every substrate; returns the report (never raises)."""
        violations: list[Violation] = []
        checks: dict[str, int] = {}
        self._check_jobs(job, violations, checks)
        self._check_workunits(violations, checks)
        self._check_results(violations, checks)
        self._check_flows(violations, checks)
        self._check_semaphores(violations, checks)
        self._check_spans(violations, checks)
        return AuditReport(violations=violations, checks=checks,
                           at=self.cloud.sim.now)

    # -- jobs -------------------------------------------------------------------
    def _failed_jobs(self) -> set[str]:
        return {name for name, j in self.cloud.jobtracker.jobs.items()
                if j.phase is JobPhase.FAILED}

    def _check_jobs(self, job: "MapReduceJob | None",
                    violations: list[Violation],
                    checks: dict[str, int]) -> None:
        jobs = ([job] if job is not None
                else list(self.cloud.jobtracker.jobs.values()))
        checks["job"] = len(jobs)
        for j in jobs:
            if not j.done.triggered:
                violations.append(Violation(
                    "job", j.spec.name,
                    f"not terminal (phase={j.phase.name}): neither finished "
                    "nor failed with a diagnosis"))
            elif j.done.exception is not None and j.phase is not JobPhase.FAILED:
                violations.append(Violation(
                    "job", j.spec.name,
                    "done event failed but phase is not FAILED"))

    # -- workunits --------------------------------------------------------------
    def _check_workunits(self, violations: list[Violation],
                         checks: dict[str, int]) -> None:
        db = self.cloud.server.db
        cfg = self.cloud.server.config
        failed_jobs = self._failed_jobs()
        live_horizon = self.cloud.sim.now - 2.0 * cfg.transitioner_period_s
        checks["workunit"] = len(db.workunits)
        for wu in db.workunits.values():
            if wu.state is WorkunitState.ASSIMILATED:
                continue
            if wu.state is WorkunitState.ERROR:
                if not wu.error_reason:
                    violations.append(Violation(
                        "workunit", f"wu{wu.id}",
                        "errored without an error_reason (no diagnosis)"))
                continue
            if wu.mr_job is not None and wu.mr_job in failed_jobs:
                continue  # diagnosed at the job level
            if wu.state is WorkunitState.VALIDATED:
                violations.append(Violation(
                    "workunit", f"wu{wu.id}",
                    "validated but never assimilated (assimilator stalled?)"))
                continue
            # ACTIVE: acceptable only while something can still complete it.
            results = db.results_for_wu(wu.id)
            live = any(
                r.state is ResultState.UNSENT
                or (r.state is ResultState.IN_PROGRESS
                    and (r.deadline is None or r.deadline >= live_horizon))
                for r in results)
            if not live:
                violations.append(Violation(
                    "workunit", f"wu{wu.id}",
                    f"ACTIVE with no live results ({len(results)} total): "
                    "no path to completion"))

    # -- results ----------------------------------------------------------------
    def _check_results(self, violations: list[Violation],
                       checks: dict[str, int]) -> None:
        db = self.cloud.server.db
        cfg = self.cloud.server.config
        now = self.cloud.sim.now
        checks["result"] = len(db.results)
        unsent_ids = set(db._unsent)
        for res in db.results.values():
            if res.state is ResultState.OVER:
                if res.outcome is None:
                    violations.append(Violation(
                        "result", f"r{res.id}",
                        "OVER without an outcome (unaccounted)"))
            elif res.state is ResultState.IN_PROGRESS:
                if (res.deadline is not None
                        and now > res.deadline + 2.0 * cfg.transitioner_period_s):
                    violations.append(Violation(
                        "result", f"r{res.id}",
                        f"lost: deadline {res.deadline:g} passed at {now:g} "
                        "but never timed out (transitioner asleep?)"))
            elif res.state is ResultState.UNSENT:
                if res.id not in unsent_ids:
                    violations.append(Violation(
                        "result", f"r{res.id}",
                        "UNSENT but missing from the unsent queue "
                        "(unassignable)"))
        for rid in unsent_ids:
            res = db.results.get(rid)
            if res is None or res.state is not ResultState.UNSENT:
                violations.append(Violation(
                    "result", f"r{rid}",
                    "in the unsent queue but not UNSENT (stale queue entry)"))

    # -- flows ------------------------------------------------------------------
    def _check_flows(self, violations: list[Violation],
                     checks: dict[str, int]) -> None:
        net = self.cloud.net
        active = list(net.flownet.active)
        checks["flow"] = len(active)
        for flow in active:
            hosts = net.flow_hosts(flow)
            offline = [h.name for h in hosts if not h.online]
            if offline:
                violations.append(Violation(
                    "flow", flow.name,
                    f"active flow touching offline host(s) {offline} "
                    "(leaked on churn)"))
            elif flow.finished:
                violations.append(Violation(
                    "flow", flow.name,
                    "finished but still in the active set"))
            elif not flow.background and flow.rate <= 0:
                violations.append(Violation(
                    "flow", flow.name,
                    "foreground flow with zero rate (stalled forever)"))
            else:
                violations.append(Violation(
                    "flow", flow.name,
                    f"still active at audit time ({flow.remaining:.0f}B "
                    "remaining) — transfer outlived its owner"))

    # -- semaphores -------------------------------------------------------------
    def _sem_violations(self, sem: "SimSemaphore", owner: str,
                        expect_idle: bool) -> list[Violation]:
        out = []
        if sem.balance != sem.in_use:
            out.append(Violation(
                "semaphore", f"{owner}:{sem.name}",
                f"accounting broken: granted-released={sem.balance} "
                f"but in_use={sem.in_use}"))
        if not 0 <= sem.in_use <= sem.capacity:
            out.append(Violation(
                "semaphore", f"{owner}:{sem.name}",
                f"in_use={sem.in_use} outside [0, {sem.capacity}]"))
        if sem.waiting > 0 and sem.in_use < sem.capacity:
            out.append(Violation(
                "semaphore", f"{owner}:{sem.name}",
                f"{sem.waiting} waiter(s) queued with free slots "
                "(phantom waiters)"))
        if expect_idle and (sem.in_use > 0 or sem.waiting > 0):
            out.append(Violation(
                "semaphore", f"{owner}:{sem.name}",
                f"slots leaked: in_use={sem.in_use}, waiting={sem.waiting} "
                "with no live process to release them"))
        return out

    def _check_semaphores(self, violations: list[Violation],
                          checks: dict[str, int]) -> None:
        n = 0
        server = self.cloud.server
        violations.extend(self._sem_violations(
            server._rpc_slots, "server", expect_idle=False))
        n += 1
        for client in self.cloud.clients:
            quiescent = not any(p.alive for p in client._task_procs)
            for sem in (client._cpu, client.endpoint.upload_slots,
                        client.endpoint.download_slots):
                violations.extend(self._sem_violations(
                    sem, client.name, expect_idle=quiescent))
                n += 1
        checks["semaphore"] = n

    # -- observability spans -----------------------------------------------------
    def _check_spans(self, violations: list[Violation],
                     checks: dict[str, int]) -> None:
        builder = self.cloud.span_builder
        if builder is None:
            checks["span"] = 0
            return
        db = self.cloud.server.db
        open_ids = builder.open_result_ids()
        checks["span"] = len(open_ids)
        for rid in open_ids:
            res = db.results.get(rid)
            if res is None or res.state is not ResultState.IN_PROGRESS:
                state = "gone" if res is None else res.state.name
                violations.append(Violation(
                    "span", f"r{rid}",
                    f"span still open but result is {state} "
                    "(timeline leak)"))
