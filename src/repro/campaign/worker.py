"""The campaign worker: pull leased cells from a coordinator and run them.

:class:`CampaignWorker` is the client half of the distributed campaign
control plane — the analogue of a BOINC client.  It is strictly
pull-based: it connects to a
:class:`repro.campaign.coordinator.CampaignCoordinator`, requests a
lease, runs the cell in a forked child process (the same
``_child_main`` isolation the in-process pool uses, so a crashing or
hanging cell cannot take the worker down), heartbeats while the child
runs, and ships the outcome back.  Three coordinator signals shape the
loop: ``wait`` (nothing leasable right now — sleep and re-ask),
``shutdown`` (campaign complete — drain and exit), and a ``revoked``
key in a heartbeat reply (another worker finished the cell first, or
the lease was reclaimed — kill the child and move on).

Results are optionally appended to a per-worker JSONL *shard*
(:class:`~repro.campaign.store.ResultStore`) before being reported, so
a worker killed between computing and reporting still leaves its
result on disk for :func:`repro.campaign.store.merge_stores`.
"""

from __future__ import annotations

import json
import os
import socket
import time
import traceback
import typing as _t

from .grid import canonical_json
from .runner import _child_main, _shutdown_child
from .store import CellRecord, ResultStore

#: How long the worker waits on the child pipe between bookkeeping
#: passes (heartbeats, deadline, revocation checks), seconds.
_POLL_S = 0.05


class CampaignWorker:
    """Run leased campaign cells against a coordinator at *host*:*port*.

    *worker_id* defaults to ``<hostname>-<pid>``; *shard*, when given,
    is a per-worker :class:`~repro.campaign.store.ResultStore` that
    receives every outcome this worker computes (the multi-writer merge
    input).  *max_cells* bounds how many cells the worker will run
    (None = until the coordinator says shutdown), which tests use to
    exercise partial progress.
    """

    def __init__(self, host: str, port: int, *,
                 worker_id: str | None = None,
                 shard: ResultStore | None = None,
                 max_cells: int | None = None) -> None:
        """Record the coordinator address; nothing connects until :meth:`run`."""
        self.host = host
        self.port = port
        self.worker_id = (worker_id if worker_id is not None
                          else f"{socket.gethostname()}-{os.getpid()}")
        self.shard = shard
        self.max_cells = max_cells
        self.completed = 0
        self._sock: socket.socket | None = None
        self._rfile: _t.Any = None
        self._wfile: _t.Any = None
        self._heartbeat_s = 0.5

    # -- protocol ------------------------------------------------------------
    def _rpc(self, message: dict[str, _t.Any]) -> dict[str, _t.Any]:
        """One lockstep request/response exchange with the coordinator."""
        message["worker"] = self.worker_id
        self._wfile.write((canonical_json(message) + "\n").encode("utf-8"))
        self._wfile.flush()
        raw = self._rfile.readline()
        if not raw:
            raise ConnectionError("coordinator closed the connection")
        reply = json.loads(raw)
        if reply.get("op") == "error":
            raise ValueError(f"coordinator rejected request: "
                             f"{reply.get('error')}")
        return reply

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=30.0)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        welcome = self._rpc({"op": "hello"})
        self._heartbeat_s = float(welcome.get("heartbeat_s", 0.5))

    def _close(self) -> None:
        for closable in (self._rfile, self._wfile, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:  # pragma: no cover - best-effort teardown
                    pass
        self._sock = self._rfile = self._wfile = None

    # -- cell execution ------------------------------------------------------
    def _run_cell(self, grant: dict[str, _t.Any]) -> None:
        """Run one leased cell in a child, heartbeating until it ends."""
        import multiprocessing

        mp = multiprocessing.get_context()
        parent, child = mp.Pipe(duplex=False)
        process = mp.Process(target=_child_main,
                             args=(dict(grant["spec"]), child), daemon=True)
        process.start()
        child.close()
        key = grant["key"]
        started = time.monotonic()
        lease_s = grant.get("lease_s")
        deadline = started + lease_s if lease_s else None
        next_heartbeat = started + self._heartbeat_s
        outcome: tuple[str, _t.Any] | None = None
        try:
            while outcome is None:
                if parent.poll(_POLL_S):
                    try:
                        outcome = parent.recv()
                    except EOFError:
                        outcome = ("error", "cell child closed the pipe "
                                            "without a result")
                elif not process.is_alive():
                    outcome = ("error", f"cell child died "
                                        f"(exitcode {process.exitcode})")
                now = time.monotonic()
                if (outcome is None and deadline is not None
                        and now >= deadline):
                    outcome = ("timeout",
                               f"cell exceeded {lease_s:g}s lease budget")
                if outcome is None and now >= next_heartbeat:
                    next_heartbeat = now + self._heartbeat_s
                    reply = self._rpc({"op": "heartbeat", "keys": [key]})
                    if key in reply.get("revoked", ()):
                        return  # someone else owns the cell now; no report
        finally:
            _shutdown_child(process, parent)
        wall = time.monotonic() - started
        status, detail = outcome
        result: dict[str, _t.Any] = {
            "op": "result", "key": key, "attempt": grant.get("attempt", 0),
            "wall_s": round(wall, 4),
        }
        if status == "ok":
            result.update(status="ok", payload=detail, error=None)
        else:
            result.update(status="error", payload=None, error=str(detail))
        self._shard_append(grant, status, detail, wall)
        self._rpc(result)
        if status == "ok":
            self.completed += 1

    def _shard_append(self, grant: dict[str, _t.Any], status: str,
                      detail: _t.Any, wall: float) -> None:
        if self.shard is None:
            return
        ok = status == "ok"
        self.shard.append(CellRecord(
            key=grant["key"], spec=dict(grant["spec"]),
            status="ok" if ok else "failed",
            result=detail if ok else None,
            meta={"wall_s": round(wall, 4),
                  "attempts": int(grant.get("attempt", 0)) + 1,
                  "worker": self.worker_id,
                  **({} if ok else {"error": str(detail)})}))

    # -- entry point ---------------------------------------------------------
    def run(self) -> int:
        """Serve leases until the coordinator shuts the campaign down.

        Returns the number of cells this worker completed successfully.
        """
        self._connect()
        try:
            while (self.max_cells is None
                   or self.completed < self.max_cells):
                reply = self._rpc({"op": "lease"})
                op = reply.get("op")
                if op == "shutdown":
                    break
                if op == "wait":
                    time.sleep(float(reply.get("poll_s", 0.1)))
                    continue
                if op != "cell":
                    raise ValueError(f"unexpected coordinator reply {op!r}")
                try:
                    self._run_cell(reply)
                except (ConnectionError, json.JSONDecodeError):
                    raise
                except Exception as exc:  # noqa: BLE001 — report, keep serving
                    self._rpc({"op": "result", "key": reply["key"],
                               "attempt": reply.get("attempt", 0),
                               "wall_s": 0.0, "status": "error",
                               "payload": None,
                               "error": f"worker-side failure: "
                                        f"{type(exc).__name__}: {exc}\n"
                                        f"{traceback.format_exc(limit=4)}"})
        except (ConnectionError, OSError, json.JSONDecodeError):
            pass  # coordinator gone; our leases will be reclaimed
        finally:
            self._close()
        return self.completed


def worker_entry(host: str, port: int, worker_id: str,
                 shard_path: str | None = None) -> int:
    """Process entry point for spawned workers (coordinator ``spawn=N``)."""
    shard = ResultStore(shard_path) if shard_path else None
    return CampaignWorker(host, port, worker_id=worker_id,
                          shard=shard).run()
