"""The campaign runner: fan a grid of cells out over a worker pool.

Each cell runs in its own forked process (one process per cell, at most
``workers`` alive at once), so cells never share interpreter state and a
hung or crashed cell cannot take the campaign down: the runner enforces
a per-cell wall-clock timeout, retries transient failures, and
quarantines cells that keep failing.  Results stream into a
:class:`~repro.campaign.store.ResultStore` as they arrive, which is what
makes campaigns resumable, and live progress is published through a
:class:`repro.obs.MetricsRegistry` (``campaign.*`` instruments) plus an
optional per-cell echo callback.

Determinism: a cell's payload is produced by
:func:`repro.campaign.cells.execute_cell` from the cell spec alone, so
the schedule (worker count, completion order, retries) affects only the
store's line *order*, never a cell's bytes — ``workers=0`` (in-process
sequential) and ``workers=8`` write the same payload per key.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import time
import traceback
import typing as _t

from ..obs import MetricsRegistry
from .cells import execute_cell
from .grid import CampaignCell, CampaignGrid
from .store import CellRecord, ResultStore

#: How long the scheduler waits on worker pipes before re-checking
#: deadlines and liveness (seconds).
_POLL_S = 0.02


def _child_main(spec: dict[str, _t.Any],
                conn: multiprocessing.connection.Connection) -> None:
    """Worker-process entry point: run one cell, ship the outcome back."""
    try:
        payload = execute_cell(spec)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 — becomes a quarantine record
        conn.send(("error",
                   f"{type(exc).__name__}: {exc}\n"
                   f"{traceback.format_exc(limit=4)}"))
    finally:
        conn.close()


def _shutdown_child(process: multiprocessing.Process,
                    conn: multiprocessing.connection.Connection,
                    grace_s: float = 5.0) -> None:
    """Fully reap one cell child: terminate if needed (escalating to
    SIGKILL after *grace_s*), join it, close its pipe, and release the
    process handle — so a timed-out/revoked cell leaves no zombie
    process and no leaked file descriptor behind."""
    if process.is_alive():
        process.terminate()
        process.join(grace_s)
        if process.is_alive():
            process.kill()
    process.join()
    conn.close()
    process.close()


@dataclasses.dataclass(slots=True)
class _Flight:
    """One in-flight cell attempt."""

    cell: CampaignCell
    process: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    started: float
    deadline: float | None
    attempt: int


@dataclasses.dataclass(slots=True)
class CampaignReport:
    """What one :meth:`CampaignRunner.run` call did."""

    grid: str
    total: int
    ran: int
    skipped: int
    failed: int
    wall_s: float
    quarantined: list[CellRecord] = dataclasses.field(default_factory=list)
    #: Cells requeued after a lost lease (distributed runs only).
    reclaimed: int = 0
    #: Duplicate leases stolen from stragglers (distributed runs only).
    stolen: int = 0

    @property
    def ok(self) -> bool:
        """True when no cell ended in quarantine."""
        return self.failed == 0

    def render(self) -> str:
        """One-paragraph human summary, quarantined cells listed."""
        lines = [f"campaign {self.grid!r}: {self.total} cells — "
                 f"{self.ran} ran, {self.skipped} skipped (resume), "
                 f"{self.failed} failed, wall {self.wall_s:.1f}s"]
        if self.reclaimed or self.stolen:
            lines[0] += (f" ({self.reclaimed} lease(s) reclaimed, "
                         f"{self.stolen} stolen)")
        for rec in self.quarantined:
            error = str(rec.meta.get("error", "")).splitlines()
            lines.append(f"  quarantined {rec.key} "
                         f"({CampaignCell.from_spec(rec.spec).label()}): "
                         f"{error[0] if error else 'unknown error'}")
        return "\n".join(lines)


class CampaignRunner:
    """Run a :class:`CampaignGrid` against a :class:`ResultStore`.

    Parameters mirror the CLI: *workers* is the pool width (0 = run
    every cell inline in this process, the reference sequential mode),
    *timeout_s* the per-cell wall-clock budget (None = unbounded),
    *retries* how many extra attempts a failing/timing-out cell gets
    before quarantine, and *resume* whether cells already ``ok`` in the
    store are skipped (False truncates the store first).
    """

    def __init__(self, grid: CampaignGrid, store: ResultStore, *,
                 workers: int = 1, timeout_s: float | None = None,
                 retries: int = 1, resume: bool = False,
                 metrics: MetricsRegistry | None = None,
                 echo: _t.Callable[[str], None] | None = None) -> None:
        """Validate knobs and bind the grid/store; see the class doc."""
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.grid = grid
        self.store = store
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.resume = resume
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.echo = echo
        self._mp = multiprocessing.get_context()

    # -- metrics -------------------------------------------------------------
    def _instrument(self) -> None:
        m = self.metrics
        self._done = m.counter("campaign.cells.completed",
                               "cells finished successfully")
        self._failed = m.counter("campaign.cells.quarantined",
                                 "cells abandoned after retries")
        self._skipped = m.counter("campaign.cells.skipped",
                                  "cells satisfied from the store (resume)")
        self._retries = m.counter("campaign.cells.retries",
                                  "extra attempts after failure/timeout")
        self._inflight = m.gauge("campaign.in_flight",
                                 "cell attempts currently running")
        self._wall = m.histogram("campaign.cell_wall_s",
                                 "per-cell wall-clock seconds")

    def _progress(self, text: str) -> None:
        if self.echo is not None:
            self.echo(text)

    # -- outcomes ------------------------------------------------------------
    def _record(self, cell: CampaignCell, status: str,
                result: dict[str, _t.Any] | None, *, wall: float,
                attempt: int, error: str | None = None) -> CellRecord:
        meta: dict[str, _t.Any] = {"wall_s": round(wall, 4),
                                   "attempts": attempt + 1,
                                   "grid": self.grid.name}
        if error is not None:
            meta["error"] = error
        record = CellRecord(key=cell.key, spec=cell.spec(), status=status,
                            result=result, meta=meta)
        self.store.append(record)
        self._wall.observe(wall)
        return record

    def _finish_ok(self, cell: CampaignCell, payload: dict[str, _t.Any],
                   wall: float, attempt: int, done: int, total: int) -> None:
        self._record(cell, "ok", payload, wall=wall, attempt=attempt)
        self._done.inc()
        self._progress(f"[{done}/{total}] ok     {cell.label()} "
                       f"({wall:.2f}s)")

    def _quarantine(self, cell: CampaignCell, error: str, wall: float,
                    attempt: int, done: int, total: int,
                    report: CampaignReport) -> None:
        record = self._record(cell, "failed", None, wall=wall,
                              attempt=attempt, error=error)
        report.failed += 1
        report.quarantined.append(record)
        self._failed.inc()
        self._progress(f"[{done}/{total}] FAILED {cell.label()}: "
                       f"{error.splitlines()[0]}")

    # -- sequential reference mode -------------------------------------------
    def _run_inline(self, cells: list[CampaignCell],
                    report: CampaignReport, total: int) -> None:
        done = report.skipped
        for cell in cells:
            for attempt in range(self.retries + 1):
                t0 = time.monotonic()
                try:
                    payload = execute_cell(cell.spec())
                except Exception as exc:  # noqa: BLE001
                    error = (f"{type(exc).__name__}: {exc}\n"
                             f"{traceback.format_exc(limit=4)}")
                    if attempt < self.retries:
                        self._retries.inc()
                        continue
                    done += 1
                    self._quarantine(cell, error, time.monotonic() - t0,
                                     attempt, done, total, report)
                else:
                    done += 1
                    report.ran += 1
                    self._finish_ok(cell, payload, time.monotonic() - t0,
                                    attempt, done, total)
                break

    # -- pooled mode ---------------------------------------------------------
    def _launch(self, cell: CampaignCell, attempt: int) -> _Flight:
        parent, child = self._mp.Pipe(duplex=False)
        process = self._mp.Process(target=_child_main,
                                   args=(cell.spec(), child), daemon=True)
        process.start()
        child.close()
        now = time.monotonic()
        deadline = now + self.timeout_s if self.timeout_s else None
        self._inflight.add(1)
        return _Flight(cell=cell, process=process, conn=parent,
                       started=now, deadline=deadline, attempt=attempt)

    def _reap(self, flight: _Flight) -> tuple[str, _t.Any]:
        """Collect a finished/overdue flight; returns (status, detail)."""
        outcome: tuple[str, _t.Any]
        if flight.conn.poll():
            try:
                outcome = flight.conn.recv()
            except EOFError:
                outcome = ("error", "worker closed the pipe without a result")
        elif not flight.process.is_alive():
            outcome = ("error",
                       f"worker died (exitcode {flight.process.exitcode})")
        else:  # deadline exceeded
            outcome = ("timeout",
                       f"cell exceeded {self.timeout_s:g}s wall-clock budget")
        _shutdown_child(flight.process, flight.conn)
        self._inflight.add(-1)
        return outcome

    def _run_pooled(self, cells: list[CampaignCell],
                    report: CampaignReport, total: int) -> None:
        pending: list[tuple[CampaignCell, int]] = [(c, 0) for c in cells]
        flights: list[_Flight] = []
        done = report.skipped
        while pending or flights:
            while pending and len(flights) < self.workers:
                cell, attempt = pending.pop(0)
                flights.append(self._launch(cell, attempt))
            now = time.monotonic()
            finished = [f for f in flights
                        if f.conn.poll() or not f.process.is_alive()
                        or (f.deadline is not None and now >= f.deadline)]
            if not finished:
                multiprocessing.connection.wait(
                    [f.conn for f in flights], timeout=_POLL_S)
                continue
            for flight in finished:
                flights.remove(flight)
                status, detail = self._reap(flight)
                wall = time.monotonic() - flight.started
                if status == "ok":
                    done += 1
                    report.ran += 1
                    self._finish_ok(flight.cell, detail, wall,
                                    flight.attempt, done, total)
                elif flight.attempt < self.retries:
                    self._retries.inc()
                    self._progress(f"retrying {flight.cell.label()} "
                                   f"(attempt {flight.attempt + 2}): "
                                   f"{str(detail).splitlines()[0]}")
                    pending.append((flight.cell, flight.attempt + 1))
                else:
                    done += 1
                    self._quarantine(flight.cell, str(detail), wall,
                                     flight.attempt, done, total, report)

    # -- entry point ---------------------------------------------------------
    def run(self) -> CampaignReport:
        """Execute the grid; returns the run report (store holds results)."""
        self._instrument()
        t0 = time.monotonic()
        if self.resume:
            completed = self.store.completed_keys()
        else:
            self.store.clear()
            completed = set()
        todo = [c for c in self.grid if c.key not in completed]
        skipped = len(self.grid) - len(todo)
        self._skipped.inc(skipped)
        report = CampaignReport(grid=self.grid.name, total=len(self.grid),
                                ran=0, skipped=skipped, failed=0, wall_s=0.0)
        if skipped:
            self._progress(f"resume: {skipped} cell(s) already complete "
                           f"in {self.store.path}")
        if self.workers == 0:
            self._run_inline(todo, report, len(self.grid))
        else:
            self._run_pooled(todo, report, len(self.grid))
        report.wall_s = time.monotonic() - t0
        return report


def run_campaign(grid: CampaignGrid, out: str, *, workers: int = 1,
                 timeout_s: float | None = None, retries: int = 1,
                 resume: bool = False,
                 metrics: MetricsRegistry | None = None,
                 echo: _t.Callable[[str], None] | None = None
                 ) -> CampaignReport:
    """One-call convenience wrapper: build the store, run, report."""
    runner = CampaignRunner(grid, ResultStore(out), workers=workers,
                            timeout_s=timeout_s, retries=retries,
                            resume=resume, metrics=metrics, echo=echo)
    return runner.run()
