"""The campaign coordinator: lease cells to worker processes over TCP.

:class:`CampaignCoordinator` is the server half of the distributed
campaign control plane.  It speaks a line-JSON protocol (one
canonical-JSON object per line, request/response in lockstep per
connection) with any number of :class:`repro.campaign.worker.CampaignWorker`
processes — locally spawned or connecting from other hosts — and it
survives them the way BOINC's server survives volunteers:

- every cell is handed out as a :class:`repro.campaign.lease.Lease`
  with a deadline derived from the campaign's per-cell ``timeout_s``;
- worker liveness is tracked via heartbeats *and* connection EOF, so a
  SIGKILLed worker's cells are reclaimed within one sweep interval;
- reclaimed cells are re-leased until the retry budget is spent, then
  quarantined exactly like the in-process runner does;
- when the pending queue is dry, remaining in-flight cells are stolen
  onto idle workers (first result wins, losers are revoked).

Results stream into the coordinator's authoritative
:class:`~repro.campaign.store.ResultStore` as they arrive; workers may
additionally keep per-worker shards, which
:func:`repro.campaign.store.merge_stores` folds into one resumable
store after the fact.  A built-in chaos hook (``chaos_kills``) SIGKILLs
spawned workers mid-cell to prove the invariant the tests and the CI
control-plane job assert: every cell still completes (or is quarantined
after ``retries``), and the merged payloads equal a sequential run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import random
import signal
import socketserver
import threading
import time
import typing as _t

from ..obs import MetricsRegistry
from .grid import CampaignGrid, canonical_json
from .lease import DONE, FAILED, LeaseTable
from .runner import CampaignReport
from .store import CellRecord, ResultStore

#: Protocol ops a worker may send.
WORKER_OPS: tuple[str, ...] = ("hello", "lease", "heartbeat", "result")


class _ControlServer(socketserver.ThreadingTCPServer):
    """Threaded line-JSON control-plane server (one thread per worker)."""

    daemon_threads = True
    allow_reuse_address = True
    coordinator: "CampaignCoordinator"


class _ControlHandler(socketserver.StreamRequestHandler):
    """Per-connection loop: read a JSON line, dispatch, write the reply."""

    def handle(self) -> None:
        """Serve one worker connection until EOF or socket error."""
        coordinator = self.server.coordinator  # type: ignore[attr-defined]
        worker: str | None = None
        try:
            for raw in self.rfile:
                try:
                    message = json.loads(raw)
                except json.JSONDecodeError as exc:
                    reply: dict[str, _t.Any] = {"op": "error",
                                                "error": f"bad json: {exc}"}
                else:
                    worker = message.get("worker", worker)
                    reply = coordinator.dispatch(message)
                self.wfile.write(
                    (canonical_json(reply) + "\n").encode("utf-8"))
                self.wfile.flush()
        except (ConnectionError, OSError):
            pass
        finally:
            if worker is not None:
                coordinator.connection_lost(worker)


class CampaignCoordinator:
    """Serve a :class:`CampaignGrid` to workers under lease discipline.

    Parameters beyond the runner's (*timeout_s*, *retries*, *resume*,
    *metrics*, *echo*): *spawn* local worker processes are forked and
    pointed at the server (0 = external workers only); *host*/*port*
    bind the control socket (port 0 picks a free one, read it back from
    the coordinator's ``port`` attribute after :meth:`run` binds);
    *heartbeat_s* is the worker heartbeat cadence and
    drives failure detection (a worker silent for ``3 x heartbeat_s``
    is declared dead); *steal_after_s* enables work stealing once a
    sole lease is that old (default ``4 x heartbeat_s``); *shard_dir*
    makes spawned workers keep per-worker JSONL shards there;
    *chaos_kills* SIGKILLs that many spawned workers mid-cell (the
    fault hook), respawning replacements; *wall_limit_s* bounds the
    whole campaign (remaining cells are quarantined at the limit).
    """

    def __init__(self, grid: CampaignGrid, store: ResultStore, *,
                 spawn: int = 0, host: str = "127.0.0.1", port: int = 0,
                 timeout_s: float | None = None, retries: int = 1,
                 resume: bool = False, heartbeat_s: float = 0.5,
                 steal_after_s: float | None = None,
                 shard_dir: str | pathlib.Path | None = None,
                 chaos_kills: int = 0, chaos_interval_s: float = 1.0,
                 chaos_seed: int = 1,
                 wall_limit_s: float | None = None,
                 metrics: MetricsRegistry | None = None,
                 echo: _t.Callable[[str], None] | None = None) -> None:
        """Validate knobs and bind grid/store; nothing runs until :meth:`run`."""
        if spawn < 0:
            raise ValueError(f"spawn must be >= 0, got {spawn}")
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        self.grid = grid
        self.store = store
        self.spawn = spawn
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.resume = resume
        self.heartbeat_s = heartbeat_s
        self.liveness_s = 3.0 * heartbeat_s
        self.steal_after_s = (steal_after_s if steal_after_s is not None
                              else 4.0 * heartbeat_s)
        self.shard_dir = pathlib.Path(shard_dir) if shard_dir else None
        self.chaos_kills = chaos_kills
        self.chaos_interval_s = chaos_interval_s
        self.chaos_seed = chaos_seed
        self.wall_limit_s = wall_limit_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.echo = echo
        self.table = LeaseTable(
            grid, lease_s=timeout_s, retries=retries,
            steal_after_s=self.steal_after_s)
        self._lock = threading.Lock()
        self._mp = multiprocessing.get_context()
        self._spawned: dict[str, multiprocessing.Process] = {}
        self._next_worker = 0
        self._quarantined: dict[str, CellRecord] = {}
        self._ran = 0
        self._skipped = 0
        self._kills_done = 0
        self._started = 0.0

    # -- metrics -------------------------------------------------------------
    def _instrument(self) -> None:
        from ..obs.probes import attach_coordinator_probes

        m = self.metrics
        self._m_granted = m.counter("campaign.leases.granted",
                                    "leases handed to workers")
        self._m_expired = m.counter("campaign.leases.expired",
                                    "leases past their deadline")
        self._m_reclaimed = m.counter("campaign.leases.reclaimed",
                                      "cells requeued after a lost lease")
        self._m_stolen = m.counter("campaign.leases.stolen",
                                   "duplicate leases stolen from stragglers")
        self._m_worker_fail = m.counter("campaign.workers.failed",
                                        "workers declared dead")
        self._m_done = m.counter("campaign.cells.completed",
                                 "cells finished successfully")
        self._m_failed = m.counter("campaign.cells.quarantined",
                                   "cells abandoned after retries")
        self._m_retries = m.counter("campaign.cells.retries",
                                    "extra attempts after failure/timeout")
        attach_coordinator_probes(self, m)

    def _sync_counters(self) -> None:
        """Mirror the lease table's event totals into the obs counters."""
        c = self.table.counters
        for metric, value in ((self._m_granted, c.granted),
                              (self._m_expired, c.expired),
                              (self._m_reclaimed, c.reclaimed),
                              (self._m_stolen, c.stolen),
                              (self._m_worker_fail, c.workers_failed)):
            delta = value - metric.value
            if delta > 0:
                metric.inc(delta)

    def _progress(self, text: str) -> None:
        if self.echo is not None:
            self.echo(text)

    # -- protocol ------------------------------------------------------------
    def dispatch(self, message: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
        """Handle one worker request; returns the JSON-able reply."""
        op = message.get("op")
        worker = message.get("worker")
        if op not in WORKER_OPS or not isinstance(worker, str):
            return {"op": "error",
                    "error": f"bad request (op={op!r}, worker={worker!r})"}
        now = time.monotonic()
        with self._lock:
            if op == "hello":
                self.table.register(worker, now)
                return {"op": "welcome", "name": self.grid.name,
                        "heartbeat_s": self.heartbeat_s,
                        "poll_s": self.heartbeat_s / 2.0}
            if op == "heartbeat":
                revoked = self.table.touch(worker, now)
                return {"op": "ack", "revoked": revoked}
            if op == "lease":
                return self._on_lease(worker, now)
            return self._on_result(worker, message, now)

    def _on_lease(self, worker: str, now: float) -> dict[str, _t.Any]:
        if self.table.done:
            return {"op": "shutdown"}
        lease = self.table.grant(worker, now)
        if lease is None:
            return {"op": "wait", "poll_s": self.heartbeat_s / 2.0}
        if lease.stolen:
            self._progress(f"steal  {lease.key} -> {worker} "
                           f"(attempt {lease.attempt + 1})")
        return {"op": "cell", "key": lease.key,
                "spec": self.table.cells[lease.key].spec,
                "attempt": lease.attempt, "lease_s": self.timeout_s,
                "stolen": lease.stolen}

    def _on_result(self, worker: str, message: _t.Mapping[str, _t.Any],
                   now: float) -> dict[str, _t.Any]:
        key = message.get("key")
        if not isinstance(key, str) or key not in self.table.cells:
            return {"op": "error", "error": f"unknown cell key {key!r}"}
        wall = float(message.get("wall_s", 0.0))
        attempt = int(message.get("attempt", 0))
        if message.get("status") == "ok":
            first = self.table.report_ok(worker, key, now)
            if first:
                self._append(key, "ok", message.get("payload"), wall=wall,
                             attempts=attempt + 1, worker=worker)
                self._ran += 1
                self._m_done.inc()
                done = self._ran + self._skipped
                self._progress(
                    f"[{done}/{len(self.grid)}] ok     {key} "
                    f"from {worker} ({wall:.2f}s)")
            return {"op": "ack", "accepted": first}
        error = str(message.get("error", "worker reported failure"))
        fate = self.table.report_error(worker, key, now)
        if fate == "retry":
            self._m_retries.inc()
            self._progress(f"retrying {key} after {worker}: "
                           f"{error.splitlines()[0]}")
        elif fate == "failed":
            self._quarantine(key, error, wall=wall)
        return {"op": "ack", "accepted": False}

    def connection_lost(self, worker: str) -> None:
        """A worker's socket closed; reclaim its leases if it held any."""
        now = time.monotonic()
        with self._lock:
            state = self.table.workers.get(worker)
            if state is None or state.dead:
                return
            if not state.keys:       # graceful drain: nothing to reclaim
                state.dead = True
                return
            held = len(state.keys)
            quarantined = self.table.fail_worker(worker, now)
            self._progress(f"worker {worker} lost with {held} lease(s); "
                           f"reclaimed {held - len(quarantined)}")
            for key in quarantined:
                self._quarantine(key, f"worker {worker} died mid-cell")

    # -- store ---------------------------------------------------------------
    def _append(self, key: str, status: str,
                payload: dict[str, _t.Any] | None, *, wall: float,
                attempts: int, worker: str | None = None,
                error: str | None = None) -> CellRecord:
        meta: dict[str, _t.Any] = {"wall_s": round(wall, 4),
                                   "attempts": attempts,
                                   "grid": self.grid.name}
        if worker is not None:
            meta["worker"] = worker
        if error is not None:
            meta["error"] = error
        record = CellRecord(key=key, spec=self.table.cells[key].spec,
                            status=status, result=payload, meta=meta)
        self.store.append(record)
        return record

    def _quarantine(self, key: str, error: str, *,
                    wall: float = 0.0) -> None:
        if key in self._quarantined:
            return
        attempts = max(1, self.table.cells[key].attempts)
        record = self._append(key, "failed", None, wall=wall,
                              attempts=attempts, error=error)
        self._quarantined[key] = record
        self._m_failed.inc()
        self._progress(f"FAILED {key}: {error.splitlines()[0]}")

    # -- worker fleet --------------------------------------------------------
    def _spawn_worker(self) -> str:
        from .worker import worker_entry

        worker_id = f"w{self._next_worker}"
        self._next_worker += 1
        shard = None
        if self.shard_dir is not None:
            self.shard_dir.mkdir(parents=True, exist_ok=True)
            shard = str(self.shard_dir
                        / f"{self.store.path.stem}-{worker_id}.jsonl")
        # Workers must not be daemons: each one forks a child per cell,
        # and daemonic processes may not have children.  _reap_fleet()
        # kills any worker that outlives the campaign.
        process = self._mp.Process(
            target=worker_entry,
            args=(self.host, self.port, worker_id, shard), daemon=False)
        process.start()
        self._spawned[worker_id] = process
        return worker_id

    def _chaos_step(self, now: float) -> None:
        """SIGKILL one spawned worker that is mid-cell, if a kill is due."""
        if self._kills_done >= self.chaos_kills:
            return
        if now - self._started < self.chaos_interval_s * (self._kills_done + 1):
            return
        with self._lock:
            victims = sorted(
                w for w, p in self._spawned.items()
                if p.is_alive()
                and self.table.workers.get(w) is not None
                and self.table.workers[w].keys)
        if not victims:
            return  # nobody is mid-cell right now; try next sweep
        rng = random.Random(f"{self.chaos_seed}-{self._kills_done}")
        victim = rng.choice(victims)
        process = self._spawned[victim]
        if process.pid is None:
            return
        os.kill(process.pid, signal.SIGKILL)
        process.join()
        self._kills_done += 1
        self._progress(f"chaos: SIGKILLed worker {victim} "
                       f"(pid {process.pid})")
        self._spawn_worker()  # keep the fleet at strength

    def _reap_fleet(self, drain_s: float) -> None:
        """Join spawned workers; kill any that outlive the drain window."""
        deadline = time.monotonic() + drain_s
        for worker_id, process in self._spawned.items():
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join()
                self._progress(f"killed lingering worker {worker_id}")
            process.close()
        self._spawned.clear()

    # -- entry point ---------------------------------------------------------
    def run(self) -> CampaignReport:
        """Serve the campaign to workers until every cell is terminal."""
        self._instrument()
        self._started = time.monotonic()
        if self.resume:
            completed = self.store.completed_keys()
        else:
            self.store.clear()
            completed = set()
        self._skipped = self.table.mark_done(completed)
        if self._skipped:
            self._progress(f"resume: {self._skipped} cell(s) already "
                           f"complete in {self.store.path}")
        server = _ControlServer((self.host, self.port), _ControlHandler)
        server.coordinator = self
        self.port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            for _ in range(self.spawn):
                self._spawn_worker()
            sweep_s = min(0.05, self.heartbeat_s / 4.0)
            while True:
                now = time.monotonic()
                with self._lock:
                    for lease in self.table.expire(now):
                        self._progress(f"lease expired: {lease.key} "
                                       f"on {lease.worker}")
                        if self.table.cells[lease.key].status == FAILED:
                            self._quarantine(
                                lease.key,
                                f"lease expired after "
                                f"{self.table.cells[lease.key].attempts} "
                                f"attempt(s)")
                    for worker in self.table.dead_workers(
                            now, self.liveness_s):
                        held = len(self.table.workers[worker].keys)
                        quarantined = self.table.fail_worker(worker, now)
                        self._progress(f"worker {worker} missed heartbeats; "
                                       f"reclaimed {held} lease(s)")
                        for key in quarantined:
                            self._quarantine(
                                key, f"worker {worker} stopped heartbeating")
                    self._sync_counters()
                    if self.table.done:
                        break
                self._chaos_step(now)
                if (self.wall_limit_s is not None
                        and now - self._started > self.wall_limit_s):
                    with self._lock:
                        for key, cell in self.table.cells.items():
                            if cell.status not in (DONE, FAILED):
                                cell.status = FAILED
                                self._quarantine(
                                    key, "campaign wall limit reached")
                    break
                time.sleep(sweep_s)
            self._reap_fleet(drain_s=max(1.0, 4.0 * self.heartbeat_s))
        finally:
            server.shutdown()
            server.server_close()
        return self._report()

    def _report(self) -> CampaignReport:
        with self._lock:
            self._sync_counters()
        counters = self.table.counters
        report = CampaignReport(
            grid=self.grid.name, total=len(self.grid), ran=self._ran,
            skipped=self._skipped, failed=len(self._quarantined),
            wall_s=time.monotonic() - self._started,
            quarantined=list(self._quarantined.values()),
            reclaimed=counters.reclaimed, stolen=counters.stolen)
        return report

    def summary(self) -> dict[str, _t.Any]:
        """JSON-able control-plane summary (the CI artifact payload)."""
        counters = self.table.counters
        return {
            "grid": self.grid.name,
            "cells": len(self.grid),
            "completed": self._ran + self._skipped,
            "quarantined": sorted(self._quarantined),
            "leases": {
                "granted": counters.granted,
                "expired": counters.expired,
                "reclaimed": counters.reclaimed,
                "stolen": counters.stolen,
                "duplicates": counters.duplicates,
            },
            "workers_failed": counters.workers_failed,
            "chaos_kills": self._kills_done,
        }


def coordinate_campaign(grid: CampaignGrid, out: str, *,
                        spawn: int = 3,
                        **kwargs: _t.Any) -> CampaignReport:
    """One-call convenience: coordinator + *spawn* local workers, run, report."""
    coordinator = CampaignCoordinator(grid, ResultStore(out), spawn=spawn,
                                      **kwargs)
    return coordinator.run()
