"""Declarative campaign grids: cells, content-hash keys, TOML loading.

A campaign is a grid of independent simulation *cells* — one
(configuration x seed x fault-plan) point of an evaluation sweep, the
unit the paper's Table I / churn / replication grids are made of.  Cells
are plain JSON-able data, so they can be hashed (:func:`cell_key`),
shipped to a worker process, and persisted next to their results; a
cell's identity is the content hash of its spec, which is what makes
campaign stores resumable (:mod:`repro.campaign.store`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import tomllib
import typing as _t

#: Cell kinds understood by :func:`repro.campaign.cells.execute_cell`.
CELL_KINDS: tuple[str, ...] = (
    "scenario", "table1", "churn", "replication", "scale_out", "sleep",
)


@dataclasses.dataclass(frozen=True, slots=True)
class CampaignCell:
    """One grid point: a cell kind, its parameters, a seed, and faults.

    ``params`` must be JSON-able (the spec travels to worker processes
    and into the on-disk store); ``faults`` names a builtin chaos plan
    or a TOML plan path, applied to kinds that run a full deployment
    (``scenario`` / ``table1``).  ``group`` labels the aggregation bucket
    the cell's result belongs to (e.g. a Table I row label), so
    :mod:`repro.analysis.campaign` can fold seeds together.
    """

    kind: str
    seed: int
    params: _t.Mapping[str, _t.Any] = dataclasses.field(default_factory=dict)
    faults: str | None = None
    group: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"unknown cell kind {self.kind!r}; expected one of "
                f"{CELL_KINDS}")
        if self.seed < 0:
            raise ValueError(f"cell seed must be >= 0, got {self.seed}")

    def spec(self) -> dict[str, _t.Any]:
        """The cell as a JSON-able dict (the worker/store wire format)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "params": dict(self.params),
            "faults": self.faults,
            "group": self.group or f"{self.kind}",
        }

    @classmethod
    def from_spec(cls, spec: _t.Mapping[str, _t.Any]) -> "CampaignCell":
        """Rebuild a cell from :meth:`spec` output (inverse operation)."""
        return cls(kind=spec["kind"], seed=spec["seed"],
                   params=dict(spec.get("params", {})),
                   faults=spec.get("faults"),
                   group=spec.get("group", ""))

    @property
    def key(self) -> str:
        """Content-hash identity of this cell (see :func:`cell_key`)."""
        return cell_key(self)

    def label(self) -> str:
        """Short human-readable identity for progress lines."""
        return f"{self.group or self.kind} seed={self.seed}" + (
            f" faults={self.faults}" if self.faults else "")


def canonical_json(value: _t.Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace drift.

    The byte-identity contract of the campaign layer rests on this:
    the same payload always encodes to the same bytes, independent of
    dict insertion order or the process that produced it.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def cell_key(cell: "CampaignCell | _t.Mapping[str, _t.Any]") -> str:
    """Content hash of a cell spec (the store/resume key).

    Two cells with the same kind, params, seed, and fault plan collapse
    to the same key regardless of construction order, so a resumed
    campaign recognises completed work even if the grid was rebuilt.
    """
    spec = cell.spec() if isinstance(cell, CampaignCell) else dict(cell)
    payload = canonical_json({
        "kind": spec["kind"], "seed": spec["seed"],
        "params": spec.get("params", {}), "faults": spec.get("faults"),
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass(frozen=True, slots=True)
class CampaignGrid:
    """An ordered, named set of cells (one evaluation sweep)."""

    name: str
    cells: tuple[CampaignCell, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError(f"campaign grid {self.name!r} has no cells")
        keys = [c.key for c in self.cells]
        dupes = {k for k in keys if keys.count(k) > 1}
        if dupes:
            raise ValueError(
                f"campaign grid {self.name!r} contains duplicate cells: "
                f"{sorted(dupes)}")

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> _t.Iterator[CampaignCell]:
        return iter(self.cells)


def grid_from_toml(path: str | pathlib.Path) -> CampaignGrid:
    """Load a declarative grid from a TOML file.

    Format (times/params per cell kind; ``seeds`` fans every row out)::

        name = "my-sweep"
        description = "optional"

        [[cell]]
        kind = "scenario"
        seeds = [1, 2, 3]
        group = "small"
        params = { n_nodes = 10, n_maps = 10, n_reducers = 2 }

        [[cell]]
        kind = "churn"
        seeds = [4]
        faults = "flaky-network"
    """
    path = pathlib.Path(path)
    with path.open("rb") as fh:
        data = tomllib.load(fh)
    rows = data.get("cell", [])
    if not rows:
        raise ValueError(f"campaign TOML {path} defines no [[cell]] rows")
    cells: list[CampaignCell] = []
    for row in rows:
        seeds = row.get("seeds", [row.get("seed", 0)])
        if isinstance(seeds, int):
            seeds = [seeds]
        for seed in seeds:
            cells.append(CampaignCell(
                kind=row["kind"], seed=int(seed),
                params=dict(row.get("params", {})),
                faults=row.get("faults"),
                group=row.get("group", "")))
    return CampaignGrid(name=data.get("name", path.stem),
                        cells=tuple(cells),
                        description=data.get("description", ""))
