"""Lease bookkeeping for the distributed campaign control plane.

This module is the pure state machine under
:class:`repro.campaign.coordinator.CampaignCoordinator`: it owns which
cell is leased to which worker, for how long, and what happens when a
lease is lost.  It never touches sockets, clocks, or processes — every
method takes ``now`` explicitly — so the whole failure-detection and
reclamation logic is unit-testable without spawning anything
(``tests/campaign/test_lease.py``).

The lifecycle mirrors BOINC's deadline-based work dispatch (Anderson
2019): a cell starts *pending*, a grant moves it to *leased* with a
deadline derived from the campaign's per-cell ``timeout_s``, a worker
result moves it to *done* (first result wins) or requeues it, and a
lease lost to expiry, worker death, or an error is *reclaimed* — the
cell returns to the pending queue with its attempt counter bumped until
the retry budget is exhausted and it is quarantined as *failed*.  Near
campaign end, when the pending queue is dry, the table *steals* work:
it grants a duplicate lease on the longest-held in-flight cell to an
idle worker, so one straggler cannot stall the sweep (the campaign
analogue of the paper's slowest-node pathology).
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from .grid import CampaignCell

#: Cell lifecycle states tracked by the table.
PENDING, LEASED, DONE, FAILED = "pending", "leased", "done", "failed"


@dataclasses.dataclass(slots=True)
class Lease:
    """One live grant of a cell to a worker."""

    key: str
    worker: str
    attempt: int
    granted: float
    #: Absolute deadline (coordinator clock); ``None`` means the lease
    #: only dies with its worker (no per-cell timeout configured).
    deadline: float | None
    #: True when this is a duplicate grant stolen from a straggler.
    stolen: bool = False


@dataclasses.dataclass(slots=True)
class LeaseCounters:
    """Control-plane event totals (the coordinator's obs/report feed)."""

    granted: int = 0
    expired: int = 0
    reclaimed: int = 0
    stolen: int = 0
    duplicates: int = 0
    workers_failed: int = 0


@dataclasses.dataclass(slots=True)
class _CellState:
    """Private per-cell record: spec, lifecycle, attempts, live leases."""

    spec: dict[str, _t.Any]
    status: str = PENDING
    #: Attempts lost so far (error / expiry / worker death).
    attempts: int = 0
    leases: dict[str, Lease] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(slots=True)
class _WorkerState:
    """Private per-worker record: liveness and held/revoked keys."""

    last_seen: float
    keys: set[str] = dataclasses.field(default_factory=set)
    #: Keys whose leases were taken away; drained by the next heartbeat.
    revoked: set[str] = dataclasses.field(default_factory=set)
    dead: bool = False


class LeaseTable:
    """Lease/requeue/quarantine state machine over one campaign grid.

    Parameters: *lease_s* is the per-cell lease duration (``None`` =
    leases never time out on their own — worker-death detection is the
    only reclamation path), *retries* the extra attempts a cell gets
    after a lost lease before quarantine, *steal_after_s* how long a
    sole lease must have been held before an idle worker may duplicate
    it (``None`` disables stealing), and *max_leases* caps concurrent
    duplicates per cell.
    """

    def __init__(self, cells: _t.Iterable["CampaignCell"], *,
                 lease_s: float | None = None, retries: int = 1,
                 steal_after_s: float | None = None,
                 max_leases: int = 2) -> None:
        """Index the grid cells; everything starts pending."""
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if max_leases < 1:
            raise ValueError(f"max_leases must be >= 1, got {max_leases}")
        self.lease_s = lease_s
        self.retries = retries
        self.steal_after_s = steal_after_s
        self.max_leases = max_leases
        self.cells: dict[str, _CellState] = {}
        self._queue: collections.deque[str] = collections.deque()
        for cell in cells:
            if cell.key in self.cells:
                raise ValueError(f"duplicate cell key {cell.key}")
            self.cells[cell.key] = _CellState(spec=cell.spec())
            self._queue.append(cell.key)
        self.workers: dict[str, _WorkerState] = {}
        self.counters = LeaseCounters()

    # -- queries -------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True when every cell reached a terminal state (done/failed)."""
        return all(c.status in (DONE, FAILED) for c in self.cells.values())

    def count(self, status: str) -> int:
        """Number of cells currently in *status*."""
        return sum(1 for c in self.cells.values() if c.status == status)

    def live_workers(self) -> list[str]:
        """Ids of registered, not-yet-failed workers."""
        return [w for w, s in self.workers.items() if not s.dead]

    # -- worker liveness -----------------------------------------------------
    def register(self, worker: str, now: float) -> None:
        """Record (or refresh) a worker; resurrecting a dead id re-registers."""
        state = self.workers.get(worker)
        if state is None or state.dead:
            self.workers[worker] = _WorkerState(last_seen=now)
        else:
            state.last_seen = now

    def touch(self, worker: str, now: float) -> list[str]:
        """Heartbeat: refresh liveness, drain the worker's revoked keys."""
        self.register(worker, now)
        state = self.workers[worker]
        revoked = sorted(state.revoked)
        state.revoked.clear()
        return revoked

    def dead_workers(self, now: float, liveness_s: float) -> list[str]:
        """Workers whose last heartbeat is older than *liveness_s*."""
        return [w for w, s in self.workers.items()
                if not s.dead and now - s.last_seen > liveness_s]

    def fail_worker(self, worker: str, now: float) -> list[str]:
        """Declare a worker dead and reclaim every lease it held.

        Returns the keys whose cells were quarantined as a consequence
        (retry budget already spent).
        """
        state = self.workers.get(worker)
        if state is None or state.dead:
            return []
        state.dead = True
        self.counters.workers_failed += 1
        quarantined = []
        for key in sorted(state.keys):
            if self._lose_lease(key, worker, now) == FAILED:
                quarantined.append(key)
        state.keys.clear()
        state.revoked.clear()
        return quarantined

    # -- granting ------------------------------------------------------------
    def grant(self, worker: str, now: float) -> Lease | None:
        """Lease the next cell to *worker* (stealing when the queue is dry).

        Returns ``None`` when there is nothing this worker can usefully
        run right now (queue empty and no steal candidate).
        """
        self.register(worker, now)
        while self._queue:
            key = self._queue.popleft()
            if self.cells[key].status == PENDING:
                return self._lease(key, worker, now, stolen=False)
        candidate = self._steal_candidate(worker, now)
        if candidate is not None:
            return self._lease(candidate, worker, now, stolen=True)
        return None

    def _lease(self, key: str, worker: str, now: float,
               stolen: bool) -> Lease:
        cell = self.cells[key]
        deadline = now + self.lease_s if self.lease_s is not None else None
        lease = Lease(key=key, worker=worker, attempt=cell.attempts,
                      granted=now, deadline=deadline, stolen=stolen)
        cell.status = LEASED
        cell.leases[worker] = lease
        self.workers[worker].keys.add(key)
        self.counters.granted += 1
        if stolen:
            self.counters.stolen += 1
        return lease

    def _steal_candidate(self, worker: str, now: float) -> str | None:
        """Longest-held in-flight cell this worker may duplicate."""
        if self.steal_after_s is None:
            return None
        best, best_age = None, self.steal_after_s
        for key, cell in self.cells.items():
            if cell.status != LEASED or worker in cell.leases:
                continue
            if len(cell.leases) >= self.max_leases:
                continue
            age = now - min(l.granted for l in cell.leases.values())
            if age >= best_age:
                best, best_age = key, age
        return best

    # -- results -------------------------------------------------------------
    def report_ok(self, worker: str, key: str, now: float) -> bool:
        """A worker delivered a successful result for *key*.

        Returns True when this is the first (authoritative) result —
        the caller should persist it; duplicates (from steals or a
        lease the table already reclaimed) return False.  A result from
        a reclaimed lease is still accepted: the work *is* done, so the
        cell is completed instead of being pointlessly re-run.
        """
        self.register(worker, now)
        cell = self.cells.get(key)
        if cell is None:
            return False
        self._drop_lease(cell, key, worker)
        if cell.status in (DONE, FAILED):
            self.counters.duplicates += 1
            return False
        cell.status = DONE
        for other in list(cell.leases):
            self._revoke(cell, key, other)
        return True

    def report_error(self, worker: str, key: str, now: float) -> str:
        """A worker's attempt at *key* failed; returns the cell's fate.

        ``"retry"`` — requeued; ``"failed"`` — retry budget exhausted,
        quarantine the cell; ``"ignored"`` — another lease is still
        running the cell, or it already finished.
        """
        self.register(worker, now)
        cell = self.cells.get(key)
        if cell is None or (worker not in cell.leases
                            and cell.status != LEASED):
            return "ignored"
        outcome = self._lose_lease(key, worker, now)
        return {PENDING: "retry", FAILED: "failed"}.get(outcome, "ignored")

    # -- reclamation ---------------------------------------------------------
    def expire(self, now: float) -> list[Lease]:
        """Reclaim every lease whose deadline has passed; returns them."""
        expired = []
        for cell in list(self.cells.values()):
            for lease in list(cell.leases.values()):
                if lease.deadline is not None and now >= lease.deadline:
                    expired.append(lease)
                    self.counters.expired += 1
                    self._revoke(cell, lease.key, lease.worker)
                    self._account_loss(lease.key, now)
        return expired

    def mark_done(self, keys: _t.Iterable[str]) -> int:
        """Pre-complete cells (resume path); returns how many matched."""
        n = 0
        for key in keys:
            cell = self.cells.get(key)
            if cell is not None and cell.status == PENDING:
                cell.status = DONE
                n += 1
        return n

    # -- internals -----------------------------------------------------------
    def _drop_lease(self, cell: _CellState, key: str, worker: str) -> None:
        cell.leases.pop(worker, None)
        state = self.workers.get(worker)
        if state is not None:
            state.keys.discard(key)

    def _revoke(self, cell: _CellState, key: str, worker: str) -> None:
        """Take a lease away and queue a revocation notice for its worker."""
        self._drop_lease(cell, key, worker)
        state = self.workers.get(worker)
        if state is not None and not state.dead:
            state.revoked.add(key)

    def _lose_lease(self, key: str, worker: str, now: float) -> str:
        """A lease ended without a result; returns the cell's new status."""
        cell = self.cells[key]
        self._drop_lease(cell, key, worker)
        return self._account_loss(key, now)

    def _account_loss(self, key: str, now: float) -> str:
        """Requeue or quarantine a cell that lost a lease."""
        cell = self.cells[key]
        if cell.status in (DONE, FAILED):
            return cell.status
        if cell.leases:
            return cell.status  # a duplicate lease is still in flight
        cell.attempts += 1
        if cell.attempts > self.retries:
            cell.status = FAILED
            return FAILED
        cell.status = PENDING
        self._queue.append(key)
        self.counters.reclaimed += 1
        return PENDING
