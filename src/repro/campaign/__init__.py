"""Parallel experiment campaigns: declarative grids over a worker pool.

The paper's evaluation is a grid of (scenario x seed) cells; this
package runs such grids concurrently without giving up determinism:

- :mod:`repro.campaign.grid` — :class:`CampaignCell` /
  :class:`CampaignGrid`, content-hash cell keys, TOML grid loading;
- :mod:`repro.campaign.cells` — :func:`execute_cell`, the per-kind cell
  executors (scenario, table1, churn, replication, scale_out, sleep);
- :mod:`repro.campaign.store` — the resumable append-only JSONL
  :class:`ResultStore`;
- :mod:`repro.campaign.runner` — :class:`CampaignRunner`: the
  process-pool scheduler with per-cell timeout, retry, and quarantine.

Builtin grids for the paper's sweeps live in
:mod:`repro.experiments.grids`; aggregation of a finished store into
tables lives in :mod:`repro.analysis.campaign`; the CLI front end is
``python -m repro campaign``.
"""

from .cells import execute_cell
from .grid import (
    CELL_KINDS,
    CampaignCell,
    CampaignGrid,
    canonical_json,
    cell_key,
    grid_from_toml,
)
from .runner import CampaignReport, CampaignRunner, run_campaign
from .store import CellRecord, ResultStore

__all__ = [
    "CELL_KINDS",
    "CampaignCell",
    "CampaignGrid",
    "CampaignReport",
    "CampaignRunner",
    "CellRecord",
    "ResultStore",
    "canonical_json",
    "cell_key",
    "execute_cell",
    "grid_from_toml",
    "run_campaign",
]
