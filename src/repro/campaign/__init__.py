"""Parallel experiment campaigns: declarative grids over a worker pool.

The paper's evaluation is a grid of (scenario x seed) cells; this
package runs such grids concurrently without giving up determinism:

- :mod:`repro.campaign.grid` — :class:`CampaignCell` /
  :class:`CampaignGrid`, content-hash cell keys, TOML grid loading;
- :mod:`repro.campaign.cells` — :func:`execute_cell`, the per-kind cell
  executors (scenario, table1, churn, replication, scale_out, sleep);
- :mod:`repro.campaign.store` — the resumable append-only JSONL
  :class:`ResultStore`, plus :func:`merge_stores` /
  :func:`diff_stores` for multi-writer shard reconciliation;
- :mod:`repro.campaign.runner` — :class:`CampaignRunner`: the
  process-pool scheduler with per-cell timeout, retry, and quarantine;
- :mod:`repro.campaign.lease` — :class:`LeaseTable`, the pure
  lease/reclaim/steal state machine under the distributed control
  plane;
- :mod:`repro.campaign.coordinator` /
  :mod:`repro.campaign.worker` — the distributed control plane:
  a TCP coordinator that leases cells to worker processes, detects
  failures via heartbeats and connection loss, reclaims and re-leases
  lost work, and steals stragglers near campaign end.

Builtin grids for the paper's sweeps live in
:mod:`repro.experiments.grids`; aggregation of a finished store into
tables lives in :mod:`repro.analysis.campaign`; the CLI front end is
``python -m repro campaign`` (with ``coordinate`` / ``work`` /
``merge`` / ``diff`` subcommands for the distributed mode).
"""

from .cells import execute_cell
from .coordinator import CampaignCoordinator, coordinate_campaign
from .grid import (
    CELL_KINDS,
    CampaignCell,
    CampaignGrid,
    canonical_json,
    cell_key,
    grid_from_toml,
)
from .lease import Lease, LeaseCounters, LeaseTable
from .runner import CampaignReport, CampaignRunner, run_campaign
from .store import CellRecord, ResultStore, diff_stores, merge_stores
from .worker import CampaignWorker, worker_entry

__all__ = [
    "CELL_KINDS",
    "CampaignCell",
    "CampaignCoordinator",
    "CampaignGrid",
    "CampaignReport",
    "CampaignRunner",
    "CampaignWorker",
    "CellRecord",
    "Lease",
    "LeaseCounters",
    "LeaseTable",
    "ResultStore",
    "canonical_json",
    "cell_key",
    "coordinate_campaign",
    "diff_stores",
    "execute_cell",
    "grid_from_toml",
    "merge_stores",
    "run_campaign",
    "worker_entry",
]
