"""Cell executors: run one campaign cell and return its result payload.

:func:`execute_cell` is the single entry point the campaign runner calls
— in-process for sequential runs, inside a worker process for parallel
ones.  Every executor builds its deployment from the cell's own seed via
the normal :class:`repro.sim.RngRegistry` streams, so a cell's payload
depends only on its spec: running it alone, sequentially, or on any
worker of a pool produces byte-identical results (asserted by
``tests/campaign/`` and ``benchmarks/test_campaign.py``).

Payloads are JSON-able dicts of *deterministic* quantities only; wall
clock, attempt counts, and worker identity belong to the runner's
``meta`` side-channel, never to the payload.
"""

from __future__ import annotations

import time
import typing as _t

#: Scenario fields a cell may set (the JSON-able subset of
#: :class:`repro.experiments.Scenario`).
SCENARIO_PARAMS: tuple[str, ...] = (
    "name", "n_nodes", "n_maps", "n_reducers", "mr_clients", "input_size",
    "replication", "quorum", "fast_node_fraction", "byzantine_rate",
    "allocator", "timeout_s", "app_name", "engine", "sim_workers",
)


def _metrics_payload(metrics: _t.Any) -> dict[str, _t.Any]:
    """The paper's Table I cell set, as a flat JSON-able dict."""
    return {
        "total": metrics.total,
        "total_discard_slowest": metrics.total_discard_slowest,
        "map_mean": metrics.map_stats.mean,
        "map_discard_slowest": metrics.map_stats.mean_discard_slowest,
        "reduce_mean": metrics.reduce_stats.mean,
        "reduce_discard_slowest": metrics.reduce_stats.mean_discard_slowest,
        "transition_gap": metrics.transition_gap,
    }


def _run_deployment(scenario: _t.Any, faults: str | None) -> dict[str, _t.Any]:
    """Build, optionally fault-inject, and run one scenario deployment."""
    from ..analysis import job_metrics
    from ..experiments.scenario import build_cloud, job_spec

    cloud = build_cloud(scenario)
    injector = cloud.apply_faults(faults) if faults else None
    job = cloud.run_job(job_spec(scenario), timeout=scenario.timeout_s)
    payload = _metrics_payload(job_metrics(cloud.tracer, scenario.name))
    payload["events"] = cloud.sim.dispatch_count
    payload["sim_end"] = cloud.sim.now
    if injector is not None:
        report = cloud.audit(job)
        payload["faults_injected"] = len(injector.events)
        payload["audit_ok"] = report.ok
    return payload


def _execute_scenario(spec: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    """A single :class:`~repro.experiments.Scenario` run."""
    from ..experiments import Scenario

    params = dict(spec.get("params", {}))
    unknown = set(params) - set(SCENARIO_PARAMS)
    if unknown:
        raise ValueError(f"unknown scenario params: {sorted(unknown)}")
    params.setdefault("name", "cell")
    scenario = Scenario(seed=spec["seed"], **params)
    return _run_deployment(scenario, spec.get("faults"))


def _execute_table1(spec: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    """One Table I row (by index into :data:`repro.experiments.PAPER_TABLE1`)."""
    from ..experiments import PAPER_TABLE1, scenario_for_row

    row = PAPER_TABLE1[spec["params"]["row"]]
    scenario = scenario_for_row(row, seed=spec["seed"])
    payload = _run_deployment(scenario, spec.get("faults"))
    payload["paper_total"] = row.paper_total.mean
    payload["paper_map"] = row.paper_map.mean
    payload["paper_reduce"] = row.paper_reduce.mean
    return payload


def _execute_churn(spec: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    """One churn-study run (:func:`repro.experiments.run_churn`)."""
    from ..experiments import run_churn

    outcome = run_churn(seed=spec["seed"], **dict(spec.get("params", {})))
    return {
        "total": outcome.total,
        "transitions": outcome.transitions,
        "departed": outcome.departed,
        "peer_fetches": outcome.peer_fetches,
        "server_fallbacks": outcome.server_fallbacks,
        "replacement_results": outcome.replacement_results,
    }


def _execute_replication(spec: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    """One replication-sweep point (:func:`repro.experiments.run_replication`)."""
    from ..experiments import run_replication

    outcome = run_replication(seed=spec["seed"], **dict(spec.get("params", {})))
    return {
        "total": outcome.total,
        "replication": outcome.replication,
        "quorum": outcome.quorum,
        "byzantine_rate": outcome.byzantine_rate,
        "results_executed": outcome.results_executed,
        "corrupt_accepted": outcome.corrupt_accepted,
        "workunits": outcome.workunits,
        "overhead": outcome.overhead,
    }


def _execute_scale_out(spec: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    """One simulator-scalability point; wall-clock fields are dropped
    (they are nondeterministic and belong to the runner's meta)."""
    from ..experiments import scale_out

    point = scale_out(seed=spec["seed"], **dict(spec.get("params", {})))
    return {
        "n_nodes": point.n_nodes,
        "allocator": point.allocator,
        "n_jobs": point.n_jobs,
        "events": point.events,
        "makespan_s": point.makespan_s,
        "peak_queue_depth": point.peak_queue_depth,
        "engine": point.engine,
        "sim_workers": point.sim_workers,
        "windows": point.windows,
        "cross_deliveries": point.cross_deliveries,
    }


def _execute_sleep(spec: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    """Synthetic wall-clock cell: used by the campaign benchmark to
    measure pure fan-out speedup, and by tests to exercise timeouts."""
    duration = float(spec.get("params", {}).get("duration_s", 0.1))
    time.sleep(duration)
    return {"slept_s": duration}


_EXECUTORS: dict[str, _t.Callable[[_t.Mapping[str, _t.Any]],
                                  dict[str, _t.Any]]] = {
    "scenario": _execute_scenario,
    "table1": _execute_table1,
    "churn": _execute_churn,
    "replication": _execute_replication,
    "scale_out": _execute_scale_out,
    "sleep": _execute_sleep,
}


def execute_cell(spec: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    """Run one cell spec (see :meth:`repro.campaign.CampaignCell.spec`) to completion.

    Returns the deterministic result payload; raises on any failure (the
    runner converts exceptions into quarantine records).
    """
    try:
        executor = _EXECUTORS[spec["kind"]]
    except KeyError:
        raise ValueError(f"unknown cell kind {spec.get('kind')!r}") from None
    return executor(spec)
