"""Resumable on-disk campaign result store (append-only JSONL).

One line per finished cell attempt, keyed by the content hash of the
cell spec (:func:`repro.campaign.cell_key`).  Append-only writes make
the store crash-safe: a campaign killed mid-run leaves at most one
truncated trailing line, which :meth:`ResultStore.load` skips, and the
next ``--resume`` run re-executes only the cells without an ``ok``
record.  Records for the same key supersede each other last-wins, so a
re-run of a previously failed cell simply appends its new outcome.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

from .grid import canonical_json


@dataclasses.dataclass(frozen=True, slots=True)
class CellRecord:
    """One stored cell outcome."""

    key: str
    spec: dict[str, _t.Any]
    status: str                      # "ok" | "failed"
    result: dict[str, _t.Any] | None
    #: Nondeterministic bookkeeping (wall seconds, attempts, worker id,
    #: error text).  Kept apart from ``result`` so the byte-identity
    #: guarantee covers exactly the deterministic payload.
    meta: dict[str, _t.Any]

    @property
    def ok(self) -> bool:
        """True when the cell completed (its payload is trustworthy)."""
        return self.status == "ok"

    def to_json(self) -> str:
        """Serialise to one canonical-JSON store line."""
        return canonical_json({
            "key": self.key, "spec": self.spec, "status": self.status,
            "result": self.result, "meta": self.meta,
        })

    @classmethod
    def from_json(cls, line: str) -> "CellRecord":
        """Parse one store line back into a record."""
        data = json.loads(line)
        return cls(key=data["key"], spec=data["spec"], status=data["status"],
                   result=data.get("result"), meta=data.get("meta", {}))


class ResultStore:
    """Append-only JSONL store of :class:`CellRecord` lines."""

    def __init__(self, path: str | pathlib.Path) -> None:
        """Bind to ``path``; the file is created on first append."""
        self.path = pathlib.Path(path)

    def append(self, record: CellRecord) -> None:
        """Durably append one record (open-write-close per record, so a
        crash can only ever truncate the final line)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(record.to_json() + "\n")
            fh.flush()

    def records(self) -> list[CellRecord]:
        """Every record in file order (duplicates kept).

        Tolerates a truncated/corrupt trailing line (the crash case — a
        writer killed mid-append, e.g. a SIGKILLed campaign worker);
        corruption anywhere else raises, because silently dropping
        completed results would quietly re-run work.
        """
        if not self.path.exists():
            return []
        records: list[CellRecord] = []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(CellRecord.from_json(line))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if i == len(lines) - 1:
                    break  # interrupted final write; resume re-runs the cell
                raise ValueError(
                    f"corrupt campaign store {self.path} at line {i + 1}: "
                    f"{exc}") from exc
        return records

    def load(self) -> dict[str, CellRecord]:
        """All records by key, last occurrence winning.

        Same tolerance/corruption contract as :meth:`records`.
        """
        records: dict[str, CellRecord] = {}
        for record in self.records():
            records[record.key] = record
        return records

    def completed_keys(self) -> set[str]:
        """Keys with a successful result (the resume skip-set)."""
        return {k for k, r in self.load().items() if r.ok}

    def clear(self) -> None:
        """Start the store over (a fresh, non-resumed campaign)."""
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        return len(self.load())


def _as_store(store: "ResultStore | str | pathlib.Path") -> ResultStore:
    """Coerce a path-or-store argument into a :class:`ResultStore`."""
    return store if isinstance(store, ResultStore) else ResultStore(store)


def merge_stores(out: "ResultStore | str | pathlib.Path",
                 shards: _t.Iterable["ResultStore | str | pathlib.Path"],
                 ) -> dict[str, CellRecord]:
    """Fold per-worker JSONL shards into one resumable store at *out*.

    The distributed campaign's multi-writer merge: each worker appends
    only to its own shard, so shards never contend, and this function
    reconciles them after the fact.  Per key, a successful record beats
    a failed one regardless of shard order (a retry that succeeded on
    another worker supersedes the failures a killed worker left
    behind); between records of equal status, the last one encountered
    wins — the same rule :meth:`ResultStore.load` applies within one
    file.  Each shard tolerates a torn trailing line (a writer
    SIGKILLed mid-append) but mid-file corruption raises, and merging
    *out* into itself is refused.  The merged mapping is also written
    to *out* (failed record first when a key has both, so a plain
    ``load()`` of the merged file resolves last-wins to the success)
    and returned.
    """
    out_store = _as_store(out)
    shard_stores = [_as_store(s) for s in shards]
    out_path = out_store.path.resolve()
    for shard in shard_stores:
        if shard.path.resolve() == out_path:
            raise ValueError(
                f"refusing to merge store {out_store.path} into itself")
    best: dict[str, CellRecord] = {}
    failures: dict[str, CellRecord] = {}     # audit trail of lost attempts
    for shard in shard_stores:
        for record in shard.records():
            if not record.ok:
                failures[record.key] = record
            current = best.get(record.key)
            if current is None or record.ok or not current.ok:
                best[record.key] = record
    out_store.clear()
    for key in sorted(best):
        if best[key].ok and key in failures:
            out_store.append(failures[key])
        out_store.append(best[key])
    return best


def diff_stores(left: "ResultStore | str | pathlib.Path",
                right: "ResultStore | str | pathlib.Path") -> list[str]:
    """Compare the successful per-key payloads of two campaign stores.

    Returns human-readable mismatch lines (empty list = the stores are
    result-equivalent): keys completed in one store but not the other,
    and keys whose deterministic ``result`` payloads differ.  ``meta``
    (wall time, attempts, worker id) is ignored by design — it is the
    nondeterministic half of a record — so a distributed run compares
    equal to a sequential one whenever the science matches.
    """
    a = {k: r for k, r in _as_store(left).load().items() if r.ok}
    b = {k: r for k, r in _as_store(right).load().items() if r.ok}
    lines = []
    for key in sorted(a.keys() | b.keys()):
        if key not in b:
            lines.append(f"{key}: only completed in {_as_store(left).path}")
        elif key not in a:
            lines.append(f"{key}: only completed in {_as_store(right).path}")
        elif canonical_json(a[key].result) != canonical_json(b[key].result):
            lines.append(f"{key}: payloads differ")
    return lines
