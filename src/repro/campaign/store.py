"""Resumable on-disk campaign result store (append-only JSONL).

One line per finished cell attempt, keyed by the content hash of the
cell spec (:func:`repro.campaign.cell_key`).  Append-only writes make
the store crash-safe: a campaign killed mid-run leaves at most one
truncated trailing line, which :meth:`ResultStore.load` skips, and the
next ``--resume`` run re-executes only the cells without an ``ok``
record.  Records for the same key supersede each other last-wins, so a
re-run of a previously failed cell simply appends its new outcome.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

from .grid import canonical_json


@dataclasses.dataclass(frozen=True, slots=True)
class CellRecord:
    """One stored cell outcome."""

    key: str
    spec: dict[str, _t.Any]
    status: str                      # "ok" | "failed"
    result: dict[str, _t.Any] | None
    #: Nondeterministic bookkeeping (wall seconds, attempts, worker id,
    #: error text).  Kept apart from ``result`` so the byte-identity
    #: guarantee covers exactly the deterministic payload.
    meta: dict[str, _t.Any]

    @property
    def ok(self) -> bool:
        """True when the cell completed (its payload is trustworthy)."""
        return self.status == "ok"

    def to_json(self) -> str:
        """Serialise to one canonical-JSON store line."""
        return canonical_json({
            "key": self.key, "spec": self.spec, "status": self.status,
            "result": self.result, "meta": self.meta,
        })

    @classmethod
    def from_json(cls, line: str) -> "CellRecord":
        """Parse one store line back into a record."""
        data = json.loads(line)
        return cls(key=data["key"], spec=data["spec"], status=data["status"],
                   result=data.get("result"), meta=data.get("meta", {}))


class ResultStore:
    """Append-only JSONL store of :class:`CellRecord` lines."""

    def __init__(self, path: str | pathlib.Path) -> None:
        """Bind to ``path``; the file is created on first append."""
        self.path = pathlib.Path(path)

    def append(self, record: CellRecord) -> None:
        """Durably append one record (open-write-close per record, so a
        crash can only ever truncate the final line)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(record.to_json() + "\n")
            fh.flush()

    def load(self) -> dict[str, CellRecord]:
        """All records by key, last occurrence winning.

        Tolerates a truncated/corrupt trailing line (the crash case);
        corruption anywhere else raises, because silently dropping
        completed results would quietly re-run work.
        """
        if not self.path.exists():
            return {}
        records: dict[str, CellRecord] = {}
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = CellRecord.from_json(line)
            except (json.JSONDecodeError, KeyError) as exc:
                if i == len(lines) - 1:
                    break  # interrupted final write; resume re-runs the cell
                raise ValueError(
                    f"corrupt campaign store {self.path} at line {i + 1}: "
                    f"{exc}") from exc
            records[record.key] = record
        return records

    def completed_keys(self) -> set[str]:
        """Keys with a successful result (the resume skip-set)."""
        return {k for k, r in self.load().items() if r.ok}

    def clear(self) -> None:
        """Start the store over (a fresh, non-resumed campaign)."""
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        return len(self.load())
