"""Flow-level network model with max–min fair bandwidth sharing.

Instead of simulating packets, each transfer is a *flow* with a remaining
byte count.  All active flows share the directional capacity of the links
they traverse (a flow from A to B uses A's uplink and B's downlink, plus any
extra shared links such as a project data-server trunk).  Rates are the
classic max–min fair allocation computed by progressive filling, with
optional per-flow rate caps (to model TCP throughput ceilings).

Whenever the flow set changes, progress is advanced, rates are recomputed,
and the earliest completion is scheduled.  A version counter retracts stale
completion events, so the model stays correct under arbitrary churn.

*Background* flows (the TCP-Nice model from the paper's Section III.D) only
receive capacity left over after all foreground flows are allocated — a
two-pass allocation that captures Nice's "only use spare bandwidth"
behaviour at the flow level.
"""

from __future__ import annotations

import math
import typing as _t

from ..sim import PRIORITY_HIGH, Event, Simulator, Tracer

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry

#: Flows with fewer remaining bytes than this are considered complete
#: (coarser than float error accumulated across rate recomputations, finer
#: than the 1-byte granularity of real transfers).
_EPSILON_BYTES = 1e-3


class Link:
    """One direction of a network link with a fixed capacity in bytes/s."""

    __slots__ = ("name", "capacity", "bytes_carried")

    def __init__(self, name: str, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"link {name!r} capacity must be positive")
        self.name = name
        #: Capacity in *bytes* per second.
        self.capacity = capacity_bps / 8.0
        #: Total bytes this link has carried (all flows, all time).
        self.bytes_carried = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Link {self.name} {self.capacity * 8 / 1e6:.0f}Mbit>"


class FlowError(RuntimeError):
    """A flow was aborted; carried by the flow's ``done`` event on failure."""


class Flow:
    """An active bulk transfer.

    Attributes
    ----------
    done:
        Event fired with the flow on completion, or failed with
        :class:`FlowError` when aborted.
    rate:
        Current allocated rate in bytes/s (updated on every recompute).
    """

    __slots__ = (
        "name", "links", "size", "remaining", "rate", "max_rate",
        "background", "done", "started_at", "finished_at", "aborted",
        "corrupted",
    )

    def __init__(self, sim: Simulator, name: str, links: _t.Sequence[Link],
                 size: float, max_rate: float | None, background: bool) -> None:
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if not links:
            raise ValueError("a flow must traverse at least one link")
        if max_rate is not None and max_rate <= 0:
            raise ValueError("max_rate must be positive when given")
        self.name = name
        self.links = tuple(links)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.max_rate = max_rate
        self.background = background
        self.done: Event = sim.event(name=f"flow:{name}")
        self.started_at = sim.now
        self.finished_at: float | None = None
        self.aborted = False
        #: Fault injection: the payload arrives corrupt; the receiver's
        #: checksum validation must reject it and re-download.
        self.corrupted = False

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def eta(self) -> float:
        """Seconds until completion at the current rate (inf if stalled)."""
        if self.remaining <= _EPSILON_BYTES:
            return 0.0
        if self.rate <= 0:
            return math.inf
        return self.remaining / self.rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Flow {self.name} {self.remaining:.0f}/{self.size:.0f}B "
                f"@{self.rate:.0f}B/s>")


def maxmin_rates(flows: _t.Sequence[Flow]) -> dict[Flow, float]:
    """Max–min fair rates for *flows* via progressive filling.

    Respects per-flow ``max_rate`` caps.  Links are discovered from the
    flows themselves.  Returns rates in bytes/s.
    """
    if not flows:
        return {}
    rate: dict[Flow, float] = {f: 0.0 for f in flows}
    unfrozen: set[Flow] = set(flows)
    headroom: dict[Link, float] = {}
    active: dict[Link, int] = {}
    for f in flows:
        for link in f.links:
            headroom.setdefault(link, link.capacity)
            active[link] = active.get(link, 0) + 1

    # Progressive filling: raise all unfrozen flows' rates in lockstep until
    # a link saturates or a flow hits its cap; freeze and repeat.
    for _ in range(2 * len(flows) + 2):  # each round freezes >= 1 flow
        if not unfrozen:
            break
        increment = math.inf
        for link, count in active.items():
            if count > 0:
                increment = min(increment, headroom[link] / count)
        for f in unfrozen:
            if f.max_rate is not None:
                increment = min(increment, f.max_rate - rate[f])
        if increment < 0:
            increment = 0.0
        newly_frozen: list[Flow] = []
        for f in unfrozen:
            rate[f] += increment
            if f.max_rate is not None and rate[f] >= f.max_rate * (1 - 1e-9):
                newly_frozen.append(f)
        for link in active:
            headroom[link] -= increment * active[link]
        for link, room in headroom.items():
            if room <= link.capacity * 1e-9 and active[link] > 0:
                for f in list(unfrozen):
                    if link in f.links and f not in newly_frozen:
                        newly_frozen.append(f)
        if not newly_frozen:
            # Nothing binding (all caps/links satisfied) — allocation final.
            break
        for f in newly_frozen:
            if f in unfrozen:
                unfrozen.remove(f)
                for link in f.links:
                    active[link] -= 1
    return rate


class FlowNetwork:
    """Tracks active flows and keeps their rates max–min fair over time."""

    def __init__(self, sim: Simulator, tracer: Tracer | None = None,
                 metrics: "MetricsRegistry | None" = None) -> None:
        self.sim = sim
        self.tracer = tracer
        #: Optional :class:`repro.obs.MetricsRegistry` for flow counters
        #: and duration/size histograms.
        self.metrics = metrics
        self.active: list[Flow] = []
        self._version = 0
        self._last_update = sim.now
        #: Total bytes delivered by completed flows (diagnostic).
        self.bytes_delivered = 0.0
        self.flows_completed = 0
        self.flows_aborted = 0

    # -- public API ----------------------------------------------------------
    def start_flow(self, name: str, links: _t.Sequence[Link], size: float,
                   max_rate: float | None = None,
                   background: bool = False) -> Flow:
        """Begin a transfer of *size* bytes across *links*; returns the flow."""
        flow = Flow(self.sim, name, links, size, max_rate, background)
        if flow.remaining <= _EPSILON_BYTES:
            flow.finished_at = self.sim.now
            flow.done.trigger(flow)
            self.flows_completed += 1
            return flow
        self.active.append(flow)
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "flow.start", flow=name,
                               size=size, background=background)
        self._recompute()
        return flow

    def abort_flow(self, flow: Flow, reason: str = "aborted") -> None:
        """Cancel an in-flight flow; its ``done`` event fails with FlowError."""
        if flow.finished:
            return
        self._advance()
        self.active.remove(flow)
        flow.aborted = True
        flow.rate = 0.0
        flow.finished_at = self.sim.now
        self.flows_aborted += 1
        if self.metrics is not None:
            self.metrics.counter("net.flows_aborted_total").inc()
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "flow.abort", flow=flow.name,
                               reason=reason, transferred=flow.size - flow.remaining)
        flow.done.fail(FlowError(f"flow {flow.name}: {reason}"))
        self._recompute()

    def recompute(self) -> None:
        """Re-run rate allocation after an external capacity change.

        Call after mutating a :class:`Link` capacity (e.g. fault-injected
        bandwidth degradation) so progress up to now is accounted at the
        old rates and every active flow gets a fresh allocation.
        """
        self._recompute()

    def utilisation(self, link: Link) -> float:
        """Fraction of *link* capacity currently in use (0..1)."""
        used = sum(f.rate for f in self.active if link in f.links)
        return used / link.capacity

    # -- internals -------------------------------------------------------------
    def _advance(self) -> None:
        """Account progress since the last rate change."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            for f in self.active:
                sent = min(f.remaining, f.rate * dt)
                f.remaining -= sent
                for link in f.links:
                    link.bytes_carried += sent
        self._last_update = self.sim.now

    def _recompute(self) -> None:
        """Re-allocate rates and (re)schedule the next completion.

        Always advances progress first so rate changes never lose bytes
        already delivered at the old rates.
        """
        self._advance()
        foreground = [f for f in self.active if not f.background]
        background = [f for f in self.active if f.background]
        rates = maxmin_rates(foreground)
        for f, r in rates.items():
            f.rate = r
        if background:
            self._allocate_background(foreground, background)
        self._version += 1
        next_eta = math.inf
        for f in self.active:
            next_eta = min(next_eta, f.eta())
        if math.isfinite(next_eta):
            # PRIORITY_HIGH so completion processing at time T runs before
            # ordinary model callbacks at T observe a stale flow set.
            self.sim.schedule(next_eta, self._on_completion_timer, self._version,
                              priority=PRIORITY_HIGH)

    def _allocate_background(self, foreground: list[Flow],
                             background: list[Flow]) -> None:
        """Nice-style second pass: background flows share leftover capacity."""
        residual: dict[Link, float] = {}
        for f in background:
            for link in f.links:
                residual.setdefault(link, link.capacity)
        for f in foreground:
            for link in f.links:
                if link in residual:
                    residual[link] -= f.rate
        # Reuse progressive filling by temporarily shrinking link capacities.
        saved = {link: link.capacity for link in residual}
        try:
            for link, room in residual.items():
                link.capacity = max(room, 1e-9)
            rates = maxmin_rates(background)
        finally:
            for link, cap in saved.items():
                link.capacity = cap
        for f, r in rates.items():
            # A starved background flow gets a vanishing sliver from the
            # capacity floor above; treat it as fully stalled.
            f.rate = r if r > 1e-6 else 0.0

    def _on_completion_timer(self, version: int) -> None:
        if version != self._version:
            return  # superseded by a later recompute
        self._advance()
        finished = [f for f in self.active if f.remaining <= _EPSILON_BYTES]
        if not finished:
            self._recompute()
            return
        for f in finished:
            self.active.remove(f)
            f.remaining = 0.0
            f.rate = 0.0
            f.finished_at = self.sim.now
            self.bytes_delivered += f.size
            self.flows_completed += 1
            if self.metrics is not None:
                self.metrics.counter("net.flows_completed_total").inc()
                self.metrics.counter("net.bytes_delivered_total").inc(f.size)
                self.metrics.histogram("net.flow_duration_s").observe(
                    self.sim.now - f.started_at)
            if self.tracer is not None:
                self.tracer.record(self.sim.now, "flow.done", flow=f.name,
                                   size=f.size,
                                   duration=self.sim.now - f.started_at)
            f.done.trigger(f)
        self._recompute()
