"""Flow-level network model with max–min fair bandwidth sharing.

Instead of simulating packets, each transfer is a *flow* with a remaining
byte count.  All active flows share the directional capacity of the links
they traverse (a flow from A to B uses A's uplink and B's downlink, plus any
extra shared links such as a project data-server trunk).  Rates are the
classic max–min fair allocation computed by progressive filling, with
optional per-flow rate caps (to model TCP throughput ceilings).

Whenever the flow set changes, progress is advanced, rates are recomputed,
and the earliest completion is scheduled.  Stale completion timers are
retracted (cancelled, or skipped via version counters), so the model stays
correct under arbitrary churn.

*Background* flows (the TCP-Nice model from the paper's Section III.D) only
receive capacity left over after all foreground flows are allocated — a
two-pass allocation that captures Nice's "only use spare bandwidth"
behaviour at the flow level.

Rate allocation is a pluggable strategy (the ``allocator=`` parameter of
:class:`FlowNetwork`):

- ``"full"`` — the original global algorithm: every flow change reallocates
  every active flow, O(F·L) per event.  Simple, and the reference the
  incremental allocator is property-tested against.
- ``"incremental"`` (default) — partitions the active flows into
  link-connected components and reallocates only the component touched by a
  change.  Untouched components keep their cached rates and completion
  timers (per-component version counters + cancellable timers), which is
  what lets the simulator scale to thousands of volunteers.

Both strategies maintain per-link used-rate sums so
:meth:`FlowNetwork.utilisation` is O(1) per sample.
"""

from __future__ import annotations

import heapq
import itertools
import math
import typing as _t

from ..sim import PRIORITY_HIGH, Event, Simulator, TimerHandle, Tracer

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry

#: Flows with fewer remaining bytes than this are considered complete
#: (coarser than float error accumulated across rate recomputations, finer
#: than the 1-byte granularity of real transfers).
_EPSILON_BYTES = 1e-3


class Link:
    """One direction of a network link with a fixed capacity in bytes/s."""

    __slots__ = ("name", "capacity", "bytes_carried")

    def __init__(self, name: str, capacity_bps: float) -> None:
        """A shared link with *capacity_bps* bytes/s of capacity."""
        if capacity_bps <= 0:
            raise ValueError(f"link {name!r} capacity must be positive")
        self.name = name
        #: Capacity in *bytes* per second.
        self.capacity = capacity_bps / 8.0
        #: Total bytes this link has carried (all flows, all time).
        self.bytes_carried = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Link {self.name} {self.capacity * 8 / 1e6:.0f}Mbit>"


class FlowError(RuntimeError):
    """A flow was aborted; carried by the flow's ``done`` event on failure."""


class Flow:
    """An active bulk transfer.

    Attributes
    ----------
    done:
        Event fired with the flow on completion, or failed with
        :class:`FlowError` when aborted.
    rate:
        Current allocated rate in bytes/s (updated on every recompute).
    """

    __slots__ = (
        "name", "links", "size", "remaining", "rate", "max_rate",
        "background", "done", "started_at", "finished_at", "aborted",
        "corrupted", "seq",
    )

    def __init__(self, sim: Simulator, name: str, links: _t.Sequence[Link],
                 size: float, max_rate: float | None, background: bool) -> None:
        """A transfer of *size* bytes over *links* (internal; see start_flow)."""
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if not links:
            raise ValueError("a flow must traverse at least one link")
        if max_rate is not None and max_rate <= 0:
            raise ValueError("max_rate must be positive when given")
        self.name = name
        self.links = tuple(links)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.max_rate = max_rate
        self.background = background
        self.done: Event = sim.event(name=f"flow:{name}")
        self.started_at = sim.now
        self.finished_at: float | None = None
        self.aborted = False
        #: Fault injection: the payload arrives corrupt; the receiver's
        #: checksum validation must reject it and re-download.
        self.corrupted = False
        #: Global start order, assigned by FlowNetwork — the deterministic
        #: tie-breaker allocators use wherever ordering matters.
        self.seq = -1

    @property
    def finished(self) -> bool:
        """True once the last byte has been accounted."""
        return self.done.triggered

    def eta(self) -> float:
        """Seconds until completion at the current rate (inf if stalled)."""
        if self.remaining <= _EPSILON_BYTES:
            return 0.0
        if self.rate <= 0:
            return math.inf
        return self.remaining / self.rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Flow {self.name} {self.remaining:.0f}/{self.size:.0f}B "
                f"@{self.rate:.0f}B/s>")


def _by_seq(flow: Flow) -> int:
    return flow.seq


def maxmin_rates(flows: _t.Sequence[Flow]) -> dict[Flow, float]:
    """Max–min fair rates for *flows* via progressive filling.

    Respects per-flow ``max_rate`` caps.  Links are discovered from the
    flows themselves.  Returns rates in bytes/s.
    """
    if not flows:
        return {}
    rate: dict[Flow, float] = {f: 0.0 for f in flows}
    unfrozen: set[Flow] = set(flows)
    headroom: dict[Link, float] = {}
    active: dict[Link, int] = {}
    for f in flows:
        for link in f.links:
            headroom.setdefault(link, link.capacity)
            active[link] = active.get(link, 0) + 1

    # Progressive filling: raise all unfrozen flows' rates in lockstep until
    # a link saturates or a flow hits its cap; freeze and repeat.
    for _ in range(2 * len(flows) + 2):  # each round freezes >= 1 flow
        if not unfrozen:
            break
        increment = math.inf
        for link, count in active.items():
            if count > 0:
                increment = min(increment, headroom[link] / count)
        for f in unfrozen:
            if f.max_rate is not None:
                increment = min(increment, f.max_rate - rate[f])
        if increment < 0:
            increment = 0.0
        newly_frozen: list[Flow] = []
        for f in unfrozen:
            rate[f] += increment
            if f.max_rate is not None and rate[f] >= f.max_rate * (1 - 1e-9):
                newly_frozen.append(f)
        for link in active:
            headroom[link] -= increment * active[link]
        for link, room in headroom.items():
            if room <= link.capacity * 1e-9 and active[link] > 0:
                for f in list(unfrozen):
                    if link in f.links and f not in newly_frozen:
                        newly_frozen.append(f)
        if not newly_frozen:
            # Nothing binding (all caps/links satisfied) — allocation final.
            break
        for f in newly_frozen:
            if f in unfrozen:
                unfrozen.remove(f)
                for link in f.links:
                    active[link] -= 1
    return rate


def _fill_background(foreground: list[Flow], background: list[Flow]) -> None:
    """Nice-style second pass: background flows share leftover capacity."""
    residual: dict[Link, float] = {}
    for f in background:
        for link in f.links:
            residual.setdefault(link, link.capacity)
    for f in foreground:
        for link in f.links:
            if link in residual:
                residual[link] -= f.rate
    # Reuse progressive filling by temporarily shrinking link capacities.
    saved = {link: link.capacity for link in residual}
    try:
        for link, room in residual.items():
            link.capacity = max(room, 1e-9)
        rates = maxmin_rates(background)
    finally:
        for link, cap in saved.items():
            link.capacity = cap
    for f, r in rates.items():
        # A starved background flow gets a vanishing sliver from the
        # capacity floor above; treat it as fully stalled.
        f.rate = r if r > 1e-6 else 0.0


def allocate_rates(flows: _t.Sequence[Flow]) -> None:
    """Two-pass (foreground max–min, then background residual) allocation.

    Mutates ``flow.rate`` in place.  This is the shared fill routine both
    allocator strategies call; progressive filling is numerically
    order-independent, so full and incremental allocation of the same flow
    set produce identical rates.
    """
    foreground = [f for f in flows if not f.background]
    background = [f for f in flows if f.background]
    rates = maxmin_rates(foreground)
    for f, r in rates.items():
        f.rate = r
    if background:
        _fill_background(foreground, background)


@_t.runtime_checkable
class RateAllocator(_t.Protocol):
    """Strategy protocol for :class:`FlowNetwork` rate allocation.

    Implementations own *when* and *over what scope* rates are recomputed;
    the :class:`FlowNetwork` owns flow lifecycle bookkeeping (tracing,
    metrics, the ``done`` events) via :meth:`FlowNetwork._finish`.

    Lifecycle: the network calls :meth:`bind` once at construction, then
    :meth:`add` / :meth:`remove` as flows start and die, :meth:`advance`
    before it mutates a flow so progress at the old rates is not lost, and
    :meth:`refresh` after external link-capacity changes.
    """

    name: str

    def bind(self, net: "FlowNetwork") -> None:
        """Attach to *net*; called once before any other method."""

    def add(self, flow: Flow) -> None:
        """*flow* was appended to ``net._active``; allocate it a rate."""

    def remove(self, flow: Flow) -> None:
        """*flow* left ``net._active`` (abort); reallocate survivors."""

    def advance(self, flow: Flow | None = None) -> None:
        """Account progress at current rates — for *flow*'s scope, or all."""

    def refresh(self) -> None:
        """External capacity change: advance and reallocate everything."""

    def link_used(self, link: Link) -> float:
        """Summed allocated rate over *link* in bytes/s (O(1))."""

    def flows_using(self, links: _t.Sequence[Link]) -> list[Flow]:
        """Active flows traversing any of *links*, in start order."""

    def component_count(self) -> int:
        """Number of independent allocation domains currently tracked."""


class FullAllocator:
    """The original global strategy: every change reallocates every flow.

    O(F·L) per flow event, but numerically bit-identical to the historical
    single-``_recompute`` implementation — the reference baseline the
    incremental allocator is property-tested against.
    """

    name = "full"

    def __init__(self) -> None:
        """Unbound allocator; :meth:`bind` attaches it to a network."""
        self.net: FlowNetwork | None = None
        self._version = 0
        self._last_update = 0.0
        self._used: dict[Link, float] = {}

    def bind(self, net: "FlowNetwork") -> None:
        """Attach to *net* and start the global progress clock."""
        self.net = net
        self._last_update = net.sim.now

    # -- protocol -------------------------------------------------------------
    def add(self, flow: Flow) -> None:
        """Globally re-run max-min over every active flow."""
        self._reallocate()

    def remove(self, flow: Flow) -> None:
        """Globally re-run max-min over the survivors."""
        self._reallocate()

    def advance(self, flow: Flow | None = None) -> None:
        """Account progress for every flow (scope is always global here)."""
        net = self.net
        dt = net.sim.now - self._last_update
        if dt > 0:
            for f in net._active:
                sent = min(f.remaining, f.rate * dt)
                f.remaining -= sent
                for link in f.links:
                    link.bytes_carried += sent
        self._last_update = net.sim.now

    def refresh(self) -> None:
        """Globally reallocate after a capacity change."""
        self._reallocate()

    def link_used(self, link: Link) -> float:
        """Summed allocated rate over *link* (cached sum, O(1))."""
        return self._used.get(link, 0.0)

    def flows_using(self, links: _t.Sequence[Link]) -> list[Flow]:
        """Scan all active flows for any touching *links*."""
        lset = set(links)
        return [f for f in self.net._active if not lset.isdisjoint(f.links)]

    def component_count(self) -> int:
        """One global domain (or zero when idle)."""
        return 1 if self.net._active else 0

    # -- internals ------------------------------------------------------------
    def _reallocate(self) -> None:
        """Advance progress, refill every rate, schedule the next completion."""
        net = self.net
        self.advance()
        flows = list(net._active)
        allocate_rates(flows)
        used: dict[Link, float] = {}
        for f in flows:
            for link in f.links:
                used[link] = used.get(link, 0.0) + f.rate
        self._used = used
        self._version += 1
        next_eta = math.inf
        for f in flows:
            next_eta = min(next_eta, f.eta())
        if math.isfinite(next_eta):
            # PRIORITY_HIGH so completion processing at time T runs before
            # ordinary model callbacks at T observe a stale flow set.
            net.sim.schedule(next_eta, self._on_timer, self._version,
                             priority=PRIORITY_HIGH)

    def _on_timer(self, version: int) -> None:
        if version != self._version:
            return  # superseded by a later reallocation
        net = self.net
        self.advance()
        finished = [f for f in net._active if f.remaining <= _EPSILON_BYTES]
        if finished:
            net._finish(finished)
        self._reallocate()


class _Component:
    """A link-connected island of active flows (incremental allocator)."""

    __slots__ = ("flows", "adj", "seq", "version", "last_update", "next_at",
                 "next_rate", "timer")

    def __init__(self, now: float, seq: int) -> None:
        """An empty component created at sim time *now* (internal)."""
        #: Member flows, insertion-ordered (dict-as-ordered-set).
        self.flows: dict[Flow, None] = {}
        #: Link -> member flows over it, maintained incrementally on every
        #: add/detach so splits never rebuild adjacency from scratch.  The
        #: key set is exactly the links member flows touch.
        self.adj: dict[Link, dict[Flow, None]] = {}
        #: Creation order — the deterministic tie-breaker that keeps the
        #: indexed due-scan processing components in the same order the
        #: historical ``_comps`` iteration did.
        self.seq = seq
        #: Bumped on every (re)allocation; retracts stale timers.
        self.version = 0
        #: Sim time progress was last accounted for this component.
        self.last_update = now
        #: Absolute time of the scheduled completion check (None if idle).
        self.next_at: float | None = None
        #: Rate of the earliest-finishing flow at the last allocation.
        self.next_rate = 0.0
        self.timer: TimerHandle | None = None


def _link_components(flows: list[Flow],
                     adj: _t.Mapping[Link, _t.Iterable[Flow]],
                     ) -> list[list[Flow]]:
    """Partition *flows* into link-connected groups, each in start order."""
    seen: set[Flow] = set()
    groups: list[list[Flow]] = []
    for f in flows:
        if f in seen:
            continue
        seen.add(f)
        group = [f]
        stack = [f]
        while stack:
            cur = stack.pop()
            for link in cur.links:
                for other in adj[link]:
                    if other not in seen:
                        seen.add(other)
                        group.append(other)
                        stack.append(other)
        group.sort(key=_by_seq)
        groups.append(group)
    return groups


class IncrementalAllocator:
    """Component-partitioned strategy: reallocate only what a change touches.

    Active flows are grouped into link-connected components.  Starting a
    flow merges the components its links touch; an abort or completion
    splits its component if removal disconnected it.  Each component keeps
    its own progress clock, version counter, and cancellable completion
    timer, so churn in one part of the network never reschedules — or even
    inspects — flows elsewhere.  Per-event cost is O(component), not O(F).
    """

    name = "incremental"

    def __init__(self) -> None:
        """Unbound allocator with no components yet."""
        self.net: FlowNetwork | None = None
        self._comps: dict[_Component, None] = {}
        self._flow_comp: dict[Flow, _Component] = {}
        self._link_comp: dict[Link, _Component] = {}
        self._used: dict[Link, float] = {}
        self._comp_seq = itertools.count()
        #: Due-scan index: min-heap of ``(key, comp.seq, comp, version)``
        #: where *key* conservatively under-estimates the earliest sim time
        #: the component could pass the completion-epsilon test.  Replaces
        #: the historical O(components) linear scan on every timer fire;
        #: entries are invalidated lazily via the version counter.
        self._due: list[tuple[float, int, _Component, int]] = []

    def bind(self, net: "FlowNetwork") -> None:
        """Attach to *net*."""
        self.net = net

    # -- protocol -------------------------------------------------------------
    def add(self, flow: Flow) -> None:
        """Merge the components *flow*'s links touch, then resettle one."""
        now = self.net.sim.now
        comp: _Component | None = None
        for link in flow.links:
            c = self._link_comp.get(link)
            if c is None or c is comp:
                continue
            if comp is None:
                comp = c
                self._advance_comp(comp, now)
            else:
                self._advance_comp(c, now)
                self._merge(comp, c)
        if comp is None:
            comp = _Component(now, next(self._comp_seq))
            self._comps[comp] = None
        comp.flows[flow] = None
        self._flow_comp[flow] = comp
        for link in flow.links:
            comp.adj.setdefault(link, {})[flow] = None
            self._link_comp[link] = comp
        self._settle(comp)

    def remove(self, flow: Flow) -> None:
        """Drop *flow* and split its component if it disconnected."""
        comp = self._flow_comp[flow]
        self._detach(comp, flow)
        self._resettle(comp)

    def advance(self, flow: Flow | None = None) -> None:
        """Account progress for *flow*'s component only (or all)."""
        now = self.net.sim.now
        if flow is None:
            for comp in self._comps:
                self._advance_comp(comp, now)
        else:
            self._advance_comp(self._flow_comp[flow], now)

    def refresh(self) -> None:
        """Refill every component; membership is capacity-invariant."""
        # Capacity changes alter rates, never the link→flow structure, so
        # component membership is preserved; every component refills.
        for comp in list(self._comps):
            self._advance_comp(comp, self.net.sim.now)
            self._settle(comp)

    def link_used(self, link: Link) -> float:
        """Summed allocated rate over *link* (cached sum, O(1))."""
        return self._used.get(link, 0.0)

    def flows_using(self, links: _t.Sequence[Link]) -> list[Flow]:
        """Collect flows from only the components touching *links*."""
        lset = set(links)
        out: list[Flow] = []
        seen: set[int] = set()
        for link in links:
            comp = self._link_comp.get(link)
            if comp is None or id(comp) in seen:
                continue
            seen.add(id(comp))
            out.extend(f for f in comp.flows if not lset.isdisjoint(f.links))
        out.sort(key=_by_seq)
        return out

    def component_count(self) -> int:
        """Live link-connected components."""
        return len(self._comps)

    # -- internals ------------------------------------------------------------
    def _advance_comp(self, comp: _Component, now: float) -> None:
        dt = now - comp.last_update
        if dt > 0:
            for f in comp.flows:
                sent = min(f.remaining, f.rate * dt)
                f.remaining -= sent
                for link in f.links:
                    link.bytes_carried += sent
        comp.last_update = now

    def _detach(self, comp: _Component, flow: Flow) -> None:
        """Unlink *flow* from *comp*'s membership and adjacency indexes.

        Links that lose their last member flow are evicted from the
        component's adjacency and from the global link index eagerly, so
        :meth:`_resettle` never sees stale links and never rebuilds the
        adjacency map from scratch.
        """
        del comp.flows[flow]
        del self._flow_comp[flow]
        for link in flow.links:
            members = comp.adj.get(link)
            if members is None:
                continue
            members.pop(flow, None)
            if not members:
                del comp.adj[link]
                if self._link_comp.get(link) is comp:
                    del self._link_comp[link]
                    self._used.pop(link, None)

    def _merge(self, dst: _Component, src: _Component) -> None:
        """Absorb *src* into *dst* (both already advanced to now)."""
        if src.timer is not None:
            src.timer.cancel()
            src.timer = None
        src.version += 1
        for f in src.flows:
            dst.flows[f] = None
            self._flow_comp[f] = dst
        for link, members in src.adj.items():
            dst.adj.setdefault(link, {}).update(members)
            if self._link_comp.get(link) is src:
                self._link_comp[link] = dst
        del self._comps[src]

    def _dissolve(self, comp: _Component) -> None:
        """Drop an empty (or about-to-be-split) component and its index entries."""
        if comp.timer is not None:
            comp.timer.cancel()
            comp.timer = None
        comp.version += 1
        for link in comp.adj:
            if self._link_comp.get(link) is comp:
                del self._link_comp[link]
                self._used.pop(link, None)
        self._comps.pop(comp, None)

    def _settle(self, comp: _Component) -> None:
        """(Re)allocate *comp*'s rates and reschedule its completion timer.

        Timer hygiene lives here: the previous timer is cancelled (O(1))
        rather than left to fire as a stale no-op, so unaffected components
        elsewhere never accumulate superseded queue entries.
        """
        if not comp.flows:
            self._dissolve(comp)
            return
        sim = self.net.sim
        comp.version += 1
        if comp.timer is not None:
            comp.timer.cancel()
            comp.timer = None
        flows = sorted(comp.flows, key=_by_seq)
        allocate_rates(flows)
        for link in comp.adj:
            self._used[link] = 0.0
        for f in flows:
            for link in f.links:
                self._used[link] += f.rate
        next_eta = math.inf
        next_rate = 0.0
        for f in flows:
            eta = f.eta()
            if eta < next_eta:
                next_eta = eta
                next_rate = f.rate
        if math.isfinite(next_eta):
            comp.next_at = sim.now + next_eta
            comp.next_rate = next_rate
            comp.timer = sim.schedule_cancellable(
                next_eta, self._on_timer, comp, comp.version,
                priority=PRIORITY_HIGH)
            self._index_due(comp)
        else:
            comp.next_at = None
            comp.next_rate = 0.0

    def _index_due(self, comp: _Component) -> None:
        """Insert *comp* into the due-scan heap under a conservative key.

        The exact epsilon test is ``(next_at - now) * next_rate <=
        _EPSILON_BYTES``; rearranged, a component becomes due at real time
        ``next_at - eps/rate``.  The heap key doubles the margin and steps
        two floats down so rounding can never place the key *after* a
        timestamp where the exact test already passes — over-inclusion is
        filtered by re-applying the exact test at pop time, so the index
        changes which components are *inspected*, never which are due.
        """
        if comp.next_rate > 0:
            key = comp.next_at - 2.0 * _EPSILON_BYTES / comp.next_rate
        else:
            key = comp.next_at
        key = math.nextafter(math.nextafter(key, -math.inf), -math.inf)
        heapq.heappush(self._due, (key, comp.seq, comp, comp.version))
        if len(self._due) > 4 * len(self._comps) + 64:
            self._due = [entry for entry in self._due
                         if entry[2].version == entry[3]]
            heapq.heapify(self._due)

    def _resettle(self, comp: _Component) -> None:
        """After a removal: split *comp* if disconnected, refill survivors.

        The adjacency map is maintained incrementally (:meth:`_detach`), so
        the connectivity walk reuses it directly — the historical per-
        removal rebuild of link → flows was the second-hottest line in the
        10k-volunteer profile after the due-scan.
        """
        now = self.net.sim.now
        if not comp.flows:
            self._dissolve(comp)
            return
        flows = sorted(comp.flows, key=_by_seq)
        groups = _link_components(flows, comp.adj)
        if len(groups) == 1:
            self._settle(comp)
            return
        self._dissolve(comp)
        for group in groups:
            nc = _Component(now, next(self._comp_seq))
            self._comps[nc] = None
            for f in group:
                nc.flows[f] = None
                self._flow_comp[f] = nc
                for link in f.links:
                    nc.adj.setdefault(link, {})[f] = None
            for link in nc.adj:
                self._link_comp[link] = nc
            self._settle(nc)

    def _on_timer(self, comp: _Component, version: int) -> None:
        if comp.version != version:
            return  # superseded (defensive; cancellation makes this rare)
        now = self.net.sim.now
        # Due-scan: finish *every* flow within the completion epsilon at this
        # instant, across all components, exactly as the global allocator
        # does — (next_at - now) * next_rate is the earliest flow's remaining
        # byte count, so the comparison needs no per-flow work.  The heap
        # index surfaces candidates in O(log C) instead of scanning every
        # component; the exact test below decides, so due membership — and
        # with it the trace — is identical to the historical linear scan.
        due: list[_Component] = []
        heap = self._due
        while heap and heap[0][0] <= now:
            _key, _seq, c, ver = heapq.heappop(heap)
            if c.version != ver or c.next_at is None:
                continue  # retracted or resettled since indexing
            if (c.next_at - now) * c.next_rate <= _EPSILON_BYTES:
                due.append(c)
            else:
                # Conservative key over-included it; defer past this
                # instant (nextafter guarantees forward progress).
                heapq.heappush(
                    heap, (math.nextafter(now, math.inf), c.seq, c, ver))
        # Match the historical scan order (= component creation order).
        due.sort(key=lambda c: c.seq)
        finished: list[Flow] = []
        touched: list[tuple[_Component, list[Flow]]] = []
        for c in due:
            self._advance_comp(c, now)
            fin = [f for f in c.flows if f.remaining <= _EPSILON_BYTES]
            touched.append((c, fin))
            finished.extend(fin)
        for c, fin in touched:
            if not fin:
                self._settle(c)
                continue
            for f in fin:
                self._detach(c, f)
            self._resettle(c)
        if finished:
            finished.sort(key=_by_seq)
            self.net._finish(finished)


#: Registry the ``allocator=`` string parameter resolves against.
ALLOCATORS: dict[str, _t.Callable[[], "RateAllocator"]] = {
    "full": FullAllocator,
    "incremental": IncrementalAllocator,
}


class FlowNetwork:
    """Tracks active flows and keeps their rates max–min fair over time.

    Parameters
    ----------
    allocator:
        Rate-allocation strategy — ``"incremental"`` (default), ``"full"``,
        or any :class:`RateAllocator` instance (see :data:`ALLOCATORS`).
    """

    def __init__(self, sim: Simulator, tracer: Tracer | None = None,
                 metrics: "MetricsRegistry | None" = None,
                 allocator: "str | RateAllocator" = "incremental") -> None:
        """Create an empty network on *sim*; see the class doc for knobs."""
        self.sim = sim
        self.tracer = tracer
        #: Optional :class:`repro.obs.MetricsRegistry` for flow counters
        #: and duration/size histograms.
        self.metrics = metrics
        self._active: dict[Flow, None] = {}
        self._flow_seq = itertools.count()
        #: Total bytes delivered by completed flows (diagnostic).
        self.bytes_delivered = 0.0
        self.flows_completed = 0
        self.flows_aborted = 0
        if isinstance(allocator, str):
            try:
                factory = ALLOCATORS[allocator]
            except KeyError:
                raise ValueError(
                    f"unknown allocator {allocator!r}; "
                    f"expected one of {sorted(ALLOCATORS)}") from None
            allocator = factory()
        self.allocator: RateAllocator = allocator
        self.allocator.bind(self)

    @property
    def active(self) -> list[Flow]:
        """Snapshot of in-flight flows, in start order."""
        return list(self._active)

    @property
    def active_count(self) -> int:
        """Number of in-flight flows (O(1); prefer over ``len(active)``)."""
        return len(self._active)

    # -- public API ----------------------------------------------------------
    def start_flow(self, name: str, links: _t.Sequence[Link], size: float,
                   max_rate: float | None = None,
                   background: bool = False) -> Flow:
        """Begin a transfer of *size* bytes across *links*; returns the flow."""
        flow = Flow(self.sim, name, links, size, max_rate, background)
        flow.seq = next(self._flow_seq)
        if flow.remaining <= _EPSILON_BYTES:
            flow.finished_at = self.sim.now
            flow.done.trigger(flow)
            self.flows_completed += 1
            return flow
        self._active[flow] = None
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "flow.start", flow=name,
                               size=size, background=background)
        self.allocator.add(flow)
        return flow

    def abort_flow(self, flow: Flow, reason: str = "aborted") -> None:
        """Cancel an in-flight flow; its ``done`` event fails with FlowError."""
        if flow.finished:
            return
        self.allocator.advance(flow)
        del self._active[flow]
        flow.aborted = True
        flow.rate = 0.0
        flow.finished_at = self.sim.now
        self.flows_aborted += 1
        if self.metrics is not None:
            self.metrics.counter("net.flows_aborted_total").inc()
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "flow.abort", flow=flow.name,
                               reason=reason, transferred=flow.size - flow.remaining)
        flow.done.fail(FlowError(f"flow {flow.name}: {reason}"))
        self.allocator.remove(flow)

    def recompute(self) -> None:
        """Re-run rate allocation after an external capacity change.

        The single public entry point for forcing reallocation: call after
        mutating a :class:`Link` capacity (e.g. fault-injected bandwidth
        degradation) so progress up to now is accounted at the old rates and
        every active flow gets a fresh allocation.  Flow start/abort/
        completion reallocate automatically and never need this.
        """
        self.allocator.refresh()

    def utilisation(self, link: Link) -> float:
        """Fraction of *link* capacity currently in use (0..1).  O(1)."""
        return self.allocator.link_used(link) / link.capacity

    def flows_using(self, links: _t.Sequence[Link]) -> list[Flow]:
        """Active flows traversing any of *links*, in start order."""
        return self.allocator.flows_using(links)

    # -- internals -------------------------------------------------------------
    def _finish(self, flows: _t.Sequence[Flow]) -> None:
        """Complete *flows* (already advanced to zero remaining) at now."""
        now = self.sim.now
        for f in flows:
            del self._active[f]
            f.remaining = 0.0
            f.rate = 0.0
            f.finished_at = now
            self.bytes_delivered += f.size
            self.flows_completed += 1
            if self.metrics is not None:
                self.metrics.counter("net.flows_completed_total").inc()
                self.metrics.counter("net.bytes_delivered_total").inc(f.size)
                self.metrics.histogram("net.flow_duration_s").observe(
                    now - f.started_at)
            if self.tracer is not None:
                self.tracer.record(now, "flow.done", flow=f.name,
                                   size=f.size, duration=now - f.started_at)
            f.done.trigger(f)
