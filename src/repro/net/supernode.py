"""Supernode overlay network (Section III.D's alternative to server relay).

"Another possibility would be to have a client fulfill that role, thus
creating a supernode-based P2P network ... Supernodes are chosen from
ordinary nodes (selection mechanism is usually based on connectivity and
performance), and create an overlay network among themselves.  Ordinary
nodes must connect to a small number of supernodes and issue queries
through them."  (Skype / KaZaA / Gnutella style.)

This module implements that design:

- :func:`elect_supernodes` picks supernodes by *connectivity first*
  (publicly reachable hosts only — a NATed supernode cannot relay),
  *capacity second* (uplink speed, then host flops);
- :class:`SupernodeOverlay` attaches every ordinary node to its
  ``fanout`` nearest supernodes (deterministic, balanced round-robin over
  a capacity-sorted list) and answers relay queries: given two peers that
  need a relay, return a supernode adjacent to the downloader;
- relayed transfers then traverse ``mapper -> supernode -> reducer``
  instead of transiting the project server, removing the server's access
  link from the data path entirely.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .topology import Host


class NoSupernodeAvailable(RuntimeError):
    """No publicly reachable host can act as a relay."""


@dataclasses.dataclass(frozen=True, slots=True)
class SupernodeScore:
    """Ranking record used during election (kept for introspection)."""

    host: Host
    reachable: bool
    up_bps: float

    @property
    def sort_key(self) -> tuple:
        """Election order: reachable first, then fastest uplink, then name."""
        return (not self.reachable, -self.up_bps, self.host.name)


def elect_supernodes(hosts: _t.Sequence[Host], count: int) -> list[Host]:
    """Pick up to *count* supernodes: reachable hosts, best uplink first.

    Raises :class:`NoSupernodeAvailable` when not a single host is
    publicly reachable (the overlay cannot exist behind universal NAT).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    scores = [
        SupernodeScore(
            host=h,
            reachable=(h.nat is None or h.nat.accepts_inbound()),
            up_bps=h.spec.up_bps,
        )
        for h in hosts
    ]
    eligible = [s for s in scores if s.reachable]
    if not eligible:
        raise NoSupernodeAvailable(
            "no publicly reachable host can serve as a supernode")
    eligible.sort(key=lambda s: s.sort_key)
    return [s.host for s in eligible[:count]]


class SupernodeOverlay:
    """A two-tier overlay: supernodes + ordinary nodes attached to them."""

    def __init__(self, hosts: _t.Sequence[Host], n_supernodes: int = 3,
                 fanout: int = 2) -> None:
        """Elect supernodes from *hosts* and attach everyone else."""
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.supernodes: list[Host] = elect_supernodes(hosts, n_supernodes)
        self.fanout = min(fanout, len(self.supernodes))
        self._attachments: dict[str, list[Host]] = {}
        self._load: dict[str, int] = {s.name: 0 for s in self.supernodes}
        # Deterministic balanced attachment: walk hosts in name order and
        # attach each to the currently least-loaded supernodes.
        for host in sorted(hosts, key=lambda h: h.name):
            chosen = sorted(
                self.supernodes,
                key=lambda s: (self._load[s.name], s.name))[: self.fanout]
            self._attachments[host.name] = chosen
            for s in chosen:
                self._load[s.name] += 1

    def supernodes_of(self, host: Host) -> list[Host]:
        """The supernodes *host* is attached to (a supernode serves itself)."""
        if any(s.name == host.name for s in self.supernodes):
            return [host]
        return list(self._attachments.get(host.name, []))

    def pick_relay(self, downloader: Host, uploader: Host) -> Host:
        """Relay for a transfer ``uploader -> downloader``.

        Prefers a supernode both peers are attached to (one overlay hop),
        then the downloader's least-loaded supernode.  Offline supernodes
        are skipped; raises :class:`NoSupernodeAvailable` if none remain.
        """
        mine = [s for s in self.supernodes_of(downloader) if s.online]
        theirs = {s.name for s in self.supernodes_of(uploader)}
        shared = [s for s in mine if s.name in theirs]
        candidates = shared or mine or [s for s in self.supernodes if s.online]
        if not candidates:
            raise NoSupernodeAvailable(
                f"no online supernode to relay {uploader.name} -> "
                f"{downloader.name}")
        return min(candidates, key=lambda s: (self._load[s.name], s.name))

    def attachment_counts(self) -> dict[str, int]:
        """Ordinary-node attachments per supernode (for balance checks)."""
        return dict(self._load)
