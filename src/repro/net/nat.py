"""NAT / firewall modelling and the traversal ladder of Section III.D.

The paper's prototype did **not** solve NAT traversal; its future-work
section sketches a tiered strategy — direct connection, connection
reversal, STUN-style hole punching, and finally a TURN-style relay — the
same ladder Skype-era P2P systems used.  This module implements that ladder
as a connectivity model so the benchmarks can quantify how each rung
changes inter-client MapReduce transfer behaviour.

NAT behaviour follows the classical RFC 3489 taxonomy.  Hole-punching
success probabilities per NAT-type pair default to the measured values
reported by Ford, Srisuresh & Kegel (USENIX ATC '05) for TCP, and can be
overridden for sensitivity studies.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

import numpy as np


class NatType(enum.Enum):
    """RFC 3489-style NAT classes (plus NONE for publicly reachable hosts)."""

    NONE = "none"
    FULL_CONE = "full_cone"
    RESTRICTED = "restricted"
    PORT_RESTRICTED = "port_restricted"
    SYMMETRIC = "symmetric"
    #: Inbound-blocking firewall with no NAT (common on campus networks).
    FIREWALL = "firewall"


class TraversalMethod(enum.Enum):
    """The rungs of the traversal ladder, cheapest first."""

    DIRECT = "direct"
    REVERSAL = "reversal"
    HOLE_PUNCH = "hole_punch"
    RELAY = "relay"


@dataclasses.dataclass(frozen=True, slots=True)
class NatBox:
    """NAT/firewall in front of a host."""

    nat_type: NatType = NatType.NONE
    #: Whether the box also drops unsolicited inbound (most consumer NATs do).
    blocks_inbound: bool = True

    def accepts_inbound(self) -> bool:
        """Can an unsolicited inbound connection reach the host directly?"""
        return self.nat_type is NatType.NONE and not self.blocks_inbound


PUBLIC = NatBox(nat_type=NatType.NONE, blocks_inbound=False)


#: TCP hole-punch success probability for (initiator NAT, responder NAT).
#: Symmetric NATs defeat punching because the external port is
#: per-destination; everything else mostly works (Ford et al. report ~64%
#: average for TCP, dominated by symmetric/port-restricted combinations).
DEFAULT_PUNCH_SUCCESS: dict[tuple[NatType, NatType], float] = {}


def _fill_default_punch_matrix() -> None:
    easy = {NatType.NONE, NatType.FULL_CONE, NatType.FIREWALL}
    mid = {NatType.RESTRICTED, NatType.PORT_RESTRICTED}
    for a in NatType:
        for b in NatType:
            if a in easy and b in easy:
                p = 0.95
            elif NatType.SYMMETRIC in (a, b):
                p = 0.05 if (a in easy or b in easy) else 0.0
            elif a in mid and b in mid:
                p = 0.75
            else:
                p = 0.85
            DEFAULT_PUNCH_SUCCESS[(a, b)] = p


_fill_default_punch_matrix()


@dataclasses.dataclass(frozen=True, slots=True)
class TraversalOutcome:
    """Result of attempting to reach a serving peer."""

    ok: bool
    method: TraversalMethod | None
    #: Connection-setup delay in seconds (on top of transfer time).
    setup_delay: float
    #: True when the payload must be relayed through a third party.
    relayed: bool = False


@dataclasses.dataclass(slots=True)
class TraversalConfig:
    """Tunable costs and availability of each rung."""

    #: Extra rendezvous round-trips charged per rung attempted.
    direct_setup_s: float = 0.1
    reversal_setup_s: float = 1.0
    hole_punch_setup_s: float = 3.0
    relay_setup_s: float = 2.0
    enable_reversal: bool = True
    enable_hole_punch: bool = True
    enable_relay: bool = True
    punch_success: _t.Mapping[tuple[NatType, NatType], float] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_PUNCH_SUCCESS)
    )


class ConnectivityPolicy:
    """Decides whether and how *client* can download from *server* peer.

    ``server`` here is the peer holding the data (a mapper serving its map
    outputs); ``client`` is the peer initiating the download (a reducer).
    """

    def __init__(self, config: TraversalConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        """Traversal policy with its own rng for probabilistic outcomes."""
        self.config = config or TraversalConfig()
        self.rng = rng or np.random.default_rng(0)
        self.attempts: list[tuple[str, str, TraversalOutcome]] = []

    def establish(self, client_nat: NatBox | None, server_nat: NatBox | None,
                  client_name: str = "?", server_name: str = "?") -> TraversalOutcome:
        """Walk the ladder; returns the first rung that succeeds."""
        cfg = self.config
        c = client_nat or PUBLIC
        s = server_nat or PUBLIC
        outcome = self._try_ladder(c, s)
        self.attempts.append((client_name, server_name, outcome))
        return outcome

    def _try_ladder(self, c: NatBox, s: NatBox) -> TraversalOutcome:
        cfg = self.config
        cumulative = 0.0
        # Rung 1: direct — server must accept unsolicited inbound.
        cumulative += cfg.direct_setup_s
        if s.accepts_inbound():
            return TraversalOutcome(True, TraversalMethod.DIRECT, cumulative)
        # Rung 2: connection reversal — works when the *client* is publicly
        # reachable: the NATed server connects out to it (rendezvous via the
        # project server tells it to).
        if cfg.enable_reversal:
            cumulative += cfg.reversal_setup_s
            if c.accepts_inbound():
                return TraversalOutcome(True, TraversalMethod.REVERSAL, cumulative)
        # Rung 3: simultaneous-open hole punching, probabilistic by NAT pair.
        if cfg.enable_hole_punch:
            cumulative += cfg.hole_punch_setup_s
            p = cfg.punch_success.get((c.nat_type, s.nat_type), 0.0)
            if self.rng.random() < p:
                return TraversalOutcome(True, TraversalMethod.HOLE_PUNCH, cumulative)
        # Rung 4: TURN-style relay — always works if enabled, but the payload
        # transits the relay (the caller must route bytes accordingly).
        if cfg.enable_relay:
            cumulative += cfg.relay_setup_s
            return TraversalOutcome(True, TraversalMethod.RELAY, cumulative,
                                    relayed=True)
        return TraversalOutcome(False, None, cumulative)

    def method_counts(self) -> dict[str, int]:
        """How many establishments used each method (plus failures)."""
        out: dict[str, int] = {}
        for _c, _s, o in self.attempts:
            key = o.method.value if o.method else "failed"
            out[key] = out.get(key, 0) + 1
        return out


def sample_nat_population(rng: np.random.Generator, n: int,
                          mix: _t.Mapping[NatType, float] | None = None
                          ) -> list[NatBox]:
    """Draw *n* NAT boxes from a population *mix* (probabilities sum to 1).

    The default mix approximates 2011 volunteer populations: ~20% public,
    the rest behind consumer NATs with symmetric NATs a small minority.
    """
    if mix is None:
        mix = {
            NatType.NONE: 0.20,
            NatType.FULL_CONE: 0.15,
            NatType.RESTRICTED: 0.20,
            NatType.PORT_RESTRICTED: 0.30,
            NatType.SYMMETRIC: 0.10,
            NatType.FIREWALL: 0.05,
        }
    types = list(mix.keys())
    probs = np.array([mix[t] for t in types], dtype=float)
    if probs.min() < 0:
        raise ValueError("mix probabilities must be non-negative")
    total = probs.sum()
    if not np.isclose(total, 1.0):
        raise ValueError(f"mix probabilities must sum to 1, got {total}")
    draws = rng.choice(len(types), size=n, p=probs / total)
    out = []
    for i in draws:
        t = types[int(i)]
        out.append(PUBLIC if t is NatType.NONE else NatBox(nat_type=t))
    return out
