"""Peer-to-peer transfer machinery: connection limits, relays, failures.

BOINC-MR clients keep "a threshold for a maximum number of inter-client
connections, so as to not overload the network" (Section III.C).  This
module provides the counting semaphore that enforces it, plus the
``peer_download`` process that performs one inter-client download end to
end: traversal establishment (see :mod:`repro.net.nat`), connection-slot
acquisition at both endpoints, the bulk flow itself (optionally via a
relay), and probabilistic mid-transfer failure injection.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..sim import Event, Simulator
from .flows import FlowError
from .nat import ConnectivityPolicy, TraversalMethod, TraversalOutcome
from .topology import Host, HostOffline, Network


class TransferFailed(RuntimeError):
    """An inter-client download could not be completed."""

    def __init__(self, reason: str, outcome: TraversalOutcome | None = None) -> None:
        """Failure with a reason and, for NAT failures, the traversal outcome."""
        super().__init__(reason)
        self.reason = reason
        self.outcome = outcome


class SimSemaphore:
    """FIFO counting semaphore for simulation processes.

    ``acquire`` returns an event to ``yield`` on; ``release`` wakes the
    longest-waiting acquirer.  Releases are explicit — pair them in a
    try/finally inside the owning process.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        """A counting semaphore with *capacity* slots on *sim*'s clock."""
        if capacity < 1:
            raise ValueError("semaphore capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: list[Event] = []
        #: Accounting counters; ``granted_total - released_total == in_use``
        #: is an invariant the :class:`repro.faults.RunAuditor` checks.
        self.granted_total = 0
        self.released_total = 0
        self.cancelled_total = 0

    def acquire(self) -> Event:
        """Request a slot; the returned event triggers when granted."""
        ev = self.sim.event(name=f"sem:{self.name}")
        if self.in_use < self.capacity:
            self.in_use += 1
            self.granted_total += 1
            ev.trigger()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot, handing it straight to the next waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError(f"semaphore {self.name!r} released below zero")
        self.released_total += 1
        if self._waiters:
            # Hand the slot straight to the next waiter; in_use is unchanged.
            self.granted_total += 1
            self._waiters.pop(0).trigger()
        else:
            self.in_use -= 1

    def cancel(self, grant: Event) -> bool:
        """Withdraw a still-queued ``acquire`` from the wait list.

        Returns False when *grant* is not waiting (already granted, or
        never issued by this semaphore) — the caller then owns a slot and
        must :meth:`release` it instead.
        """
        try:
            self._waiters.remove(grant)
        except ValueError:
            return False
        self.cancelled_total += 1
        return True

    def settle(self, grant: Event) -> None:
        """Unwind an ``acquire`` whatever state it reached.

        The one safe call for a ``finally`` block: releases the slot when
        *grant* was granted (even by a same-instant hand-off to a process
        that was just interrupted) and withdraws it from the wait queue
        when it never was — so a process killed between ``acquire`` and
        the grant leaves no phantom waiter to swallow a future slot.
        """
        if grant.triggered:
            self.release()
        else:
            self.cancel(grant)

    @property
    def balance(self) -> int:
        """Slots granted and not yet released (must equal ``in_use``)."""
        return self.granted_total - self.released_total

    @property
    def waiting(self) -> int:
        """How many acquirers are queued for a slot."""
        return len(self._waiters)


class TransferEndpoint:
    """Per-host upload/download connection-slot accounting."""

    def __init__(self, sim: Simulator, host: Host,
                 max_upload_conns: int = 8, max_download_conns: int = 8) -> None:
        """Connection-slot semaphores for one host's uploads/downloads."""
        self.host = host
        self.upload_slots = SimSemaphore(sim, max_upload_conns,
                                         name=f"{host.name}.up")
        self.download_slots = SimSemaphore(sim, max_download_conns,
                                           name=f"{host.name}.down")
        #: Fault injection: while True, every payload served from this
        #: endpoint arrives corrupt and fails the downloader's checksum.
        self.corrupt_serves = False


@dataclasses.dataclass(slots=True)
class TransferRecord:
    """Outcome of one peer download attempt."""

    ok: bool
    method: TraversalMethod | None
    size: float
    started_at: float
    finished_at: float
    relayed: bool = False
    failure_reason: str | None = None
    #: The serving endpoint corrupted the payload (fault injection); the
    #: downloader's checksum validation will reject this copy.
    corrupted: bool = False

    @property
    def duration(self) -> float:
        """Wall-clock (sim) seconds the transfer took."""
        return self.finished_at - self.started_at


def peer_download(
    sim: Simulator,
    net: Network,
    policy: ConnectivityPolicy,
    src: TransferEndpoint,
    dst: TransferEndpoint,
    size: float,
    relay: Host | None = None,
    failure_rate: float = 0.0,
    rng: np.random.Generator | None = None,
    label: str = "",
) -> _t.Generator:
    """Process body: download *size* bytes from ``src.host`` to ``dst.host``.

    Returns a :class:`TransferRecord`; raises :class:`TransferFailed` on
    traversal failure, endpoint churn, or injected failure.  Run it with
    ``sim.process(peer_download(...))``.
    """
    started = sim.now
    outcome = policy.establish(dst.host.nat, src.host.nat,
                               client_name=dst.host.name,
                               server_name=src.host.name)
    if not outcome.ok:
        raise TransferFailed(
            f"no connectivity {dst.host.name} <- {src.host.name}", outcome)
    if outcome.relayed and relay is None:
        raise TransferFailed(
            f"relay required for {dst.host.name} <- {src.host.name} "
            "but no relay host configured", outcome)
    if outcome.setup_delay > 0:
        yield sim.timeout(outcome.setup_delay)

    up = src.upload_slots.acquire()
    down = dst.download_slots.acquire()
    flow = None
    try:
        yield sim.all_of([up, down])
        rtt = net.rtt(src.host, dst.host)
        if rtt > 0:
            yield sim.timeout(rtt)
        extra = ()
        if outcome.relayed:
            assert relay is not None
            extra = (relay.downlink, relay.uplink)
        try:
            flow = net.transfer(src.host, dst.host, size,
                                label=label or f"p2p:{src.host.name}->{dst.host.name}",
                                extra_links=extra)
        except HostOffline as exc:
            raise TransferFailed(str(exc), outcome) from exc

        if failure_rate > 0 and rng is not None and rng.random() < failure_rate:
            # Kill the transfer partway through: abort after a random
            # fraction of its nominal duration.
            frac = float(rng.uniform(0.05, 0.95))
            nominal = size / max(flow.rate, 1.0)
            sim.schedule(frac * nominal, _abort_if_running, net, flow)
        try:
            yield flow.done
        except FlowError as exc:
            raise TransferFailed(str(exc), outcome) from exc
    finally:
        # An interrupt (churn kill) can land at any yield above.  The flow
        # must not keep consuming bandwidth unobserved, and the connection
        # slots must come back whether the grants fired or are still queued.
        if flow is not None and not flow.finished:
            net.flownet.abort_flow(flow, reason="peer download cancelled")
        src.upload_slots.settle(up)
        dst.download_slots.settle(down)

    return TransferRecord(ok=True, method=outcome.method, size=size,
                          started_at=started, finished_at=sim.now,
                          relayed=outcome.relayed,
                          corrupted=getattr(src, "corrupt_serves", False))


def _abort_if_running(net: Network, flow) -> None:
    if not flow.finished:
        net.flownet.abort_flow(flow, reason="injected transfer failure")
