"""Hosts, access links, and the network facade.

The testbed in the paper (UT Austin CIAS Emulab) is a switched LAN where
every machine has 100 Mbit interfaces; a volunteer deployment is a star of
asymmetric DSL/cable access links around well-provisioned project servers.
Both are captured by giving each :class:`Host` an uplink and a downlink and
letting :class:`Network` route every transfer through the endpoints' access
links (a non-blocking core, which is accurate for both Emulab's switch and
the Internet backbone relative to last-mile links).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..sim import Event, Simulator, Tracer
from .flows import Flow, FlowNetwork, Link

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from .nat import NatBox


@dataclasses.dataclass(frozen=True, slots=True)
class LinkSpec:
    """Access-link speeds in bits/s (down, up) plus one-way latency."""

    down_bps: float = 100e6
    up_bps: float = 100e6
    latency_s: float = 0.0005  # LAN-ish by default

    def __post_init__(self) -> None:
        if self.down_bps <= 0 or self.up_bps <= 0:
            raise ValueError("link speeds must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")


#: Emulab pc class from the paper: 100 Mbit full duplex, sub-ms switch latency.
EMULAB_LINK = LinkSpec(down_bps=100e6, up_bps=100e6, latency_s=0.0005)
#: A typical 2011 home broadband profile (16/1 Mbit ADSL2+, 20 ms).
ADSL_LINK = LinkSpec(down_bps=16e6, up_bps=1e6, latency_s=0.020)
#: A typical 2011 cable profile (50/5 Mbit, 15 ms).
CABLE_LINK = LinkSpec(down_bps=50e6, up_bps=5e6, latency_s=0.015)
#: University / project server connectivity (1 Gbit symmetric).
SERVER_LINK = LinkSpec(down_bps=1e9, up_bps=1e9, latency_s=0.002)


class Host:
    """A network endpoint with its own access link and optional NAT box."""

    def __init__(self, name: str, spec: LinkSpec,
                 nat: "NatBox | None" = None) -> None:
        """A host with dedicated up/down access links (and optional NAT)."""
        self.name = name
        self.spec = spec
        self.nat = nat
        self.uplink = Link(f"{name}.up", spec.up_bps)
        self.downlink = Link(f"{name}.down", spec.down_bps)
        #: Set False to simulate the host going offline (churn).
        self.online = True

    @property
    def behind_nat(self) -> bool:
        """True when this host sits behind a real (non-NONE) NAT box."""
        from .nat import NatType

        return self.nat is not None and self.nat.nat_type is not NatType.NONE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Host {self.name}>"


class HostOffline(RuntimeError):
    """A transfer was attempted to or from an offline host."""


class NetworkPartitioned(HostOffline):
    """A transfer was attempted across an active network partition.

    Subclasses :class:`HostOffline` so every existing retry/fallback path
    treats a partition exactly like the endpoint being unreachable — which
    is what it looks like from either side.
    """


class Network:
    """Facade over :class:`FlowNetwork` exposing host-to-host transfers."""

    def __init__(self, sim: Simulator, tracer: Tracer | None = None,
                 metrics: "MetricsRegistry | None" = None,
                 allocator: str = "incremental") -> None:
        """An empty network over *sim*'s clock with the chosen allocator."""
        self.sim = sim
        self.tracer = tracer
        self.flownet = FlowNetwork(sim, tracer=tracer, metrics=metrics,
                                   allocator=allocator)
        self.hosts: dict[str, Host] = {}
        self._host_by_link: dict[Link, Host] = {}
        #: Active partition: host name -> group id.  Hosts not listed form
        #: an implicit group of their own.  ``None`` = no partition.
        self._partition: dict[str, int] | None = None

    # -- construction -----------------------------------------------------------
    def add_host(self, name: str, spec: LinkSpec = EMULAB_LINK,
                 nat: "NatBox | None" = None) -> Host:
        """Register a host; names must be unique."""
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(name, spec, nat=nat)
        self.hosts[name] = host
        self._host_by_link[host.uplink] = host
        self._host_by_link[host.downlink] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name (KeyError if absent)."""
        return self.hosts[name]

    # -- transfers ----------------------------------------------------------------
    def latency(self, src: Host, dst: Host) -> float:
        """One-way latency between two hosts (sum of access latencies)."""
        return src.spec.latency_s + dst.spec.latency_s

    def rtt(self, src: Host, dst: Host) -> float:
        """Round-trip time between two hosts."""
        return 2.0 * self.latency(src, dst)

    def transfer(self, src: Host, dst: Host, size_bytes: float,
                 label: str = "", max_rate: float | None = None,
                 background: bool = False,
                 extra_links: _t.Sequence[Link] = ()) -> Flow:
        """Start a bulk transfer ``src -> dst``; returns the :class:`Flow`.

        The flow traverses ``src.uplink`` and ``dst.downlink`` (plus any
        *extra_links*, e.g. a shared server trunk).  Raises
        :class:`HostOffline` if either endpoint is offline at start time;
        hosts going offline mid-flow are handled by the caller aborting the
        flow (see :meth:`drop_host_flows`).
        """
        if not src.online:
            raise HostOffline(f"source host {src.name} is offline")
        if not dst.online:
            raise HostOffline(f"destination host {dst.name} is offline")
        if not self.reachable(src, dst):
            raise NetworkPartitioned(
                f"{src.name} and {dst.name} are on opposite sides of a "
                "network partition")
        name = label or f"{src.name}->{dst.name}"
        links = [src.uplink, dst.downlink, *extra_links]
        return self.flownet.start_flow(name, links, size_bytes,
                                       max_rate=max_rate, background=background)

    def drop_host_flows(self, host: Host, reason: str = "host offline") -> int:
        """Abort every active flow touching *host*; returns how many."""
        victims = self.flownet.flows_using((host.uplink, host.downlink))
        for f in victims:
            self.flownet.abort_flow(f, reason=reason)
        return len(victims)

    def set_online(self, host: Host, online: bool) -> None:
        """Toggle a host's availability, killing its flows on departure."""
        if host.online and not online:
            host.online = False
            self.drop_host_flows(host)
        else:
            host.online = online

    # -- partitions ----------------------------------------------------------------
    def flow_hosts(self, flow: Flow) -> list[Host]:
        """Every registered host whose access link *flow* traverses."""
        out: list[Host] = []
        for link in flow.links:
            host = self._host_by_link.get(link)
            if host is not None and host not in out:
                out.append(host)
        return out

    def reachable(self, a: Host, b: Host) -> bool:
        """Can *a* and *b* currently exchange traffic (partition-wise)?"""
        if self._partition is None:
            return True
        return (self._partition.get(a.name, -1)
                == self._partition.get(b.name, -1))

    def set_partition(self, groups: _t.Sequence[_t.Sequence[str]]) -> int:
        """Partition the network into *groups* of host names.

        Hosts in different groups cannot start transfers to each other;
        hosts not named in any group form one implicit group together (so
        ``[["a", "b"]]`` isolates that island from the rest of the world).
        Active flows crossing a boundary are aborted.  Returns how many
        flows were dropped.  Replaces any previous partition.
        """
        mapping: dict[str, int] = {}
        for gid, names in enumerate(groups):
            for name in names:
                if name not in self.hosts:
                    raise ValueError(f"unknown host {name!r} in partition")
                mapping[name] = gid
        self._partition = mapping
        victims = []
        for flow in list(self.flownet.active):
            touched = self.flow_hosts(flow)
            sides = {mapping.get(h.name, -1) for h in touched}
            if len(sides) > 1:
                victims.append(flow)
        for flow in victims:
            self.flownet.abort_flow(flow, reason="network partition")
        return len(victims)

    def clear_partition(self) -> None:
        """Heal the partition; all hosts can reach each other again."""
        self._partition = None

    # -- convenience ----------------------------------------------------------------
    def transfer_and_wait(self, src: Host, dst: Host, size_bytes: float,
                          **kwargs: _t.Any) -> Event:
        """The flow's completion event (for direct use in ``yield``)."""
        return self.transfer(src, dst, size_bytes, **kwargs).done
