"""Network substrate: flow-level bandwidth sharing, hosts, NAT traversal.

Public surface:

- :class:`Network`, :class:`Host`, :class:`LinkSpec` (+ canned profiles
  ``EMULAB_LINK``, ``ADSL_LINK``, ``CABLE_LINK``, ``SERVER_LINK``);
- :class:`FlowNetwork`, :class:`Flow`, :class:`Link`, :func:`maxmin_rates`;
- allocator strategies: the :class:`RateAllocator` protocol, the
  :class:`FullAllocator` / :class:`IncrementalAllocator` implementations,
  and the :data:`ALLOCATORS` registry behind ``FlowNetwork(allocator=...)``;
- NAT models: :class:`NatBox`, :class:`NatType`, :class:`ConnectivityPolicy`,
  :class:`TraversalConfig`, :func:`sample_nat_population`;
- transfer machinery: :class:`TransferEndpoint`, :func:`peer_download`,
  :class:`SimSemaphore`.
"""

from .flows import (
    ALLOCATORS,
    Flow,
    FlowError,
    FlowNetwork,
    FullAllocator,
    IncrementalAllocator,
    Link,
    RateAllocator,
    maxmin_rates,
)
from .nat import (
    DEFAULT_PUNCH_SUCCESS,
    PUBLIC,
    ConnectivityPolicy,
    NatBox,
    NatType,
    TraversalConfig,
    TraversalMethod,
    TraversalOutcome,
    sample_nat_population,
)
from .supernode import (
    NoSupernodeAvailable,
    SupernodeOverlay,
    SupernodeScore,
    elect_supernodes,
)
from .topology import (
    ADSL_LINK,
    CABLE_LINK,
    EMULAB_LINK,
    SERVER_LINK,
    Host,
    HostOffline,
    LinkSpec,
    Network,
    NetworkPartitioned,
)
from .transfer import (
    SimSemaphore,
    TransferEndpoint,
    TransferFailed,
    TransferRecord,
    peer_download,
)

__all__ = [
    "Flow",
    "FlowError",
    "FlowNetwork",
    "Link",
    "maxmin_rates",
    "RateAllocator",
    "FullAllocator",
    "IncrementalAllocator",
    "ALLOCATORS",
    "Network",
    "Host",
    "HostOffline",
    "NetworkPartitioned",
    "LinkSpec",
    "EMULAB_LINK",
    "ADSL_LINK",
    "CABLE_LINK",
    "SERVER_LINK",
    "NatBox",
    "NatType",
    "PUBLIC",
    "ConnectivityPolicy",
    "TraversalConfig",
    "TraversalMethod",
    "TraversalOutcome",
    "DEFAULT_PUNCH_SUCCESS",
    "sample_nat_population",
    "SupernodeOverlay",
    "SupernodeScore",
    "NoSupernodeAvailable",
    "elect_supernodes",
    "SimSemaphore",
    "TransferEndpoint",
    "TransferFailed",
    "TransferRecord",
    "peer_download",
]
