"""Workload generators: synthetic Zipf text corpora and document tagging."""

from .corpus import generate_corpus, make_vocabulary, tag_documents, zipf_weights

__all__ = ["generate_corpus", "make_vocabulary", "tag_documents", "zipf_weights"]
