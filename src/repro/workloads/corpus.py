"""Synthetic text corpora for the word-count / grep / index examples.

The paper used an unspecified 1 GB text file; natural-language word
frequencies are famously Zipfian, and word-count behaviour (distinct-word
counts, intermediate data skew across reducers) depends on that shape, so
the generator draws words from a Zipf(s) distribution over a synthetic
vocabulary.  Fully deterministic under the seed.
"""

from __future__ import annotations

import numpy as np

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def make_vocabulary(size: int, rng: np.random.Generator) -> list[bytes]:
    """Pronounceable unique pseudo-words, deterministic under *rng*."""
    if size < 1:
        raise ValueError("vocabulary size must be >= 1")
    vocab: list[bytes] = []
    seen: set[bytes] = set()
    while len(vocab) < size:
        n_syll = int(rng.integers(1, 4))
        word = "".join(
            _CONSONANTS[int(rng.integers(len(_CONSONANTS)))]
            + _VOWELS[int(rng.integers(len(_VOWELS)))]
            for _ in range(n_syll)
        ).encode()
        if word not in seen:
            seen.add(word)
            vocab.append(word)
    return vocab


def zipf_weights(n: int, s: float = 1.1) -> np.ndarray:
    """Normalised Zipf rank weights (rank 1 most frequent)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if s <= 0:
        raise ValueError("s must be positive")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    return w / w.sum()


def generate_corpus(target_bytes: int, *, vocabulary_size: int = 2000,
                    zipf_s: float = 1.1, words_per_line: int = 12,
                    seed: int = 0) -> bytes:
    """A Zipf-distributed text corpus of roughly *target_bytes* bytes.

    Lines have ``words_per_line`` space-separated words; generation stops
    at the first line boundary at or past the target, so the result is
    within one line of the requested size.
    """
    if target_bytes < 1:
        raise ValueError("target_bytes must be >= 1")
    rng = np.random.default_rng(seed)
    vocab = make_vocabulary(vocabulary_size, rng)
    weights = zipf_weights(vocabulary_size, zipf_s)
    out = bytearray()
    # Draw in batches to amortise RNG overhead.
    batch = max(1024, words_per_line * 64)
    line: list[bytes] = []
    while len(out) < target_bytes:
        for idx in rng.choice(vocabulary_size, size=batch, p=weights):
            line.append(vocab[int(idx)])
            if len(line) == words_per_line:
                out += b" ".join(line) + b"\n"
                line.clear()
                if len(out) >= target_bytes:
                    break
    return bytes(out)


def tag_documents(corpus: bytes, n_docs: int) -> bytes:
    """Rewrite a corpus as ``doc_id<TAB>line`` records for inverted-index runs."""
    if n_docs < 1:
        raise ValueError("n_docs must be >= 1")
    lines = corpus.splitlines()
    out = bytearray()
    for i, line in enumerate(lines):
        doc = f"doc{(i * n_docs) // max(len(lines), 1):04d}".encode()
        out += doc + b"\t" + line + b"\n"
    return bytes(out)
