"""Real-bytes file store behind the gateway's data endpoints.

The live counterpart of :class:`repro.boinc.dataserver.DataServer`: both
subclass :class:`repro.boinc.dataserver.FileCatalogue`, so publish /
refusal / accounting semantics are shared, but where the simulated store
moves :class:`~repro.boinc.model.FileRef` *sizes* through the flow
network, this one holds the actual payload bytes served over live HTTP.

Every blob carries a CRC32 checksum in the wire format of
:func:`repro.gateway.protocol.checksum` (``crc32:<8 hex digits>``); the
gateway sends it in the ``X-Checksum`` response header on downloads and
verifies it on uploads, mirroring the checksum-validated transfers of the
simulated client (:func:`repro.boinc.client.download_with_retry`).
"""

from __future__ import annotations

from ..boinc.dataserver import FileCatalogue, FileMissing, ServerUnavailable
from ..boinc.model import FileRef
from .protocol import checksum


class BlobStore(FileCatalogue):
    """In-memory named-blob store with checksums (the live data server)."""

    def __init__(self) -> None:
        """An empty, available blob store."""
        super().__init__()
        self._blobs: dict[str, bytes] = {}
        self.checksums: dict[str, str] = {}

    # -- ingest ---------------------------------------------------------------
    def put(self, name: str, data: bytes) -> FileRef:
        """Store *data* under *name* (idempotent; re-put overwrites).

        Replicated tasks produce byte-identical outputs under the same
        name, so a second replica's upload is a no-op rewrite.
        """
        ref = FileRef(name=name, size=float(len(data)))
        self._blobs[name] = data
        self.checksums[name] = checksum(data)
        self.publish(ref)
        self.bytes_received += len(data)
        return ref

    # -- serve ----------------------------------------------------------------
    def fetch(self, name: str) -> bytes:
        """Serve the bytes of *name*.

        Raises :class:`~repro.boinc.dataserver.ServerUnavailable` when the
        store is refusing (503 on the wire) and
        :class:`~repro.boinc.dataserver.FileMissing` when unpublished (404).
        """
        if not self.available:
            self.refusals += 1
            raise ServerUnavailable(f"blob store refused download of {name!r}")
        if name not in self.files:
            raise FileMissing(name)
        data = self._blobs[name]
        self.bytes_served += len(data)
        return data

    def checksum_of(self, name: str) -> str:
        """The stored wire checksum of blob *name* (KeyError when absent)."""
        return self.checksums[name]

    def __len__(self) -> int:
        """Number of stored blobs."""
        return len(self._blobs)
