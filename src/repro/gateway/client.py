"""Blocking gateway client + the real-process volunteer loop.

:class:`GatewayClient` is the live transport that swaps in for the
simulated comm gate: the same pull-protocol verbs the simulated client
performs against :class:`repro.boinc.server.ProjectServer` — register,
scheduler RPC with piggybacked reports, checksum-verified download,
upload — issued as real HTTP over ``http.client``.  Retry semantics
mirror the paper's client: a 503/connection failure triggers exponential
backoff with jitter, honouring the server's ``Retry-After`` floor.

:func:`run_volunteer` is the BOINC-MR client main loop on a real OS
process: poll for work, download inputs, run the map/reduce task with
the *real* :class:`repro.runtime.engine.LocalRunner`, upload outputs,
and report at the next RPC — the report-at-next-RPC split the simulator
models is preserved on the wire.
"""

from __future__ import annotations

import dataclasses
import http.client
import pickle
import random
import time
import typing as _t

from ..runtime.engine import LocalRunner
from . import protocol
from .jobs import (
    partition_blob_name,
    reduce_blob_name,
    resolve_app,
)


class GatewayError(RuntimeError):
    """A non-2xx gateway reply, carrying the wire error code."""

    def __init__(self, status: int, code: str, detail: str,
                 retry_after_s: float = 0.0) -> None:
        """An error reply with *status* and protocol error *code*."""
        super().__init__(f"{status} {code}: {detail}")
        self.status = status
        self.code = code
        self.detail = detail
        self.retry_after_s = retry_after_s

    @property
    def retryable(self) -> bool:
        """True for refusals worth retrying (503 unavailable)."""
        return self.status == 503


@dataclasses.dataclass(slots=True)
class BackoffPolicy:
    """Exponential backoff with jitter (the paper's client retry shape)."""

    base_s: float = 0.05
    cap_s: float = 2.0
    factor: float = 2.0

    def delay(self, attempt: int, floor_s: float = 0.0,
              rng: random.Random | None = None) -> float:
        """Backoff before retry *attempt* (0-based), at least *floor_s*."""
        span = min(self.cap_s, self.base_s * (self.factor ** attempt))
        jitter = (rng or random).uniform(0.5, 1.0)
        return max(floor_s, span * jitter)


class GatewayClient:
    """Blocking HTTP client speaking :mod:`repro.gateway.protocol`."""

    def __init__(self, address: str, timeout_s: float = 10.0,
                 retries: int = 6,
                 backoff: BackoffPolicy | None = None,
                 rng: random.Random | None = None) -> None:
        """A client for the gateway at ``host:port`` *address*."""
        host, _, port = address.partition(":")
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff = backoff or BackoffPolicy()
        self.rng = rng or random.Random()
        self._conn: http.client.HTTPConnection | None = None
        #: Diagnostics: total retries performed across all requests.
        self.retry_count = 0

    # -- transport -------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
        return self._conn

    def close(self) -> None:
        """Drop the persistent connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _once(self, method: str, path: str, body: bytes,
              headers: dict[str, str]) -> tuple[int, dict[str, str], bytes]:
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
            return resp.status, {k.lower(): v for k, v in
                                 resp.getheaders()}, payload
        except (http.client.HTTPException, ConnectionError, OSError):
            self.close()
            raise

    def request(self, method: str, path: str, body: bytes = b"",
                headers: dict[str, str] | None = None
                ) -> tuple[dict[str, str], bytes]:
        """One request with retry-on-refusal; returns (headers, body).

        Retries connection failures and 503 refusals with exponential
        backoff + jitter (honouring ``Retry-After``); any other non-2xx
        raises :class:`GatewayError` immediately.
        """
        headers = dict(headers or {})
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                status, resp_headers, payload = self._once(
                    method, path, body, headers)
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                last = exc
                self.retry_count += 1
                time.sleep(self.backoff.delay(attempt, rng=self.rng))
                continue
            if status < 400:
                return resp_headers, payload
            err = self._decode_error(status, resp_headers, payload)
            if not err.retryable or attempt == self.retries:
                raise err
            last = err
            self.retry_count += 1
            time.sleep(self.backoff.delay(attempt,
                                          floor_s=err.retry_after_s,
                                          rng=self.rng))
        raise GatewayError(503, "unavailable",
                           f"retries exhausted: {last}")

    @staticmethod
    def _decode_error(status: int, headers: dict[str, str],
                      payload: bytes) -> GatewayError:
        try:
            doc = protocol.loads(payload)
            return GatewayError(status, doc.get("error", "unknown"),
                                doc.get("detail", ""),
                                float(doc.get("retry_after_s", 0.0)))
        except (ValueError, AttributeError):
            return GatewayError(status, "unknown",
                                payload[:200].decode("latin-1"))

    def _json(self, method: str, path: str,
              payload: _t.Any = None) -> _t.Any:
        body = protocol.dumps(payload) if payload is not None else b""
        _, data = self.request(method, path, body,
                               {"Content-Type": "application/json"})
        return protocol.loads(data)

    # -- protocol verbs --------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def status(self) -> dict:
        """``GET /status``."""
        return self._json("GET", "/status")

    def register(self, name: str, flops: float = 1e9,
                 supports_mr: bool = True) -> int:
        """Register (idempotently) and return the host id."""
        reply = self._json("POST", "/rpc/register", {
            "name": name, "flops": flops, "supports_mr": supports_mr})
        return reply["host_id"]

    def scheduler_rpc(self, host_id: int, work_req_s: float,
                      reports: list[dict] | None = None) -> dict:
        """One scheduler RPC: piggyback *reports*, ask for work."""
        return self._json("POST", "/rpc/scheduler", {
            "host_id": host_id, "work_req_s": work_req_s,
            "reports": reports or []})

    def download(self, name: str) -> bytes:
        """Fetch blob *name*, verifying the ``X-Checksum`` header."""
        headers, data = self.request("GET", f"/data/{name}")
        claimed = headers.get(protocol.CHECKSUM_HEADER.lower())
        if claimed is not None and claimed != protocol.checksum(data):
            raise GatewayError(200, "checksum_mismatch",
                               f"download {name!r} corrupt in transit")
        return data

    def upload(self, result_id: int, name: str, data: bytes) -> dict:
        """Upload one output blob for a leased result."""
        _, payload = self.request(
            "POST", f"/upload/{result_id}/{name}", data,
            {"Content-Type": "application/octet-stream",
             protocol.CHECKSUM_HEADER: protocol.checksum(data)})
        return protocol.loads(payload)

    def submit_job(self, name: str, app: str, corpus_size: int,
                   corpus_seed: int, n_maps: int, n_reducers: int,
                   replication: int = 1, quorum: int = 1) -> dict:
        """``POST /jobs`` with a server-generated corpus spec."""
        return self._json("POST", "/jobs", {
            "name": name, "app": app, "n_maps": n_maps,
            "n_reducers": n_reducers, "replication": replication,
            "quorum": quorum,
            "corpus": {"size": corpus_size, "seed": corpus_seed}})

    def job_status(self, name: str) -> dict:
        """``GET /jobs/{name}``."""
        return self._json("GET", f"/jobs/{name}")

    def job_output(self, name: str) -> bytes:
        """Reclaim the merged output payload of a finished job."""
        headers, data = self.request("GET", f"/jobs/{name}/output")
        claimed = headers.get(protocol.CHECKSUM_HEADER.lower())
        if claimed is not None and claimed != protocol.checksum(data):
            raise GatewayError(200, "checksum_mismatch",
                               f"output of {name!r} corrupt in transit")
        return data


def execute_task(client: GatewayClient, task: dict) -> dict:
    """Run one wire ``Task`` with the real engine; upload its outputs.

    Returns the wire ``Report`` to piggyback on the next scheduler RPC.
    The digest convention is shared with the validator: CRC32 over the
    concatenated output blobs in partition order, so byte-identical
    replica outputs — guaranteed by the deterministic engine — produce
    equal digests.
    """
    t0 = time.perf_counter()
    job, kind, index = task["job"], task["kind"], task["index"]
    runner = LocalRunner(resolve_app(task["app"]),
                         n_maps=max(task["n_maps"] or 1, 1),
                         n_reducers=max(task["n_reducers"] or 1, 1))
    outputs: list[tuple[str, bytes]] = []
    if kind == "map":
        chunk = client.download(task["input_files"][0])
        _report, blobs = runner.run_map_task(index, chunk)
        outputs = [(partition_blob_name(job, index, r), blobs[r])
                   for r in sorted(blobs)]
    elif kind == "reduce":
        blobs = [client.download(name) for name in task["input_files"]]
        _report, output = runner.run_reduce_task(index, blobs)
        outputs = [(reduce_blob_name(job, index), pickle.dumps(output))]
    else:
        raise ValueError(f"task {task['result_id']} has no MR kind")
    for name, data in outputs:
        client.upload(task["result_id"], name, data)
    digest = protocol.checksum(b"".join(data for _, data in outputs))
    return {
        "result_id": task["result_id"], "success": True,
        "elapsed_s": time.perf_counter() - t0, "digest": digest,
        "output_files": [{"name": name, "size": len(data)}
                         for name, data in outputs],
    }


@dataclasses.dataclass(slots=True)
class VolunteerStats:
    """What one :func:`run_volunteer` session did."""

    tasks_done: int = 0
    tasks_failed: int = 0
    rpcs: int = 0
    idle_polls: int = 0


def run_volunteer(address: str, name: str, flops: float = 1e9,
                  poll_s: float = 0.02, idle_limit: int = 100,
                  max_tasks: int | None = None,
                  stop: _t.Callable[[], bool] | None = None
                  ) -> VolunteerStats:
    """The BOINC-MR client loop against a live gateway, to completion.

    Polls the scheduler, executes assignments with the real engine, and
    reports at the next RPC.  Returns after *idle_limit* consecutive
    no-work polls (with no reports pending), after *max_tasks* tasks, or
    when *stop* returns True.
    """
    client = GatewayClient(address)
    host_id = client.register(name, flops=flops, supports_mr=True)
    stats = VolunteerStats()
    reports: list[dict] = []
    idle = 0
    while True:
        if stop is not None and stop():
            break
        reply = client.scheduler_rpc(host_id, work_req_s=1.0,
                                     reports=reports)
        reports = []
        stats.rpcs += 1
        for task in reply["assignments"]:
            try:
                reports.append(execute_task(client, task))
                stats.tasks_done += 1
            except GatewayError:
                stats.tasks_failed += 1
                reports.append({"result_id": task["result_id"],
                                "success": False, "elapsed_s": 0.0})
        if reply["assignments"] or reports:
            idle = 0
            continue  # report promptly; more work may be chained
        if max_tasks is not None and stats.tasks_done >= max_tasks:
            break
        idle += 1
        stats.idle_polls += 1
        if idle >= idle_limit:
            break
        time.sleep(max(reply["request_delay_s"], poll_s))
    client.close()
    return stats
