"""The live asyncio HTTP gateway: real volunteers against the shared core.

A single-threaded :mod:`asyncio` server (stdlib only — the HTTP/1.1
framing is hand-rolled on ``asyncio.start_server`` streams) exposing the
pull protocol of :mod:`repro.gateway.protocol`:

- control plane: ``/rpc/register`` and ``/rpc/scheduler`` delegate to the
  *same* :class:`repro.boinc.server.SchedulerCore` state machine the
  simulator drives, with a wall-clock ``clock`` injected instead of
  ``sim.now``;
- data plane: ``/data/{name}`` downloads and ``/upload/...`` uploads hit
  a :class:`repro.gateway.files.BlobStore` with CRC32 checksum headers;
- job plane: ``/jobs`` submission, status polling, and output reclaim
  via :class:`repro.gateway.jobs.GatewayJobTracker`.

Because the event loop is single-threaded and every handler is
synchronous between awaits, core/state mutations need no locking — the
same property the simulator gets from cooperative scheduling.  A daemon
task ticks :meth:`SchedulerCore.run_daemon_passes` on a wall-clock
cadence, standing in for the feeder/transitioner/validator/assimilator
polling processes.

Restart-with-state is first-class: pass a previous server's
:class:`GatewayState` to a new :class:`GatewayServer` and in-flight
leases survive the restart (clients keep their result ids; deadline
timeouts keep counting on the same clock).
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
import typing as _t

from ..boinc.dataserver import FileMissing, ServerUnavailable
from ..boinc.model import FileRef, OutputData
from ..boinc.server import (
    ReportedResult,
    SchedulerCore,
    SchedulerReply,
    SchedulerRequest,
    ServerConfig,
)
from ..obs.metrics import MetricsRegistry
from . import protocol
from .files import BlobStore
from .jobs import (
    APP_REGISTRY,
    GatewayJob,
    GatewayJobTracker,
    decode_payload,
)

#: Latency buckets (seconds) for live RPC histograms: sub-millisecond to
#: multi-second, matching what a loopback-to-WAN deployment can see.
RPC_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
               0.1, 0.25, 0.5, 1.0, 2.5)

_MAX_HEADER_LINE = 16 * 1024
_MAX_BODY = 64 * 1024 * 1024


@dataclasses.dataclass(slots=True)
class GatewayConfig:
    """Tunables for the live gateway front end."""

    #: Bind address; port 0 lets the OS pick a free port.
    host: str = "127.0.0.1"
    port: int = 0
    #: Wall-clock period of the daemon tick (one full
    #: feeder/transitioner/validator/assimilator pipeline per tick).
    daemon_period_s: float = 0.02
    #: Next-contact hint handed to clients in every scheduler reply.
    request_delay_s: float = 0.0
    #: Lease deadline for live results (sent_at + delay_bound).
    delay_bound_s: float = 30.0
    #: Cap on results handed out per scheduler RPC.
    max_results_per_rpc: int = 2
    #: Feeder shared-memory slots visible to the scheduler.
    feeder_cache_size: int = 256
    #: ``Retry-After`` value (seconds) sent with 503 refusals.
    retry_after_s: float = 0.5

    def server_config(self) -> ServerConfig:
        """The shared-core :class:`ServerConfig` this front end implies."""
        return ServerConfig(
            request_delay_s=self.request_delay_s,
            delay_bound_s=self.delay_bound_s,
            max_results_per_rpc=self.max_results_per_rpc,
            feeder_cache_size=self.feeder_cache_size,
        )


class GatewayState:
    """The transport-independent state a gateway serves (and can adopt).

    Bundles the shared scheduler core, the blob store, and the job
    tracker.  A restarted :class:`GatewayServer` constructed with the old
    server's state picks up every in-flight lease: results stay
    IN_PROGRESS, deadlines keep counting on the same monotonic clock, and
    clients holding assignments can upload/report as if nothing happened.
    """

    def __init__(self, config: GatewayConfig | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        """Fresh core + store + tracker on a wall-clock monotonic clock."""
        self.config = config or GatewayConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        t0 = time.monotonic()
        self.core = SchedulerCore(config=self.config.server_config(),
                                  metrics=self.metrics,
                                  clock=lambda: time.monotonic() - t0)
        self.store = BlobStore()
        self.core.publish_input = self.store.publish
        self.jobs = GatewayJobTracker(self.core, self.store)


class GatewayServer:
    """Asyncio HTTP front end over a :class:`GatewayState`."""

    def __init__(self, config: GatewayConfig | None = None,
                 state: GatewayState | None = None) -> None:
        """A stopped server; call :meth:`start` inside a running loop."""
        self.config = config or (state.config if state is not None
                                 else GatewayConfig())
        self.state = state if state is not None else GatewayState(self.config)
        self.metrics = self.state.metrics
        self.core = self.state.core
        self.store = self.state.store
        self.jobs = self.state.jobs
        self.port: int | None = None
        self.connections_active = 0
        self._server: asyncio.base_events.Server | None = None
        self._daemon_task: asyncio.Task | None = None

    @property
    def address(self) -> str:
        """``host:port`` clients should dial (valid after :meth:`start`)."""
        if self.port is None:
            raise RuntimeError("server not started")
        return f"{self.config.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the daemon tick task."""
        from ..obs.probes import attach_gateway_probes
        attach_gateway_probes(self)
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._daemon_task = asyncio.get_running_loop().create_task(
            self._daemon_loop())

    async def stop(self) -> None:
        """Stop listening and cancel the daemon task (state survives)."""
        if self._daemon_task is not None:
            self._daemon_task.cancel()
            try:
                await self._daemon_task
            except asyncio.CancelledError:
                pass
            self._daemon_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _daemon_loop(self) -> None:
        """Tick the shared daemons' pipeline on a wall-clock cadence."""
        while True:
            t0 = time.perf_counter()
            self.core.run_daemon_passes()
            self.metrics.histogram("gateway.daemon_tick_s",
                                   buckets=RPC_BUCKETS).observe(
                time.perf_counter() - t0)
            await asyncio.sleep(self.config.daemon_period_s)

    @classmethod
    def in_thread(cls, config: GatewayConfig | None = None,
                  state: GatewayState | None = None) -> "GatewayHandle":
        """Run a gateway on a fresh event loop in a daemon thread.

        The blocking-world entry point used by doctests, tests, and
        ``repro loadgen --self-host``: returns a :class:`GatewayHandle`
        once the listener is bound.
        """
        server = cls(config=config, state=state)
        started = threading.Event()
        loop = asyncio.new_event_loop()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            started.set()
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        thread = threading.Thread(target=_run, name="gateway", daemon=True)
        thread.start()
        started.wait()
        return GatewayHandle(server, loop, thread)

    # -- HTTP framing ----------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Serve one keep-alive connection until EOF or ``Connection: close``."""
        self.connections_active += 1
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                t0 = time.perf_counter()
                status, reply_headers, payload = self._route(
                    method, path, headers, body)
                self._observe(method, path, time.perf_counter() - t0,
                              status)
                await self._write_response(writer, status, reply_headers,
                                           payload)
                if headers.get("connection", "").lower() == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            self.metrics.counter("gateway.disconnects_total").inc()
        finally:
            self.connections_active -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; None on clean EOF between requests."""
        try:
            line = await reader.readline()
        except ValueError:  # header line over the stream limit
            raise asyncio.LimitOverrunError("header too long", 0)
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ConnectionError(f"malformed request line {line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > _MAX_HEADER_LINE:
                raise ConnectionError("oversized header")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        if not 0 <= length <= _MAX_BODY:
            raise ConnectionError(f"bad content-length {length}")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], headers, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, headers: dict[str, str],
                              payload: bytes) -> None:
        """Emit one HTTP/1.1 response with Content-Length framing."""
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  422: "Unprocessable Entity",
                  503: "Service Unavailable"}.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Length: {len(payload)}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    def _observe(self, method: str, path: str, elapsed: float,
                 status: int) -> None:
        """Per-RPC latency + outcome accounting into the obs registry."""
        family = self._route_family(path)
        self.metrics.histogram(f"gateway.rpc.{family}_s",
                               buckets=RPC_BUCKETS).observe(elapsed)
        self.metrics.counter("gateway.http_requests_total").inc()
        if status >= 400:
            self.metrics.counter("gateway.http_errors_total").inc()

    @staticmethod
    def _route_family(path: str) -> str:
        """Collapse a request path to its metric family name."""
        if path == "/rpc/scheduler":
            return "scheduler"
        if path == "/rpc/register":
            return "register"
        if path.startswith("/data/"):
            return "data"
        if path.startswith("/upload/"):
            return "upload"
        if path == "/jobs" or path.startswith("/jobs/"):
            return "jobs"
        return "other"

    # -- routing ---------------------------------------------------------------
    def _route(self, method: str, path: str, headers: dict[str, str],
               body: bytes) -> tuple[int, dict[str, str], bytes]:
        """Dispatch one request; returns (status, headers, payload)."""
        try:
            if path == "/rpc/register":
                return self._require_post(method) or self._rpc_register(body)
            if path == "/rpc/scheduler":
                return self._require_post(method) or self._rpc_scheduler(body)
            if path.startswith("/data/"):
                return self._require_get(method) or self._data_get(
                    path[len("/data/"):])
            if path.startswith("/upload/"):
                return self._require_post(method) or self._upload(
                    path[len("/upload/"):], headers, body)
            if path == "/jobs":
                return self._require_post(method) or self._job_submit(body)
            if path.startswith("/jobs/") and path.endswith("/output"):
                return self._require_get(method) or self._job_output(
                    path[len("/jobs/"):-len("/output")])
            if path.startswith("/jobs/"):
                return self._require_get(method) or self._job_status(
                    path[len("/jobs/"):])
            if path == "/status":
                return self._require_get(method) or self._status()
            if path == "/healthz":
                return self._require_get(method) or self._json(
                    200, {"ok": True, "version": protocol.PROTOCOL_VERSION})
            return self._error("not_found", f"no route {path!r}")
        except ServerUnavailable:
            return self._error("unavailable", "server refusing; retry",
                               retry_after_s=self.config.retry_after_s)
        except (ValueError, KeyError, TypeError) as exc:
            return self._error("bad_request", f"{type(exc).__name__}: {exc}")

    @staticmethod
    def _require_post(method: str) -> tuple[int, dict, bytes] | None:
        """405 error triple unless *method* is POST."""
        if method != "POST":
            status, body = protocol.error_body(
                "method_not_allowed", "use POST")
            return status, {"Content-Type": "application/json"}, body
        return None

    @staticmethod
    def _require_get(method: str) -> tuple[int, dict, bytes] | None:
        """405 error triple unless *method* is GET."""
        if method != "GET":
            status, body = protocol.error_body(
                "method_not_allowed", "use GET")
            return status, {"Content-Type": "application/json"}, body
        return None

    @staticmethod
    def _json(status: int, payload: _t.Any) -> tuple[int, dict, bytes]:
        """A JSON response triple."""
        return (status, {"Content-Type": "application/json"},
                protocol.dumps(payload))

    def _error(self, code: str, detail: str,
               retry_after_s: float | None = None
               ) -> tuple[int, dict, bytes]:
        """An ``Error``-schema response triple for *code*."""
        status, body = protocol.error_body(code, detail, retry_after_s)
        headers = {"Content-Type": "application/json"}
        if retry_after_s is not None:
            headers["Retry-After"] = f"{retry_after_s:g}"
        return status, headers, body

    def _validated(self, schema: str, body: bytes) -> dict:
        """Decode + schema-check a JSON request body (ValueError on fail)."""
        payload = protocol.loads(body)
        problems = protocol.validate(schema, payload)
        if problems:
            raise ValueError("; ".join(problems))
        return payload

    # -- control plane ---------------------------------------------------------
    def _rpc_register(self, body: bytes) -> tuple[int, dict, bytes]:
        """``POST /rpc/register``: host registration, idempotent by name."""
        req = self._validated("RegisterRequest", body)
        if not self.core.available:
            raise ServerUnavailable("registration refused")
        for rec in self.core.db.hosts.values():
            if rec.name == req["name"]:
                host_id = rec.id
                break
        else:
            host_id = self.core.register_host(
                req["name"], float(req["flops"]),
                supports_mr=req.get("supports_mr", True)).id
        return self._json(200, {
            "host_id": host_id,
            "request_delay_s": self.config.request_delay_s,
        })

    def _rpc_scheduler(self, body: bytes) -> tuple[int, dict, bytes]:
        """``POST /rpc/scheduler``: reports in, assignments out."""
        req = self._validated("WorkRequest", body)
        if req["host_id"] not in self.core.db.hosts:
            return self._error("unknown_host",
                               f"host {req['host_id']} not registered")
        reports = []
        for rep in req.get("reports", []):
            res = self.core.db.results.get(rep["result_id"])
            if res is None or res.host_id != req["host_id"] or \
                    res.reported_at is not None:
                # Replayed/stale report: BOINC drops these silently, the
                # gateway additionally counts them (idempotency metric).
                self.metrics.counter(
                    "gateway.duplicate_reports_total").inc()
                continue
            output = None
            if rep["success"]:
                files = tuple(FileRef(f["name"], float(f["size"]))
                              for f in rep.get("output_files", []))
                output = OutputData(digest=rep.get("digest") or "",
                                    files=files)
            reports.append(ReportedResult(
                result_id=rep["result_id"], success=rep["success"],
                output=output, elapsed_s=float(rep["elapsed_s"])))
        reply = self.core.handle_scheduler_request(SchedulerRequest(
            host_id=req["host_id"], work_req_s=float(req["work_req_s"]),
            reports=reports))
        return self._json(200, self._encode_reply(reply))

    def _encode_reply(self, reply: SchedulerReply) -> dict:
        """Serialise a core :class:`SchedulerReply` into a wire ``WorkReply``."""
        tasks = []
        for a in reply.assignments:
            params = self.jobs.task_params(a.wu)
            tasks.append({
                "result_id": a.result_id, "wu_id": a.wu.id,
                "app": a.wu.app_name,
                "input_files": [f.name for f in a.wu.input_files],
                "est_runtime_s": a.est_runtime_s, "deadline": a.deadline,
                **params,
            })
        return {"assignments": tasks,
                "request_delay_s": reply.request_delay_s,
                "no_work": reply.no_work}

    # -- data plane ------------------------------------------------------------
    def _data_get(self, name: str) -> tuple[int, dict, bytes]:
        """``GET /data/{name}``: blob bytes + checksum header."""
        try:
            data = self.store.fetch(name)
        except FileMissing:
            return self._error("not_found", f"no blob {name!r}")
        return (200, {"Content-Type": "application/octet-stream",
                      protocol.CHECKSUM_HEADER: self.store.checksum_of(name)},
                data)

    def _upload(self, rest: str, headers: dict[str, str],
                body: bytes) -> tuple[int, dict, bytes]:
        """``POST /upload/{result_id}/{name}``: checksum-verified ingest."""
        result_id_s, _, name = rest.partition("/")
        if not result_id_s.isdigit() or not name:
            return self._error("bad_request",
                               "upload path must be /upload/<id>/<name>")
        result_id = int(result_id_s)
        if result_id not in self.core.db.results:
            return self._error("unknown_result",
                               f"result {result_id} was never issued")
        claimed = headers.get(protocol.CHECKSUM_HEADER.lower())
        actual = protocol.checksum(body)
        if claimed is not None and claimed != actual:
            self.metrics.counter("gateway.bad_checksum_total").inc()
            return self._error("checksum_mismatch",
                               f"claimed {claimed}, got {actual}")
        self.store.put(name, body)
        self.core.record_upload(result_id)
        self.metrics.counter("gateway.uploads_total").inc()
        return self._json(200, {"received": True, "result_id": result_id,
                                "name": name, "size": len(body)})

    # -- job plane -------------------------------------------------------------
    def _job_submit(self, body: bytes) -> tuple[int, dict, bytes]:
        """``POST /jobs``: generate corpus, split, submit map workunits."""
        spec = self._validated("JobRequest", body)
        if spec["name"] in self.jobs.jobs:
            return self._error("bad_request",
                               f"job {spec['name']!r} already exists")
        if spec["app"] not in APP_REGISTRY:
            return self._error("bad_request",
                               f"unknown app {spec['app']!r}")
        job = self.jobs.submit_spec(spec)
        return self._json(200, {"name": job.name, "n_maps": job.n_maps,
                                "n_reducers": job.n_reducers,
                                "workunits": job.n_maps})

    def _job_status(self, name: str) -> tuple[int, dict, bytes]:
        """``GET /jobs/{name}``: the job's wire status."""
        job = self.jobs.jobs.get(name)
        if job is None:
            return self._error("not_found", f"no job {name!r}")
        return self._json(200, job.status())

    def _job_output(self, name: str) -> tuple[int, dict, bytes]:
        """``GET /jobs/{name}/output``: reclaim the merged payload."""
        job = self.jobs.jobs.get(name)
        if job is None:
            return self._error("not_found", f"no job {name!r}")
        if job.state != "done" or job.output_payload is None:
            return self._error("not_ready",
                               f"job {name!r} is {job.state}")
        return (200, {"Content-Type": "application/octet-stream",
                      protocol.CHECKSUM_HEADER:
                          protocol.checksum(job.output_payload)},
                job.output_payload)

    # -- introspection ---------------------------------------------------------
    def _status(self) -> tuple[int, dict, bytes]:
        """``GET /status``: the BOINC server-status page, JSON edition."""
        from ..obs.metrics import Counter
        counters = {i.name: i.value for i in self.metrics.instruments()
                    if isinstance(i, Counter)}
        return self._json(200, {
            "now": self.core.now,
            "counts": self.core.db.counts(),
            "counters": counters,
            "jobs": self.jobs.statuses(),
        })


class GatewayHandle:
    """Blocking-world handle to a gateway running on a background thread.

    What :meth:`GatewayServer.in_thread` returns: thread-safe job
    submission, result reclaim, and shutdown for doctests, pytest, and
    the self-hosting load harness.
    """

    def __init__(self, server: GatewayServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        """Wrap a started *server* owned by *loop* on *thread*."""
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def address(self) -> str:
        """``host:port`` for clients to dial."""
        return self.server.address

    def submit_job(self, name: str, app: str, data: bytes, n_maps: int,
                   n_reducers: int, replication: int = 1,
                   quorum: int = 1) -> GatewayJob:
        """Submit a job with explicit input bytes (thread-safe)."""

        async def _submit() -> GatewayJob:
            return self.server.jobs.submit(
                name, app, data, n_maps=n_maps, n_reducers=n_reducers,
                replication=replication, quorum=quorum)

        return asyncio.run_coroutine_threadsafe(_submit(),
                                                self.loop).result(30.0)

    def result(self, name: str, timeout: float = 60.0) -> dict:
        """Block until job *name* finishes, then return its merged output."""
        job = self.server.jobs.jobs[name]
        if not job.finished.wait(timeout):
            raise TimeoutError(f"job {name!r} still {job.state} "
                               f"after {timeout}s")
        if job.state != "done" or job.output_payload is None:
            raise RuntimeError(f"job {name!r} failed: {job.error}")
        return decode_payload(job.output_payload)

    def close(self) -> None:
        """Stop the server and join its thread (state is preserved)."""
        if not self.loop.is_closed():
            asyncio.run_coroutine_threadsafe(self.server.stop(),
                                             self.loop).result(10.0)
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
