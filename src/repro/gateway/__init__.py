"""Live deployment mode: the asyncio HTTP gateway for real volunteers.

The paper's system is MapReduce served to volunteers *over the
Internet*; this package is that serving path, live.  The same
:class:`repro.boinc.server.SchedulerCore` state machine the simulator
drives on virtual time answers real scheduler RPCs on wall-clock time
behind a stdlib-``asyncio`` HTTP front end, so replication, quorum
validation, deadlines, and the report-at-next-RPC split are shared with
the simulation rather than re-implemented.

- :mod:`repro.gateway.protocol` — the wire protocol (endpoints, JSON
  schemas, error codes, checksums), documented in ``docs/protocol.md``;
- :mod:`repro.gateway.server` — :class:`GatewayServer`, the asyncio
  listener + daemon tick, and :class:`GatewayHandle` for in-process use;
- :mod:`repro.gateway.client` — :class:`GatewayClient` (blocking HTTP
  transport with the paper's backoff) and :func:`run_volunteer`, the
  real-OS-process volunteer loop running the real engine;
- :mod:`repro.gateway.jobs` — live MapReduce orchestration over the
  shared assimilator hook;
- :mod:`repro.gateway.files` — :class:`BlobStore`, real bytes behind
  the shared :class:`~repro.boinc.dataserver.FileCatalogue` seam;
- :mod:`repro.gateway.loadgen` — the 500-client replay harness behind
  ``repro loadgen`` and the ``BENCH_gateway.json`` p99 gate.
"""

from .client import (
    BackoffPolicy,
    GatewayClient,
    GatewayError,
    VolunteerStats,
    execute_task,
    run_volunteer,
)
from .files import BlobStore
from .jobs import APP_REGISTRY, GatewayJob, GatewayJobTracker
from .loadgen import LoadConfig, LoadReport, run_loadgen, write_report
from .protocol import (
    ENDPOINTS,
    ERROR_CODES,
    PROTOCOL_VERSION,
    SCHEMAS,
    checksum,
    validate,
)
from .server import (
    GatewayConfig,
    GatewayHandle,
    GatewayServer,
    GatewayState,
)

__all__ = [
    "APP_REGISTRY",
    "BackoffPolicy",
    "BlobStore",
    "ENDPOINTS",
    "ERROR_CODES",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayHandle",
    "GatewayJob",
    "GatewayJobTracker",
    "GatewayServer",
    "GatewayState",
    "LoadConfig",
    "LoadReport",
    "PROTOCOL_VERSION",
    "SCHEMAS",
    "VolunteerStats",
    "checksum",
    "execute_task",
    "run_loadgen",
    "run_volunteer",
    "validate",
    "write_report",
]
