"""Load harness: replay simulated client schedules against a live gateway.

Reuses :func:`repro.volunteers.traces.diurnal_trace` — the same home-PC
availability shapes the simulator churns volunteers with — to derive
each load client's RPC schedule: a 7-day diurnal trace is compressed
onto the harness duration, and the client only polls inside its ON
windows.  Hundreds of such clients run concurrently on one asyncio loop
(each with its own keep-alive connection), every scheduler RPC's
wall-clock latency is recorded both into the gateway's
:class:`repro.obs.MetricsRegistry` and as raw samples for exact
percentiles, and the run ends with the three gates the CI job enforces:

- **p99 latency**: exact p99 of scheduler-RPC latency under the
  checked-in budget (``benchmarks/BENCH_gateway_baseline.json``);
- **no lost/duplicated results**: every workunit assimilated exactly
  once (``assimilated == n_maps + n_reducers`` per job);
- **oracle equivalence**: the reclaimed payload is byte-identical to a
  :class:`repro.runtime.engine.LocalRunner` run over the same corpus.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
import time
import typing as _t

import numpy as np

from ..runtime.engine import LocalRunner
from ..runtime.splitter import split_text
from ..volunteers.traces import AvailabilityTrace, diurnal_trace
from ..workloads import generate_corpus
from . import protocol
from .client import execute_task
from .jobs import canonical_payload, resolve_app
from .server import GatewayConfig, GatewayServer


@dataclasses.dataclass(slots=True)
class LoadConfig:
    """Knobs for one load-harness run."""

    n_clients: int = 500
    #: Wall-clock length the compressed schedules are replayed over.
    duration_s: float = 8.0
    #: Scheduler polls each client attempts inside its ON windows.
    polls_per_client: int = 4
    seed: int = 1
    #: Job the fleet computes while generating load.
    app: str = "wordcount"
    corpus_bytes: int = 200_000
    n_maps: int = 12
    n_reducers: int = 6
    replication: int = 2
    quorum: int = 2
    #: Extra wall-clock grace after schedules finish for the job to seal.
    drain_s: float = 20.0


@dataclasses.dataclass(slots=True)
class LoadReport:
    """Everything a load run measured, JSON-ready via :meth:`to_dict`."""

    n_clients: int
    rpcs: int
    tasks_done: int
    errors: int
    duplicate_reports: int
    lost_results: int
    duplicated_results: int
    equivalent: bool
    wall_s: float
    latency_ms: dict[str, float]
    job_state: str

    def to_dict(self) -> dict:
        """JSON document in the repo's ``BENCH_*.json`` shape."""
        return {"kind": "gateway", **dataclasses.asdict(self)}

    @property
    def clean(self) -> bool:
        """True when the correctness gates (not latency) all hold."""
        return (self.errors == 0 and self.lost_results == 0
                and self.duplicated_results == 0 and self.equivalent
                and self.job_state == "done")


def client_schedule(index: int, config: LoadConfig) -> list[float]:
    """RPC instants (seconds into the run) for load client *index*.

    A 7-day diurnal availability trace is generated per client and
    compressed onto ``[0, duration_s)``; poll instants are sampled
    uniformly inside the scaled ON windows, so the fleet's arrival
    pattern inherits the evening/weekend bursts of the simulated
    volunteer population instead of being a flat Poisson front.
    """
    rng = np.random.default_rng(config.seed * 100_003 + index)
    trace: AvailabilityTrace = diurnal_trace(f"load-{index}", days=7,
                                             rng=rng)
    horizon = 7 * 24 * 3600.0
    scale = config.duration_s / horizon
    instants: list[float] = []
    spans = [(s * scale, e * scale) for s, e in trace.intervals]
    for _ in range(config.polls_per_client):
        start, end = spans[int(rng.integers(len(spans)))]
        instants.append(float(rng.uniform(start, end)))
    return sorted(instants)


class _AsyncConn:
    """One keep-alive asyncio HTTP/1.1 connection to the gateway."""

    def __init__(self, host: str, port: int) -> None:
        """A closed connection; opens lazily on first request."""
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, method: str, path: str, body: bytes = b"",
                      headers: dict[str, str] | None = None
                      ) -> tuple[int, dict[str, str], bytes]:
        """One request/response exchange; reconnects once on failure."""
        for attempt in (0, 1):
            if self._writer is None:
                await self._open()
            try:
                return await self._exchange(method, path, body,
                                            headers or {})
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _exchange(self, method: str, path: str, body: bytes,
                        headers: dict[str, str]
                        ) -> tuple[int, dict[str, str], bytes]:
        assert self._reader is not None and self._writer is not None
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(body)}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n")
                           .encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed connection")
        status = int(status_line.split()[1])
        resp_headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0"))
        payload = (await self._reader.readexactly(length)
                   if length else b"")
        return status, resp_headers, payload


class _FleetClient:
    """One simulated volunteer identity inside the async fleet."""

    def __init__(self, index: int, host: str, port: int,
                 config: LoadConfig, samples: list[float],
                 errors: list[str]) -> None:
        """Load client *index* recording into shared sample/error lists."""
        self.index = index
        self.conn = _AsyncConn(host, port)
        self.config = config
        self.samples = samples
        self.errors = errors
        self.rpcs = 0
        self.tasks_done = 0
        self._reports: list[dict] = []
        self._rng = random.Random(config.seed * 7 + index)

    async def _json(self, method: str, path: str,
                    payload: _t.Any = None) -> _t.Any:
        body = protocol.dumps(payload) if payload is not None else b""
        for attempt in range(8):
            status, headers, data = await self.conn.request(
                method, path, body, {"Content-Type": "application/json"})
            if status == 503:
                doc = protocol.loads(data)
                await asyncio.sleep(
                    max(float(doc.get("retry_after_s", 0.0)),
                        0.05 * (2 ** attempt) * self._rng.uniform(0.5, 1)))
                continue
            if status >= 400:
                raise RuntimeError(f"{path}: HTTP {status} "
                                   f"{data[:120]!r}")
            return protocol.loads(data)
        raise RuntimeError(f"{path}: retries exhausted on 503")

    async def run(self, start: float) -> None:
        """Replay this client's schedule; execute any assigned work."""
        try:
            host_id = (await self._json("POST", "/rpc/register", {
                "name": f"load-{self.index}", "flops": 1e9,
                "supports_mr": True}))["host_id"]
            for instant in client_schedule(self.index, self.config):
                delay = start + instant - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                await self._poll(host_id)
            # Flush any pending reports so no result is lost at the end.
            while self._reports:
                await self._poll(host_id)
        except Exception as exc:  # noqa: BLE001 — gate counts any failure
            self.errors.append(f"client {self.index}: {exc}")

    async def _poll(self, host_id: int) -> None:
        """One scheduler RPC (timed) plus execution of its assignments."""
        t0 = time.perf_counter()
        reply = await self._json("POST", "/rpc/scheduler", {
            "host_id": host_id, "work_req_s": 1.0,
            "reports": self._reports})
        self.samples.append(time.perf_counter() - t0)
        self.rpcs += 1
        self._reports = []
        for task in reply["assignments"]:
            report = await asyncio.get_running_loop().run_in_executor(
                None, self._execute_blocking, task)
            self._reports.append(report)
            if report["success"]:
                self.tasks_done += 1

    def _execute_blocking(self, task: dict) -> dict:
        """Compute + upload one task on a worker thread (own connection)."""
        from .client import GatewayClient
        client = GatewayClient(f"{self.conn.host}:{self.conn.port}")
        try:
            return execute_task(client, task)
        except Exception:  # noqa: BLE001 — report failure, don't lose lease
            return {"result_id": task["result_id"], "success": False,
                    "elapsed_s": 0.0}
        finally:
            client.close()


def oracle_payload(config: LoadConfig) -> bytes:
    """The simulated-run oracle: LocalRunner over the same corpus/split."""
    data = generate_corpus(config.corpus_bytes, seed=config.seed)
    runner = LocalRunner(resolve_app(config.app), n_maps=config.n_maps,
                         n_reducers=config.n_reducers)
    merged: dict = {}
    blobs_by_reducer: dict[int, list[bytes]] = {
        r: [] for r in range(config.n_reducers)}
    for i, chunk in enumerate(split_text(data, config.n_maps)):
        _, blobs = runner.run_map_task(i, chunk)
        for r in range(config.n_reducers):
            blobs_by_reducer[r].append(blobs[r])
    for r in range(config.n_reducers):
        _, output = runner.run_reduce_task(r, blobs_by_reducer[r])
        merged.update(output)
    return canonical_payload(merged)


def percentiles_ms(samples: _t.Sequence[float]) -> dict[str, float]:
    """Exact p50/p90/p99/max of *samples* (seconds), in milliseconds."""
    if not samples:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    arr = np.sort(np.asarray(samples, dtype=float)) * 1000.0
    def pick(q: float) -> float:
        return float(arr[min(len(arr) - 1, int(q * len(arr)))])
    return {"p50": pick(0.50), "p90": pick(0.90), "p99": pick(0.99),
            "max": float(arr[-1])}


async def _run_fleet(address: str, config: LoadConfig,
                     samples: list[float], errors: list[str]
                     ) -> tuple[int, int]:
    """Drive the whole fleet; returns (total_rpcs, total_tasks_done)."""
    host, _, port_s = address.partition(":")
    clients = [_FleetClient(i, host, int(port_s), config, samples, errors)
               for i in range(config.n_clients)]
    start = time.monotonic()
    await asyncio.gather(*(c.run(start) for c in clients))
    await asyncio.gather(*(c.conn.close() for c in clients))
    return sum(c.rpcs for c in clients), sum(c.tasks_done for c in clients)


def run_loadgen(address: str | None = None,
                config: LoadConfig | None = None,
                echo: _t.Callable[[str], None] | None = None
                ) -> LoadReport:
    """Run the full harness; self-hosts a gateway when *address* is None.

    Submits the benchmark job, replays every client schedule, drains
    stragglers with dedicated cleanup volunteers until the job seals (or
    the drain budget runs out), and returns the gated :class:`LoadReport`.
    """
    config = config or LoadConfig()
    say = echo or (lambda _msg: None)
    handle = None
    if address is None:
        handle = GatewayServer.in_thread(GatewayConfig(
            request_delay_s=0.0, delay_bound_s=5.0))
        address = handle.address
        say(f"self-hosted gateway on {address}")
    from .client import GatewayClient, run_volunteer
    control = GatewayClient(address)
    job_name = f"loadgen-{config.seed}"
    control.submit_job(job_name, config.app, config.corpus_bytes,
                       config.seed, n_maps=config.n_maps,
                       n_reducers=config.n_reducers,
                       replication=config.replication,
                       quorum=config.quorum)
    say(f"submitted {job_name}: {config.n_maps} maps x "
        f"{config.replication} replicas, {config.n_reducers} reduces")

    samples: list[float] = []
    client_errors: list[str] = []
    t0 = time.perf_counter()
    rpcs, tasks_done = asyncio.run(
        _run_fleet(address, config, samples, client_errors))
    say(f"fleet done: {rpcs} RPCs, {tasks_done} tasks, "
        f"{len(client_errors)} client errors")

    # Drain: deadline-expired leases are reissued by the shared
    # transitioner; cleanup volunteers absorb them until the job seals.
    deadline = time.monotonic() + config.drain_s
    status = control.job_status(job_name)
    sweep = 0
    while status["state"] == "running" and time.monotonic() < deadline:
        sweep += 1
        run_volunteer(address, name=f"drain-{config.seed}-{sweep}",
                      poll_s=0.05, idle_limit=10)
        status = control.job_status(job_name)
    wall = time.perf_counter() - t0

    expected = config.n_maps + config.n_reducers
    assimilated = status["assimilated"]
    equivalent = False
    if status["state"] == "done":
        equivalent = control.job_output(job_name) == oracle_payload(config)
    server_counters = control.status()["counters"]
    control.close()
    if handle is not None:
        handle.close()
    return LoadReport(
        n_clients=config.n_clients,
        rpcs=rpcs,
        tasks_done=tasks_done,
        errors=len(client_errors),
        duplicate_reports=int(server_counters.get(
            "gateway.duplicate_reports_total", 0)),
        lost_results=max(0, expected - assimilated),
        duplicated_results=max(0, assimilated - expected),
        equivalent=equivalent,
        wall_s=wall,
        latency_ms=percentiles_ms(samples),
        job_state=status["state"],
    )


def write_report(report: LoadReport, path: str) -> None:
    """Write *report* as a ``BENCH_gateway.json`` document."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
