"""The gateway wire protocol: endpoints, JSON schemas, checksums, errors.

Single source of truth for everything that crosses the live HTTP
boundary.  ``docs/protocol.md`` documents exactly the tables below and
``tests/test_docs.py`` validates every JSON example in that document
against :data:`SCHEMAS` via :func:`validate`, so the spec cannot drift
from the implementation.

Design rules (all inherited from BOINC's pull architecture):

- every request is client-initiated; the server never connects out;
- JSON request/response bodies, ``application/json``, UTF-8;
- file payloads are raw ``application/octet-stream`` with an
  ``X-Checksum: crc32:<8 hex digits>`` header (see :func:`checksum`);
- a refusing server answers 503 with a ``Retry-After`` header and the
  client backs off exponentially with jitter, exactly like the simulated
  client in :mod:`repro.boinc.client`;
- error bodies follow the ``Error`` schema with a code from
  :data:`ERROR_CODES`.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t
import zlib

#: Protocol version; served by ``GET /healthz`` so clients can refuse to
#: talk to an incompatible gateway.
PROTOCOL_VERSION = 1

#: Name of the checksum header on data downloads and uploads.
CHECKSUM_HEADER = "X-Checksum"


def checksum(data: bytes) -> str:
    """Wire checksum of *data*: ``crc32:<8 lowercase hex digits>``.

    CRC32 matches the stable-hash idiom used across the runtime
    (:func:`repro.runtime.api.default_partition`); it is an integrity
    check against truncated/corrupt transfers, not an authenticator.
    """
    return f"crc32:{zlib.crc32(data) & 0xFFFFFFFF:08x}"


@dataclasses.dataclass(frozen=True, slots=True)
class Endpoint:
    """One route in the gateway's HTTP surface."""

    method: str
    path: str
    request_schema: str | None
    reply_schema: str | None
    summary: str


#: Every route the gateway serves.  ``{name}``-style segments are path
#: parameters.  ``None`` schemas mean raw octet-stream payloads (data
#: plane) or empty request bodies.
ENDPOINTS: tuple[Endpoint, ...] = (
    Endpoint("POST", "/rpc/register", "RegisterRequest", "RegisterReply",
             "Register a volunteer host; idempotent per host name."),
    Endpoint("POST", "/rpc/scheduler", "WorkRequest", "WorkReply",
             "The scheduler RPC: piggybacked reports in, work out."),
    Endpoint("GET", "/data/{name}", None, None,
             "Download input blob bytes (X-Checksum header attached)."),
    Endpoint("POST", "/upload/{result_id}/{name}", None, "UploadReply",
             "Upload one output blob for a leased result; checksum "
             "verified, idempotent re-upload allowed."),
    Endpoint("POST", "/jobs", "JobRequest", "JobReply",
             "Submit a MapReduce job; the server generates the corpus "
             "from the spec so input bytes never cross the wire twice."),
    Endpoint("GET", "/jobs/{name}", None, "JobStatus",
             "Poll job progress and state."),
    Endpoint("GET", "/jobs/{name}/output", None, None,
             "Reclaim the merged job output payload (octet-stream)."),
    Endpoint("GET", "/status", None, "StatusReply",
             "Server-status page: database counts and metric counters."),
    Endpoint("GET", "/healthz", None, "HealthReply",
             "Liveness probe; also reports the protocol version."),
)

#: Error code -> (HTTP status, meaning).  Every non-2xx reply carries an
#: ``Error`` body whose ``error`` field is one of these codes.
ERROR_CODES: dict[str, tuple[int, str]] = {
    "bad_request": (400, "malformed body or missing/invalid fields"),
    "unknown_host": (404, "host_id was never registered"),
    "not_found": (404, "no such blob, job, or route"),
    "method_not_allowed": (405, "route exists but not for this method"),
    "unknown_result": (409, "upload names a result id the server never "
                            "issued"),
    "not_ready": (409, "job output reclaimed before the job finished"),
    "checksum_mismatch": (422, "uploaded bytes do not match X-Checksum"),
    "unavailable": (503, "server refusing; honour Retry-After, then back "
                         "off exponentially with jitter"),
}

# -- schemas ------------------------------------------------------------------
# A schema is {field: (kinds, required)} where kinds is a tuple drawn
# from: "str", "int", "number", "bool", "null", "dict", "list[str]",
# "list[<Schema>]", or a nested schema name.  Unknown fields are
# rejected: the wire surface is closed by construction.

_FieldSpec = tuple[tuple[str, ...], bool]

SCHEMAS: dict[str, dict[str, _FieldSpec]] = {
    "RegisterRequest": {
        "name": (("str",), True),
        "flops": (("number",), True),
        "supports_mr": (("bool",), False),
    },
    "RegisterReply": {
        "host_id": (("int",), True),
        "request_delay_s": (("number",), True),
    },
    "FileStat": {
        "name": (("str",), True),
        "size": (("number",), True),
    },
    "Report": {
        "result_id": (("int",), True),
        "success": (("bool",), True),
        "elapsed_s": (("number",), True),
        "digest": (("str", "null"), False),
        "output_files": (("list[FileStat]",), False),
    },
    "WorkRequest": {
        "host_id": (("int",), True),
        "work_req_s": (("number",), True),
        "reports": (("list[Report]",), False),
    },
    "Task": {
        "result_id": (("int",), True),
        "wu_id": (("int",), True),
        "app": (("str",), True),
        "job": (("str", "null"), True),
        "kind": (("str", "null"), True),
        "index": (("int", "null"), True),
        "n_maps": (("int", "null"), False),
        "n_reducers": (("int", "null"), False),
        "input_files": (("list[str]",), True),
        "est_runtime_s": (("number",), True),
        "deadline": (("number",), True),
    },
    "WorkReply": {
        "assignments": (("list[Task]",), True),
        "request_delay_s": (("number",), True),
        "no_work": (("bool",), True),
    },
    "UploadReply": {
        "received": (("bool",), True),
        "result_id": (("int",), True),
        "name": (("str",), True),
        "size": (("int",), True),
    },
    "CorpusSpec": {
        "size": (("int",), True),
        "seed": (("int",), True),
    },
    "JobRequest": {
        "name": (("str",), True),
        "app": (("str",), True),
        "n_maps": (("int",), True),
        "n_reducers": (("int",), True),
        "replication": (("int",), False),
        "quorum": (("int",), False),
        "corpus": (("CorpusSpec",), True),
    },
    "JobReply": {
        "name": (("str",), True),
        "n_maps": (("int",), True),
        "n_reducers": (("int",), True),
        "workunits": (("int",), True),
    },
    "JobStatus": {
        "name": (("str",), True),
        "state": (("str",), True),
        "maps_done": (("int",), True),
        "reduces_done": (("int",), True),
        "n_maps": (("int",), True),
        "n_reducers": (("int",), True),
        "assimilated": (("int",), True),
        "output_checksum": (("str", "null"), True),
    },
    "StatusReply": {
        "now": (("number",), True),
        "counts": (("dict",), True),
        "counters": (("dict",), True),
        "jobs": (("dict",), True),
    },
    "HealthReply": {
        "ok": (("bool",), True),
        "version": (("int",), True),
    },
    "Error": {
        "error": (("str",), True),
        "detail": (("str",), True),
        "retry_after_s": (("number",), False),
    },
}

#: Job lifecycle states as served in ``JobStatus.state``.
JOB_STATES = ("running", "done", "error")


def _kind_ok(value: _t.Any, kind: str, problems: list[str],
             where: str) -> bool:
    """True when *value* conforms to one primitive/list/nested *kind*."""
    if kind == "null":
        return value is None
    if kind == "str":
        return isinstance(value, str)
    if kind == "bool":
        return isinstance(value, bool)
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if kind == "dict":
        return isinstance(value, dict)
    if kind.startswith("list[") and kind.endswith("]"):
        if not isinstance(value, list):
            return False
        inner = kind[5:-1]
        for i, item in enumerate(value):
            if inner in SCHEMAS:
                problems.extend(validate(inner, item,
                                         _where=f"{where}[{i}]"))
            elif not _kind_ok(item, inner, problems, f"{where}[{i}]"):
                problems.append(f"{where}[{i}]: expected {inner}, "
                                f"got {type(item).__name__}")
        return True
    if kind in SCHEMAS:
        problems.extend(validate(kind, value, _where=where))
        return True
    raise ValueError(f"unknown schema kind {kind!r}")


def validate(schema: str, payload: _t.Any, _where: str = "") -> list[str]:
    """Check *payload* against SCHEMAS[*schema*]; return a problem list.

    An empty list means the payload conforms.  Unknown fields, missing
    required fields, and type mismatches are all reported with a path so
    callers (and the docs tests) can print actionable failures.
    """
    spec = SCHEMAS[schema]
    where = _where or schema
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"{where}: expected object, got {type(payload).__name__}"]
    for field in payload:
        if field not in spec:
            problems.append(f"{where}.{field}: unknown field")
    for field, (kinds, required) in spec.items():
        if field not in payload:
            if required:
                problems.append(f"{where}.{field}: missing required field")
            continue
        value = payload[field]
        sub: list[str] = []
        if not any(_kind_ok(value, kind, sub, f"{where}.{field}")
                   for kind in kinds):
            problems.append(
                f"{where}.{field}: expected {' | '.join(kinds)}, "
                f"got {type(value).__name__}")
        problems.extend(sub)
    return problems


def dumps(payload: _t.Any) -> bytes:
    """Canonical JSON encoding for wire bodies (sorted keys, compact)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def loads(data: bytes) -> _t.Any:
    """Decode a JSON wire body (raises ``ValueError`` on malformed input)."""
    return json.loads(data.decode("utf-8"))


def error_body(code: str, detail: str,
               retry_after_s: float | None = None) -> tuple[int, bytes]:
    """Build an (http_status, body_bytes) pair for error *code*."""
    status, _ = ERROR_CODES[code]
    payload: dict[str, _t.Any] = {"error": code, "detail": detail}
    if retry_after_s is not None:
        payload["retry_after_s"] = retry_after_s
    return status, dumps(payload)
