"""Live MapReduce job orchestration on top of :class:`SchedulerCore`.

The gateway-side analogue of the simulator's JobTracker: splits a real
input corpus into chunk blobs, submits map workunits through the shared
BOINC state machine, and rides the assimilator hook — when the last map
workunit assimilates, the reduce workunits are created over the uploaded
partition blobs; when the last reduce assimilates, the per-partition
outputs are merged into one reclaimable payload.

Determinism carries the replication story: :class:`~repro.runtime.engine.
LocalRunner` tasks are bit-reproducible, so replicas of the same task
upload byte-identical blobs under the same name (an idempotent re-put in
:class:`~repro.gateway.files.BlobStore`) and report equal digests, which
is exactly what the shared validator's digest comparison needs.
"""

from __future__ import annotations

import pickle
import threading
import typing as _t

from ..boinc.model import FileRef, Result, Workunit
from ..boinc.server import SchedulerCore
from ..runtime.api import MapReduceApp
from ..runtime.apps import InvertedIndex, MatchCount, WordCount
from ..runtime.splitter import split_text
from ..workloads import generate_corpus
from .files import BlobStore
from .protocol import checksum

#: Apps submittable by name over the wire (``JobRequest.app``).  Only
#: zero-config apps are listed; parameterised apps (grep patterns, sort
#: boundaries) need in-process submission with an app instance.
APP_REGISTRY: dict[str, _t.Callable[[], MapReduceApp]] = {
    "wordcount": WordCount,
    "invindex": InvertedIndex,
    "matchcount": lambda: MatchCount(rb"the"),
}


def resolve_app(name: str) -> MapReduceApp:
    """Instantiate a registered app by wire name (KeyError when unknown)."""
    return APP_REGISTRY[name]()


def chunk_blob_name(job: str, map_index: int) -> str:
    """Blob name of one map input chunk."""
    return f"{job}.m{map_index}.in"


def partition_blob_name(job: str, map_index: int, reduce_index: int) -> str:
    """Blob name of one map-output partition (map i, reducer r)."""
    return f"{job}.m{map_index}.p{reduce_index}"


def reduce_blob_name(job: str, reduce_index: int) -> str:
    """Blob name of one reducer's output."""
    return f"{job}.out{reduce_index}"


def canonical_payload(output: dict) -> bytes:
    """Deterministic byte encoding of a merged job output dict.

    Keys are sorted by ``repr`` (the engine's stable ordering), so the
    same logical output always pickles to the same bytes — this is what
    the byte-equivalence gate in the load harness compares.
    """
    return pickle.dumps(sorted(output.items(), key=lambda kv: repr(kv[0])))


def decode_payload(payload: bytes) -> dict:
    """Inverse of :func:`canonical_payload`."""
    return dict(pickle.loads(payload))


class GatewayJob:
    """Book-keeping for one live MapReduce job."""

    def __init__(self, name: str, app_name: str, n_maps: int,
                 n_reducers: int, replication: int, quorum: int) -> None:
        """A freshly submitted job with no completed stages."""
        self.name = name
        self.app_name = app_name
        self.n_maps = n_maps
        self.n_reducers = n_reducers
        self.replication = replication
        self.quorum = quorum
        self.state = "running"
        self.maps_done = 0
        self.reduces_done = 0
        #: Total workunits assimilated for this job (duplicate-assimilation
        #: detector: must end at ``n_maps + n_reducers`` exactly).
        self.assimilated = 0
        self.error: str | None = None
        self.output_payload: bytes | None = None
        #: Set when the job reaches a terminal state (done or error).
        #: A ``threading.Event`` so non-asyncio threads (doctests, the
        #: blocking client helpers) can wait on it.
        self.finished = threading.Event()

    def status(self) -> dict:
        """The wire ``JobStatus`` payload for this job."""
        return {
            "name": self.name,
            "state": self.state,
            "maps_done": self.maps_done,
            "reduces_done": self.reduces_done,
            "n_maps": self.n_maps,
            "n_reducers": self.n_reducers,
            "assimilated": self.assimilated,
            "output_checksum": (None if self.output_payload is None
                                else checksum(self.output_payload)),
        }


class GatewayJobTracker:
    """Drives live jobs through the shared scheduler core's hooks."""

    def __init__(self, core: SchedulerCore, store: BlobStore) -> None:
        """Attach to *core*'s assimilate/error hooks and *store*."""
        self.core = core
        self.store = store
        self.jobs: dict[str, GatewayJob] = {}
        core.assimilate_handler = self._assimilate
        core.on_wu_error = self._wu_error

    # -- submission ------------------------------------------------------------
    def submit(self, name: str, app_name: str, data: bytes, n_maps: int,
               n_reducers: int, replication: int = 1,
               quorum: int = 1) -> GatewayJob:
        """Split *data*, publish chunk blobs, submit the map workunits."""
        if name in self.jobs:
            raise ValueError(f"job {name!r} already submitted")
        resolve_app(app_name)  # fail fast on unknown apps
        job = GatewayJob(name, app_name, n_maps, n_reducers,
                         replication, quorum)
        self.jobs[name] = job
        chunks = split_text(data, n_maps)
        for i, chunk in enumerate(chunks):
            ref = self.store.put(chunk_blob_name(name, i), chunk)
            self.core.submit_workunit(Workunit(
                id=self.core.db.new_wu_id(), app_name=app_name,
                input_files=(ref,), flops=float(max(len(chunk), 1)),
                target_nresults=replication, min_quorum=quorum,
                mr_job=name, mr_kind="map", mr_index=i),
                publish_inputs=False)
        return job

    def submit_spec(self, spec: dict) -> GatewayJob:
        """Submit from a validated wire ``JobRequest`` payload.

        The corpus is generated server-side from ``(size, seed)`` — the
        same :func:`repro.workloads.generate_corpus` call the load
        harness uses for its oracle, so both sides agree on the bytes
        without shipping them.
        """
        data = generate_corpus(spec["corpus"]["size"],
                               seed=spec["corpus"]["seed"])
        return self.submit(spec["name"], spec["app"], data,
                           n_maps=spec["n_maps"],
                           n_reducers=spec["n_reducers"],
                           replication=spec.get("replication", 1),
                           quorum=spec.get("quorum", 1))

    # -- task metadata for the wire -------------------------------------------
    def task_params(self, wu: Workunit) -> dict:
        """Per-assignment MR parameters serialised into a wire ``Task``."""
        job = self.jobs.get(wu.mr_job) if wu.mr_job is not None else None
        return {
            "job": wu.mr_job,
            "kind": wu.mr_kind,
            "index": wu.mr_index,
            "n_maps": None if job is None else job.n_maps,
            "n_reducers": None if job is None else job.n_reducers,
        }

    # -- scheduler-core hooks --------------------------------------------------
    def _assimilate(self, wu: Workunit, canonical: Result) -> None:
        """BOINC assimilator contract: consume one validated workunit."""
        job = self.jobs.get(wu.mr_job or "")
        if job is None:
            return
        job.assimilated += 1
        if wu.mr_kind == "map":
            job.maps_done += 1
            if job.maps_done == job.n_maps:
                self._launch_reduces(job)
        elif wu.mr_kind == "reduce":
            job.reduces_done += 1
            if job.reduces_done == job.n_reducers:
                self._finish(job)

    def _launch_reduces(self, job: GatewayJob) -> None:
        """All maps assimilated: create one reduce workunit per partition."""
        for r in range(job.n_reducers):
            refs = []
            for i in range(job.n_maps):
                pname = partition_blob_name(job.name, i, r)
                if not self.store.has(pname):
                    job.state = "error"
                    job.error = f"missing partition blob {pname!r}"
                    job.finished.set()
                    return
                refs.append(self.store.files[pname])
            self.core.submit_workunit(Workunit(
                id=self.core.db.new_wu_id(), app_name=job.app_name,
                input_files=tuple(refs),
                flops=float(max(sum(int(f.size) for f in refs), 1)),
                target_nresults=job.replication, min_quorum=job.quorum,
                mr_job=job.name, mr_kind="reduce", mr_index=r),
                publish_inputs=False)

    def _finish(self, job: GatewayJob) -> None:
        """All reduces assimilated: merge partition outputs, seal the job."""
        merged: dict = {}
        for r in range(job.n_reducers):
            blob = self.store.fetch(reduce_blob_name(job.name, r))
            merged.update(pickle.loads(blob))
        job.output_payload = canonical_payload(merged)
        job.state = "done"
        job.finished.set()

    def _wu_error(self, wu: Workunit) -> None:
        """A workunit was abandoned (too many errors): fail its job."""
        job = self.jobs.get(wu.mr_job or "")
        if job is None or job.state != "running":
            return
        job.state = "error"
        job.error = f"workunit {wu.id} ({wu.mr_kind} {wu.mr_index}) failed"
        job.finished.set()

    def statuses(self) -> dict[str, str]:
        """Job name -> state, for the ``/status`` page."""
        return {name: job.state for name, job in self.jobs.items()}
