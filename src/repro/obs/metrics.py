"""Metric instruments and the registry that owns them.

Three instrument types, modelled on the BOINC server-status counters the
paper's platform exposes (and on the Prometheus vocabulary every later
perf PR will speak):

- :class:`Counter` — monotonically increasing totals (RPCs served, bytes
  moved, tasks validated);
- :class:`Gauge` — instantaneous levels (queue depths, in-flight flows,
  client task-state occupancy), either set explicitly or backed by a
  zero-argument callable sampled on demand;
- :class:`Histogram` — distributions, with fixed buckets for cheap
  export *and* streaming quantile estimates (the P² algorithm, constant
  memory) so a million-task run never stores a million observations.

The :class:`MetricsRegistry` hands out get-or-create instruments keyed by
name, and the :class:`Sampler` process snapshots every gauge on a sim-time
cadence into time series, which is how "transitioner backlog over the run"
becomes a plottable artefact rather than a final number.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)
#: Default streaming quantiles tracked by every histogram.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        """Create the counter at zero."""
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """An instantaneous level: set explicitly, or backed by a callable."""

    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(self, name: str, help: str = "",
                 fn: _t.Callable[[], float] | None = None) -> None:
        """Create the gauge; *fn*, when given, supplies the live value."""
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Overwrite the level (explicit gauges only)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = float(value)

    def add(self, amount: float) -> None:
        """Shift the level by *amount* (may be negative)."""
        self.set(self._value + amount)

    @property
    def value(self) -> float:
        """Current level — the callback's answer when callback-backed."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self.value:g}>"


class _P2Estimator:
    """Jain & Chlamtac's P² streaming quantile estimator (constant memory)."""

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "n")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.n = 0

    def observe(self, x: float) -> None:
        self.n += 1
        if len(self._heights) < 5:
            self._heights.append(x)
            self._heights.sort()
            return
        h = self._heights
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= x < h[i + 1])
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            pos, prev, nxt = (self._positions[i], self._positions[i - 1],
                              self._positions[i + 1])
            if (d >= 1.0 and nxt - pos > 1.0) or (d <= -1.0 and prev - pos < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabolic estimate escaped; fall back to linear
                    h[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + d / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (p[j] - p[i])

    def estimate(self) -> float:
        if not self._heights:
            return math.nan
        if self.n < 5:
            # Exact small-sample quantile over the sorted buffer.
            idx = min(len(self._heights) - 1,
                      int(self.q * (len(self._heights) - 1) + 0.5))
            return self._heights[idx]
        return self._heights[2]


class Histogram:
    """Fixed-bucket distribution plus P² streaming quantile estimates."""

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "total",
                 "min", "max", "_estimators")

    def __init__(self, name: str, help: str = "",
                 buckets: _t.Sequence[float] = DEFAULT_BUCKETS,
                 quantiles: _t.Sequence[float] = DEFAULT_QUANTILES) -> None:
        """Create an empty histogram with the given bucket bounds."""
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = tuple(buckets)
        #: counts[i] observes values <= bounds[i]; the last slot is +inf.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._estimators = {q: _P2Estimator(q) for q in quantiles}

    def observe(self, value: float) -> None:
        """Record one observation into buckets and quantile estimators."""
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        for est in self._estimators.values():
            est.observe(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Streaming estimate of quantile *q* (must be tracked)."""
        return self._estimators[q].estimate()

    def quantiles(self) -> dict[float, float]:
        """All tracked quantile estimates, keyed by q."""
        return {q: est.estimate() for q, est in self._estimators.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


Instrument = _t.Union[Counter, Gauge, Histogram]


@dataclasses.dataclass(frozen=True, slots=True)
class Sample:
    """One gauge observation taken by the :class:`Sampler`."""

    time: float
    value: float


class MetricsRegistry:
    """Owns every instrument by name; get-or-create, type-checked."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        #: Gauge time series filled in by the :class:`Sampler`.
        self.series: dict[str, list[Sample]] = {}

    def _get_or_create(self, name: str, factory: _t.Callable[[], Instrument],
                       cls: type) -> _t.Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(f"metric {name!r} is a {type(inst).__name__}, "
                            f"not a {cls.__name__}")
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the :class:`Counter` called *name*."""
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "",
              fn: _t.Callable[[], float] | None = None) -> Gauge:
        """Get or create the :class:`Gauge` called *name*."""
        gauge = self._get_or_create(name, lambda: Gauge(name, help, fn=fn), Gauge)
        if fn is not None and gauge._fn is None:
            gauge._fn = fn  # upgrade an explicit gauge to callback-backed
        return gauge

    def histogram(self, name: str, help: str = "",
                  buckets: _t.Sequence[float] = DEFAULT_BUCKETS,
                  quantiles: _t.Sequence[float] = DEFAULT_QUANTILES) -> Histogram:
        """Get or create the :class:`Histogram` called *name*."""
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets, quantiles), Histogram)

    # -- introspection -------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Instrument | None:
        """The instrument called *name*, or None."""
        return self._instruments.get(name)

    def instruments(self) -> list[Instrument]:
        """Every registered instrument, sorted by name."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def sample_gauges(self, time: float) -> None:
        """Append every gauge's current value to its time series."""
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Gauge):
                self.series.setdefault(name, []).append(
                    Sample(time=time, value=inst.value))

    def snapshot(self) -> dict[str, _t.Any]:
        """JSON-ready dump of every instrument (and gauge series extents)."""
        out: dict[str, _t.Any] = {}
        for inst in self.instruments():
            if isinstance(inst, Counter):
                out[inst.name] = {"type": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                entry: dict[str, _t.Any] = {"type": "gauge", "value": inst.value}
                series = self.series.get(inst.name)
                if series:
                    values = [s.value for s in series]
                    entry["samples"] = len(series)
                    entry["series_max"] = max(values)
                    entry["series_mean"] = sum(values) / len(values)
                out[inst.name] = entry
            else:
                out[inst.name] = {
                    "type": "histogram",
                    "count": inst.count,
                    "mean": None if inst.count == 0 else inst.mean,
                    "min": None if inst.count == 0 else inst.min,
                    "max": None if inst.count == 0 else inst.max,
                    "quantiles": {
                        f"p{int(q * 100)}": (None if inst.count == 0 else v)
                        for q, v in inst.quantiles().items()
                    },
                    "buckets": dict(zip([*map(str, inst.bounds), "+inf"],
                                        inst.bucket_counts)),
                }
        return out

    def render(self) -> str:
        """Plain-text summary, one instrument per line, sorted by name."""
        lines = []
        for inst in self.instruments():
            if isinstance(inst, Counter):
                lines.append(f"{inst.name:44s} counter   {inst.value:12g}")
            elif isinstance(inst, Gauge):
                series = self.series.get(inst.name)
                peak = (f"  peak {max(s.value for s in series):g}"
                        if series else "")
                lines.append(f"{inst.name:44s} gauge     {inst.value:12g}{peak}")
            else:
                if inst.count == 0:
                    lines.append(f"{inst.name:44s} histogram        (empty)")
                else:
                    qs = " ".join(f"p{int(q * 100)}={v:.3g}"
                                  for q, v in sorted(inst.quantiles().items()))
                    lines.append(
                        f"{inst.name:44s} histogram n={inst.count:<7d} "
                        f"mean={inst.mean:.3g} {qs}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MetricsRegistry {len(self._instruments)} instruments>"


class Sampler:
    """Snapshots every gauge into ``registry.series`` on a sim-time cadence."""

    def __init__(self, sim: "Simulator", registry: MetricsRegistry,
                 period_s: float = 30.0) -> None:
        """Start the sampling process on *sim* with the given period."""
        if period_s <= 0:
            raise ValueError("sampler period must be positive")
        self.sim = sim
        self.registry = registry
        self.period_s = period_s
        self.samples_taken = 0
        self._proc = sim.process(self._run(), name="obs:sampler")

    def _run(self) -> _t.Generator:
        while True:
            self.registry.sample_gauges(self.sim.now)
            self.samples_taken += 1
            yield self.period_s

    def stop(self) -> None:
        """Interrupt the sampling process (idempotent)."""
        if self._proc.alive:
            self._proc.interrupt("sampler stopped")
