"""Observability: metrics, span timelines, trace export, self-profiling.

The layer every perf/robustness change measures itself against:

- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, histograms (fixed buckets + streaming quantiles) and a
  sim-time :class:`Sampler`;
- :mod:`repro.obs.spans` — :class:`SpanBuilder` folding flat trace
  records into per-result / per-RPC span timelines with leak detection;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), JSONL, and plain-text run summaries;
- :mod:`repro.obs.probes` — standard queue-depth gauges plus the
  wall-clock engine :class:`SelfProfiler`.
"""

from .export import (
    chrome_trace_events,
    chrome_trace_json,
    run_summary,
    trace_to_jsonl,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    Sampler,
)
from .probes import SelfProfiler, attach_standard_probes
from .spans import Instant, Span, SpanBuilder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "Sampler",
    "Span",
    "Instant",
    "SpanBuilder",
    "chrome_trace_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "trace_to_jsonl",
    "run_summary",
    "SelfProfiler",
    "attach_standard_probes",
]
