"""Stitch flat trace records into hierarchical span timelines.

The paper's headline artefacts are *timelines*: Table I makespans and the
Fig. 4 backoff-straggler pathology only make sense when you can see each
result's download → compute → upload → report-wait phases laid out over
simulated time next to the server daemons' activity.  The models already
emit flat :class:`~repro.sim.trace.TraceRecord` rows; a :class:`SpanBuilder`
registered as a live ``Tracer.tap()`` folds them into:

- one **result span** per assignment (``sched.assign`` → ``sched.report``)
  on the executing host's track, with child phase spans;
- one **RPC span** per scheduler round-trip (``client.rpc_start`` →
  ``client.rpc_done``) on the host's track;
- **instant events** for backoffs and every server-daemon action on the
  daemon's own track.

Spans still open at end-of-run (a task assigned but never reported — the
churn/straggler signature) are drained via
:meth:`~repro.sim.trace.IntervalAccumulator.close_all` and flagged
``leaked`` so the run summary can report them instead of silently losing
them.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..sim import IntervalAccumulator, TraceRecord, Tracer

#: Track name for per-host timelines.
HOST_TRACK = "host"
#: Track names for the server-side daemons, in display order.
DAEMON_TRACKS = ("scheduler", "feeder", "transitioner", "validator",
                 "assimilator", "jobtracker", "dataserver", "faults")

#: Trace kinds routed to each daemon track (prefix match on ``kind.``).
_DAEMON_PREFIXES: dict[str, str] = {
    "sched": "scheduler",
    "transitioner": "transitioner",
    "validator": "validator",
    "assimilator": "assimilator",
    "jobtracker": "jobtracker",
    "server": "dataserver",
    "dataserver": "dataserver",
    "flow": "dataserver",
    "fault": "faults",
}


@dataclasses.dataclass(slots=True)
class Span:
    """A closed (or force-closed) interval on one track."""

    name: str
    track: str
    start: float
    end: float
    category: str = "task"
    args: dict[str, _t.Any] = dataclasses.field(default_factory=dict)
    children: list["Span"] = dataclasses.field(default_factory=list)
    leaked: bool = False

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start


@dataclasses.dataclass(slots=True)
class Instant:
    """A zero-duration marker on one track."""

    name: str
    track: str
    time: float
    category: str = "event"
    args: dict[str, _t.Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(slots=True)
class _ResultState:
    """Per-result accumulation between ``sched.assign`` and ``sched.report``."""

    result_id: int
    host: str
    assigned_at: float
    job: str | None = None
    kind: str | None = None
    index: int | None = None
    download_start: float | None = None
    compute_start: float | None = None
    runtime: float | None = None
    ready_at: float | None = None


class SpanBuilder:
    """Live trace observer that assembles the span timeline.

    Attach with ``SpanBuilder(tracer)`` (registers itself as a tap) before
    the run starts; afterwards call :meth:`finish` once, then read
    ``spans``, ``instants``, and ``leaked``.
    """

    def __init__(self, tracer: Tracer) -> None:
        """Subscribe to *tracer* and start assembling spans."""
        self.tracer = tracer
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: Result spans force-closed at end-of-run (assigned, never reported).
        self.leaked: list[Span] = []
        self._results: dict[int, _ResultState] = {}
        self._result_intervals = IntervalAccumulator()
        self._rpc_open: dict[str, tuple[float, float]] = {}  # host -> (t, work_req)
        self._fault_open: dict[_t.Any, TraceRecord] = {}  # fault id -> begin rec
        self._finished = False
        tracer.tap(self._on_record)

    # -- tap ------------------------------------------------------------------
    def _on_record(self, rec: TraceRecord) -> None:
        handler = self._HANDLERS.get(rec.kind)
        if handler is not None:
            handler(self, rec)
        else:
            self._generic_instant(rec)

    def _generic_instant(self, rec: TraceRecord) -> None:
        track = _DAEMON_PREFIXES.get(rec.kind.split(".", 1)[0])
        if track is None:
            return  # unknown substrate kind; not part of the timeline
        self.instants.append(Instant(
            name=rec.kind, track=f"daemon:{track}", time=rec.time,
            args=dict(rec.fields)))

    # -- per-result span machinery -------------------------------------------
    def _on_assign(self, rec: TraceRecord) -> None:
        rid = rec["result"]
        self._results[rid] = _ResultState(
            result_id=rid, host=rec["host"], assigned_at=rec.time,
            job=rec.get("job"), kind=rec.get("kind"), index=rec.get("index"))
        self._result_intervals.open(rid, rec.time)
        self._generic_instant(rec)

    def _on_download_start(self, rec: TraceRecord) -> None:
        st = self._results.get(rec["result"])
        if st is not None:
            st.download_start = rec.time

    def _on_compute_start(self, rec: TraceRecord) -> None:
        st = self._results.get(rec["result"])
        if st is not None:
            st.compute_start = rec.time
            st.runtime = rec.get("runtime")

    def _on_ready(self, rec: TraceRecord) -> None:
        st = self._results.get(rec["result"])
        if st is not None:
            st.ready_at = rec.time

    def _on_report(self, rec: TraceRecord) -> None:
        rid = rec["result"]
        st = self._results.pop(rid, None)
        if st is None:
            return  # reported without a traced assignment (partial trace)
        self._result_intervals.close(rid, rec.time)
        self.spans.append(self._build_result_span(
            st, end=rec.time, success=bool(rec.get("success", True))))
        self._generic_instant(rec)

    def _on_failed(self, rec: TraceRecord) -> None:
        # The failure still flows through a later sched.report (which closes
        # the span with success=False); mark the moment it happened too.
        self.instants.append(Instant(
            name="task-failed", track=f"{HOST_TRACK}:{rec['host']}",
            time=rec.time, category="error", args=dict(rec.fields)))

    def _build_result_span(self, st: _ResultState, end: float,
                           success: bool, leaked: bool = False) -> Span:
        label = (f"result {st.result_id}" if st.job is None
                 else f"{st.job}/{st.kind}[{st.index}] r{st.result_id}")
        span = Span(
            name=label, track=f"{HOST_TRACK}:{st.host}",
            start=st.assigned_at, end=end, category="result",
            args={"result": st.result_id, "job": st.job, "kind": st.kind,
                  "index": st.index, "success": success},
            leaked=leaked)
        phases: list[tuple[str, float | None, float | None]] = []
        compute_end = (None if st.compute_start is None or st.runtime is None
                       else st.compute_start + st.runtime)
        phases.append(("download", st.download_start, st.compute_start))
        phases.append(("compute", st.compute_start, compute_end))
        phases.append(("upload", compute_end, st.ready_at))
        phases.append(("report-wait", st.ready_at, end))
        for name, start, stop in phases:
            if start is None:
                continue
            stop = end if stop is None else min(stop, end)
            if stop < start:
                continue
            span.children.append(Span(
                name=name, track=span.track, start=start, end=stop,
                category="phase", args={"result": st.result_id},
                leaked=leaked))
        return span

    # -- RPC spans -------------------------------------------------------------
    def _on_rpc_start(self, rec: TraceRecord) -> None:
        self._rpc_open[rec["host"]] = (rec.time, rec.get("work_req", 0.0))

    def _on_rpc_done(self, rec: TraceRecord) -> None:
        host = rec["host"]
        opened = self._rpc_open.pop(host, None)
        if opened is None:
            return
        start, work_req = opened
        self.spans.append(Span(
            name="sched-rpc", track=f"{HOST_TRACK}:{host}", start=start,
            end=rec.time, category="rpc",
            args={"work_req": work_req,
                  "n_assignments": rec.get("n_assignments", 0),
                  "no_work": rec.get("no_work", False)}))

    def _on_backoff(self, rec: TraceRecord) -> None:
        self.instants.append(Instant(
            name=f"backoff x{rec.get('count', '?')}",
            track=f"{HOST_TRACK}:{rec['host']}", time=rec.time,
            category="backoff", args=dict(rec.fields)))

    def _on_retry(self, rec: TraceRecord) -> None:
        """Client recovery actions (download/upload/RPC retries) — instants
        on the host track, so an injected outage on the faults track lines
        up visually with the retries it caused."""
        self.instants.append(Instant(
            name=rec.kind.split(".", 1)[1].replace("_", "-"),
            track=f"{HOST_TRACK}:{rec['host']}", time=rec.time,
            category="retry", args=dict(rec.fields)))

    def _on_timeout(self, rec: TraceRecord) -> None:
        """Deadline timeout: the server gave up on this result — close its
        span (the host will never report it; without this, every timed-out
        result shows up as a leak)."""
        rid = rec["result"]
        st = self._results.pop(rid, None)
        self._generic_instant(rec)
        if st is None:
            return
        self._result_intervals.close(rid, rec.time)
        span = self._build_result_span(st, end=rec.time, success=False)
        span.args["outcome"] = "deadline-timeout"
        self.spans.append(span)

    # -- fault spans ------------------------------------------------------------
    def _on_fault_begin(self, rec: TraceRecord) -> None:
        self._fault_open[rec.get("fault")] = rec

    def _on_fault_end(self, rec: TraceRecord) -> None:
        begin = self._fault_open.pop(rec.get("fault"), None)
        if begin is None:
            return
        self.spans.append(self._build_fault_span(begin, end=rec.time))

    def _build_fault_span(self, begin: TraceRecord, end: float,
                          leaked: bool = False) -> Span:
        target = begin.get("target")
        label = begin.get("kind", "fault")
        if target:
            label = f"{label}:{target}"
        return Span(name=f"fault:{label}", track="daemon:faults",
                    start=begin.time, end=end, category="fault",
                    args=dict(begin.fields), leaked=leaked)

    _HANDLERS: dict[str, _t.Callable[["SpanBuilder", TraceRecord], None]] = {
        "sched.assign": _on_assign,
        "task.download_start": _on_download_start,
        "task.compute_start": _on_compute_start,
        "task.ready": _on_ready,
        "task.failed": _on_failed,
        "sched.report": _on_report,
        "transitioner.timeout": _on_timeout,
        "client.rpc_start": _on_rpc_start,
        "client.rpc_done": _on_rpc_done,
        "client.backoff": _on_backoff,
        "client.download_retry": _on_retry,
        "client.upload_retry": _on_retry,
        "client.rpc_failed": _on_retry,
        "fault.begin": _on_fault_begin,
        "fault.end": _on_fault_end,
    }

    # -- end of run -------------------------------------------------------------
    def finish(self, now: float) -> list[Span]:
        """Close leaked spans at *now* and return them (idempotent)."""
        if self._finished:
            return self.leaked
        self._finished = True
        for rid, _start, end in self._result_intervals.close_all(now):
            st = self._results.pop(rid, None)
            if st is None:
                continue
            span = self._build_result_span(st, end=end, success=False,
                                           leaked=True)
            self.spans.append(span)
            self.leaked.append(span)
        for host, (start, work_req) in sorted(self._rpc_open.items()):
            span = Span(name="sched-rpc", track=f"{HOST_TRACK}:{host}",
                        start=start, end=max(start, now), category="rpc",
                        args={"work_req": work_req}, leaked=True)
            self.spans.append(span)
            self.leaked.append(span)
        self._rpc_open.clear()
        # Faults still active at end-of-run (plan outlasted the job).
        for _fid, begin in sorted(self._fault_open.items(),
                                  key=lambda kv: str(kv[0])):
            span = self._build_fault_span(begin, end=max(begin.time, now),
                                          leaked=True)
            self.spans.append(span)
            self.leaked.append(span)
        self._fault_open.clear()
        return self.leaked

    @property
    def open_count(self) -> int:
        """Result spans currently open (assigned, not yet reported)."""
        return self._result_intervals.open_count

    def open_result_ids(self) -> list[int]:
        """Result ids with an open span (for auditor cross-checks)."""
        return sorted(self._results)

    def tracks(self) -> list[str]:
        """Every track referenced, hosts first then daemons, sorted."""
        seen = {s.track for s in self.spans} | {i.track for i in self.instants}
        hosts = sorted(t for t in seen if t.startswith(f"{HOST_TRACK}:"))
        daemons = [f"daemon:{d}" for d in DAEMON_TRACKS
                   if f"daemon:{d}" in seen]
        return hosts + daemons
