"""Standard probes: queue-depth gauges and the engine self-profiler.

:func:`attach_standard_probes` registers the gauges Anderson's BOINC
server-status page exposes for a real project — scheduler RPC concurrency
and queue depth, per-daemon backlogs, in-flight network flows and link
utilisation, client task-state occupancy — against a
:class:`~repro.obs.metrics.MetricsRegistry`, where a
:class:`~repro.obs.metrics.Sampler` turns them into time series.

:class:`SelfProfiler` hooks :attr:`Simulator.dispatch_hook` and aggregates
*wall-clock* time per callback kind (process name prefix or function
qualname), which is how we find the simulator's own hot spots.  Wall-clock
readings never feed back into simulated time or exported traces, so
profiling cannot perturb determinism.
"""

from __future__ import annotations

import typing as _t

from ..sim import Simulator
from ..sim.process import Process
from .metrics import MetricsRegistry

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..campaign.coordinator import CampaignCoordinator
    from ..core.system import VolunteerCloud
    from ..gateway.server import GatewayServer


def attach_standard_probes(cloud: "VolunteerCloud",
                           registry: MetricsRegistry | None = None
                           ) -> MetricsRegistry:
    """Register the standard gauge set for a :class:`repro.core.system.VolunteerCloud`.

    Idempotent per registry (gauges are get-or-create).  Returns the
    registry the probes were attached to (``cloud.metrics`` by default).
    """
    from ..boinc.client import TaskState
    from ..boinc.model import WorkunitState

    reg = registry if registry is not None else cloud.metrics
    server = cloud.server
    net = cloud.net

    reg.gauge("sched.rpc_in_use", "scheduler RPC slots in use",
              fn=lambda: server._rpc_slots.in_use)
    reg.gauge("sched.rpc_queue_depth", "RPCs queued for a scheduler slot",
              fn=lambda: server._rpc_slots.waiting)
    reg.gauge("daemon.feeder.cache_visible", "results in the feeder cache",
              fn=lambda: len(server._feeder_visible))
    reg.gauge("daemon.transitioner.backlog",
              "dirty workunits awaiting a transitioner pass",
              fn=lambda: len(server._dirty_wus))
    reg.gauge("daemon.validator.backlog",
              "workunits flagged need_validate",
              fn=lambda: sum(1 for wu in server.db.workunits.values()
                             if wu.need_validate
                             and wu.state is WorkunitState.ACTIVE))
    reg.gauge("daemon.assimilator.backlog",
              "validated workunits awaiting assimilation",
              fn=lambda: sum(1 for wu in server.db.workunits.values()
                             if wu.state is WorkunitState.VALIDATED))
    reg.gauge("net.flows_active", "in-flight bulk transfers",
              fn=lambda: net.flownet.active_count)
    reg.gauge("net.components", "independent flow allocation domains",
              fn=lambda: net.flownet.allocator.component_count())
    reg.gauge("net.server_uplink_util", "server uplink utilisation 0..1",
              fn=lambda: net.flownet.utilisation(cloud.server_host.uplink))
    reg.gauge("net.server_downlink_util", "server downlink utilisation 0..1",
              fn=lambda: net.flownet.utilisation(cloud.server_host.downlink))
    reg.gauge("sim.queue_depth", "live callbacks in the event queue",
              fn=cloud.sim.pending)
    _attach_lp_probes(reg, cloud.sim)

    def _occupancy(state: str) -> _t.Callable[[], float]:
        def count() -> float:
            return sum(1 for c in cloud.clients
                       for t in c.tasks if t.state == state)
        return count

    for state in (TaskState.DOWNLOADING, TaskState.WAITING_CPU,
                  TaskState.COMPUTING, TaskState.UPLOADING,
                  TaskState.READY_TO_REPORT):
        reg.gauge(f"client.tasks_{state}", f"client tasks in state {state}",
                  fn=_occupancy(state))
    return reg


def attach_coordinator_probes(coordinator: "CampaignCoordinator",
                              registry: MetricsRegistry | None = None
                              ) -> MetricsRegistry:
    """Register liveness/occupancy gauges for a campaign coordinator.

    The control-plane analogue of :func:`attach_standard_probes`: live
    worker count plus the cell lifecycle occupancy of the coordinator's
    :class:`~repro.campaign.lease.LeaseTable` (pending / leased / done /
    failed).  Idempotent per registry; returns the registry the probes
    were attached to (``coordinator.metrics`` by default).
    """
    from ..campaign import lease as _lease

    reg = registry if registry is not None else coordinator.metrics
    table = coordinator.table
    reg.gauge("campaign.workers.live", "registered, not-yet-failed workers",
              fn=lambda: len(table.live_workers()))
    for status in (_lease.PENDING, _lease.LEASED,
                   _lease.DONE, _lease.FAILED):
        reg.gauge(f"campaign.cells.{status}",
                  f"campaign cells currently {status}",
                  fn=lambda s=status: table.count(s))
    return reg


def attach_gateway_probes(gateway: "GatewayServer",
                          registry: MetricsRegistry | None = None
                          ) -> MetricsRegistry:
    """Register live-deployment gauges for a :class:`repro.gateway.GatewayServer`.

    The wall-clock analogue of :func:`attach_standard_probes`: open HTTP
    connections, feeder-cache occupancy, database occupancy (hosts,
    unsent / in-progress results), blob-store size, and running jobs.
    Idempotent per registry; returns the registry the probes were
    attached to (``gateway.metrics`` by default).
    """
    from ..boinc.model import ResultState

    reg = registry if registry is not None else gateway.metrics
    core = gateway.core
    reg.gauge("gateway.connections_active", "open HTTP connections",
              fn=lambda: gateway.connections_active)
    reg.gauge("daemon.feeder.cache_visible", "results in the feeder cache",
              fn=lambda: len(core._feeder_visible))
    reg.gauge("gateway.hosts", "registered volunteer hosts",
              fn=lambda: len(core.db.hosts))
    reg.gauge("gateway.results_unsent", "results waiting for a host",
              fn=lambda: len(core.db.unsent_results()))
    reg.gauge("gateway.results_in_progress", "results out on lease",
              fn=lambda: sum(1 for r in core.db.results.values()
                             if r.state is ResultState.IN_PROGRESS))
    reg.gauge("gateway.blobs", "blobs held by the store",
              fn=lambda: len(gateway.store))
    reg.gauge("gateway.jobs_running", "live jobs not yet sealed",
              fn=lambda: sum(1 for j in gateway.jobs.jobs.values()
                             if j.state == "running"))
    return reg


def _attach_lp_probes(reg: MetricsRegistry, sim: Simulator) -> None:
    """Per-logical-process gauges for the parallel engine (no-op otherwise).

    Exposes the conservative-synchronization health signals named in the
    parallel-DES design: per-LP queue occupancy, horizon lag behind each
    safe window's base time, window throughput, and the cross-partition
    deliveries that arrived below the lookahead (the "rollback-free
    window" a distributed backend would have to restructure).
    """
    from ..sim import ParallelSimulator

    if not isinstance(sim, ParallelSimulator):
        return
    reg.gauge("sim.windows", "conservative safe windows executed",
              fn=lambda: sim.window_count)
    reg.gauge("sim.window_events_mean", "mean events per safe window",
              fn=sim.mean_window_events)
    reg.gauge("sim.cross_deliveries", "cross-partition deliveries received",
              fn=sim.cross_deliveries)

    def _lp_gauge(lp: _t.Any, field: str) -> _t.Callable[[], float]:
        def read() -> float:
            value = getattr(lp, field)
            return float(value() if callable(value) else value)
        return read

    for lp in sim.lps:
        prefix = f"sim.lp{lp.index}"
        reg.gauge(f"{prefix}.queue_depth", f"LP {lp.index} live callbacks",
                  fn=_lp_gauge(lp, "pending"))
        reg.gauge(f"{prefix}.cross_in",
                  f"LP {lp.index} cross-partition deliveries",
                  fn=_lp_gauge(lp, "cross_in"))
        reg.gauge(f"{prefix}.below_lookahead",
                  f"LP {lp.index} deliveries under the lookahead",
                  fn=_lp_gauge(lp, "below_lookahead"))
        reg.gauge(f"{prefix}.lag_max",
                  f"LP {lp.index} max horizon lag behind window base (s)",
                  fn=_lp_gauge(lp, "lag_max"))


class SelfProfiler:
    """Wall-clock dispatch-time accounting per callback kind.

    A *kind* is the process-name prefix for generator processes (``task``,
    ``client``, ``rpc``, ``feeder`` …) and the function qualname for bare
    callbacks — coarse enough to aggregate, fine enough to point at the
    hot subsystem.
    """

    def __init__(self, sim: Simulator | None = None) -> None:
        """Create the profiler; installs on *sim* immediately when given."""
        self.totals: dict[str, list[float]] = {}  # kind -> [count, seconds]
        self._sim: Simulator | None = None
        if sim is not None:
            self.install(sim)

    # -- lifecycle ------------------------------------------------------------
    def install(self, sim: Simulator) -> "SelfProfiler":
        """Hook the simulator's dispatch loop; returns self."""
        if sim.dispatch_hook is not None:
            raise RuntimeError("simulator already has a dispatch hook")
        sim.dispatch_hook = self._observe
        self._sim = sim
        return self

    def uninstall(self) -> None:
        """Remove the dispatch hook (idempotent)."""
        if self._sim is not None and self._sim.dispatch_hook == self._observe:
            self._sim.dispatch_hook = None
        self._sim = None

    # -- accounting ------------------------------------------------------------
    def _observe(self, fn: _t.Callable[..., None], args: tuple,
                 elapsed: float) -> None:
        entry = self.totals.setdefault(self._classify(fn), [0, 0.0])
        entry[0] += 1
        entry[1] += elapsed

    @staticmethod
    def _classify(fn: _t.Callable[..., None]) -> str:
        owner = getattr(fn, "__self__", None)
        if isinstance(owner, Process):
            name = owner.name or "process"
            return f"process:{name.split(':', 1)[0]}"
        if owner is not None:
            return f"{type(owner).__name__}.{fn.__name__}"
        return getattr(fn, "__qualname__", repr(fn))

    # -- reporting ------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds spent dispatching, all kinds."""
        return sum(seconds for _count, seconds in self.totals.values())

    def top(self, n: int = 5) -> list[tuple[str, int, float]]:
        """``(kind, dispatch_count, wall_seconds)`` rows, hottest first."""
        rows = [(kind, int(count), seconds)
                for kind, (count, seconds) in self.totals.items()]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows[:n]

    def render(self, top: int = 5) -> str:
        """Plain-text profile of the *top* costliest callback kinds."""
        total = self.total_seconds
        lines = [f"total dispatch wall time: {total * 1e3:.1f} ms over "
                 f"{sum(int(c) for c, _s in self.totals.values())} callbacks"]
        for kind, count, seconds in self.top(top):
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"  {kind:32s} {count:8d} calls "
                         f"{seconds * 1e3:9.1f} ms ({share:4.1f}%)")
        return "\n".join(lines)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-ready {kind: {count, seconds}} dump."""
        return {kind: {"count": count, "seconds": seconds}
                for kind, (count, seconds) in sorted(self.totals.items())}
