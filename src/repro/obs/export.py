"""Exporters: Chrome trace-event JSON (Perfetto), JSONL, and run summaries.

The Chrome trace-event format is the lingua franca of timeline viewers —
``chrome://tracing`` and https://ui.perfetto.dev both load it directly.
We emit one *process* for the volunteer hosts and one for the project
server, with one *thread* (track) per host and per server daemon, complete
("X") events for spans, and instant ("i") events for daemon actions and
backoffs.  Timestamps are simulated microseconds, so a run's trace is a
pure function of its seed: byte-identical across repeats, which the golden
determinism test asserts.
"""

from __future__ import annotations

import json
import typing as _t

from ..sim import Tracer
from .metrics import MetricsRegistry
from .spans import DAEMON_TRACKS, HOST_TRACK, Instant, Span, SpanBuilder

if _t.TYPE_CHECKING:  # pragma: no cover
    from .probes import SelfProfiler

#: Synthetic pids for the two Chrome trace processes.
_HOSTS_PID = 1
_SERVER_PID = 2


def _track_ids(builder: SpanBuilder) -> dict[str, tuple[int, int]]:
    """Map track name -> (pid, tid), hosts then daemons, deterministic."""
    out: dict[str, tuple[int, int]] = {}
    tid = 1
    for track in builder.tracks():
        if track.startswith(f"{HOST_TRACK}:"):
            out[track] = (_HOSTS_PID, tid)
            tid += 1
    for i, daemon in enumerate(DAEMON_TRACKS, start=1):
        track = f"daemon:{daemon}"
        if track in builder.tracks():
            out[track] = (_SERVER_PID, i)
    return out


def _json_safe(args: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    return {k: (v if isinstance(v, (int, float, str, bool, type(None)))
                else repr(v))
            for k, v in args.items()}


def chrome_trace_events(builder: SpanBuilder) -> list[dict]:
    """The ``traceEvents`` list for *builder*'s timeline."""
    ids = _track_ids(builder)
    events: list[dict] = [
        {"ph": "M", "pid": _HOSTS_PID, "name": "process_name",
         "args": {"name": "volunteer hosts"}},
        {"ph": "M", "pid": _SERVER_PID, "name": "process_name",
         "args": {"name": "project server"}},
    ]
    for track, (pid, tid) in sorted(ids.items(), key=lambda kv: kv[1]):
        label = track.split(":", 1)[1]
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": label}})

    def emit_span(span: Span) -> None:
        pid, tid = ids[span.track]
        args = _json_safe(span.args)
        if span.leaked:
            args["leaked"] = True
        events.append({
            "ph": "X", "pid": pid, "tid": tid, "cat": span.category,
            "name": span.name, "ts": span.start * 1e6,
            "dur": span.duration * 1e6, "args": args,
        })
        for child in span.children:
            emit_span(child)

    for span in sorted(builder.spans, key=_span_order):
        emit_span(span)
    for inst in sorted(builder.instants, key=_instant_order):
        pid, tid = ids[inst.track]
        events.append({
            "ph": "i", "pid": pid, "tid": tid, "cat": inst.category,
            "name": inst.name, "ts": inst.time * 1e6, "s": "t",
            "args": _json_safe(inst.args),
        })
    return events


def _span_order(span: Span) -> tuple:
    return (span.start, span.track, span.name)


def _instant_order(inst: Instant) -> tuple:
    return (inst.time, inst.track, inst.name)


def chrome_trace_json(builder: SpanBuilder, indent: int | None = None) -> str:
    """Serialise the timeline as a Chrome trace-event JSON document."""
    doc = {
        "traceEvents": chrome_trace_events(builder),
        "displayTimeUnit": "ms",
        "metadata": {"format": "repro.obs chrome trace",
                     "clock": "simulated-microseconds"},
    }
    return json.dumps(doc, indent=indent, sort_keys=True)


def write_chrome_trace(builder: SpanBuilder, path: str) -> None:
    """Write the builder's spans as a Chrome trace-event file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(builder))


def trace_to_jsonl(tracer: Tracer, out: _t.TextIO | None = None,
                   kinds: _t.Sequence[str] | None = None) -> str:
    """One JSON object per trace record — greppable, pandas-loadable."""
    lines = []
    for rec in tracer.records:
        if kinds is not None and rec.kind not in kinds:
            continue
        row: dict[str, _t.Any] = {"time": rec.time, "kind": rec.kind}
        for key, value in _json_safe(rec.fields).items():
            # A payload field may shadow record metadata (e.g. sched.assign
            # carries kind="map"); keep both under distinct keys.
            row[f"field.{key}" if key in row else key] = value
        lines.append(json.dumps(row, sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if out is not None:
        out.write(text)
    return text


def run_summary(tracer: Tracer,
                metrics: MetricsRegistry | None = None,
                builder: SpanBuilder | None = None,
                profiler: "SelfProfiler | None" = None,
                top_kinds: int = 10) -> str:
    """Plain-text end-of-run report: traffic, metrics, leaks, hot spots."""
    lines: list[str] = ["== run summary =="]
    total = sum(tracer.counts.values())
    lines.append(f"trace records: {len(tracer.records)} kept / {total} seen")
    busiest = sorted(tracer.counts.items(), key=lambda kv: (-kv[1], kv[0]))
    for kind, count in busiest[:top_kinds]:
        lines.append(f"  {kind:40s} {count:8d}")
    if builder is not None:
        lines.append(f"spans: {len(builder.spans)} closed, "
                     f"{len(builder.instants)} instants, "
                     f"{len(builder.leaked)} leaked")
        for span in builder.leaked[:top_kinds]:
            lines.append(f"  LEAKED {span.name} on {span.track} "
                         f"open {span.duration:.1f}s")
    if metrics is not None:
        lines.append("-- metrics --")
        lines.append(metrics.render())
    if profiler is not None:
        lines.append("-- engine self-profile (wall-clock dispatch time) --")
        lines.append(profiler.render(top=5))
    return "\n".join(lines)
