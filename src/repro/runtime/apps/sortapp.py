"""Distributed sort: range-partitioned TeraSort-style ordering.

Unlike the hash partitioner, sort needs *range* partitioning so that
concatenating reducer outputs in partition order yields a globally sorted
sequence.  Partition boundaries are taken from a sample of the input
(:func:`sample_boundaries`), as real distributed sorts do.
"""

from __future__ import annotations

import bisect
import typing as _t

from ..api import MapReduceApp


def sample_boundaries(keys: _t.Sequence[bytes], n_reducers: int) -> list[bytes]:
    """Pick ``n_reducers - 1`` split points from a key sample."""
    if n_reducers < 1:
        raise ValueError("n_reducers must be >= 1")
    if n_reducers == 1 or not keys:
        return []
    ordered = sorted(keys)
    return [ordered[len(ordered) * i // n_reducers]
            for i in range(1, n_reducers)]


class DistributedSort(MapReduceApp):
    """Sort input lines; reducer *r* receives the r-th key range."""

    name = "sort"

    def __init__(self, boundaries: _t.Sequence[bytes]) -> None:
        """Fix the range-partition split points."""
        self.boundaries = list(boundaries)

    def map(self, key: int, value: bytes) -> _t.Iterator[tuple[bytes, None]]:
        """Emit each line as a key (sorting is all in the shuffle)."""
        yield value, None

    def reduce(self, key: bytes, values: list[None]) -> _t.Iterator[int]:
        """Emit the key's multiplicity (duplicates preserved as counts)."""
        yield len(values)

    def partition(self, key: bytes, n_reducers: int) -> int:
        """Range partition: reducer index of the first boundary > key."""
        if len(self.boundaries) != n_reducers - 1:
            raise ValueError(
                f"need {n_reducers - 1} boundaries for {n_reducers} reducers, "
                f"have {len(self.boundaries)}")
        return bisect.bisect_right(self.boundaries, key)


def merge_sorted_output(outputs_by_reducer: _t.Sequence[dict]) -> list[bytes]:
    """Concatenate per-reducer outputs (in partition order) into the
    globally sorted key sequence, expanding duplicate multiplicities."""
    merged: list[bytes] = []
    for output in outputs_by_reducer:
        for key in sorted(output):
            merged.extend([key] * output[key])
    return merged
