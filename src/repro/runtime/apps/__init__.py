"""Bundled MapReduce applications."""

from .grep import DistributedGrep, MatchCount
from .invindex import InvertedIndex
from .sortapp import DistributedSort, merge_sorted_output, sample_boundaries
from .wordcount import WordCount

__all__ = [
    "WordCount",
    "DistributedGrep",
    "MatchCount",
    "InvertedIndex",
    "DistributedSort",
    "sample_boundaries",
    "merge_sorted_output",
]
