"""Inverted index: term -> sorted list of documents containing it.

Input records are ``doc_id<TAB>text`` lines; the map emits (term, doc_id)
postings and the reduce deduplicates and sorts each posting list.  Another
Dean & Ghemawat canonical, and the heaviest of the bundled apps on the
reduce side.
"""

from __future__ import annotations

import typing as _t

from ..api import MapReduceApp


class InvertedIndex(MapReduceApp):
    """Build term -> [doc_id, ...] postings from doc-tagged lines."""

    name = "invindex"

    def map(self, key: int, value: bytes) -> _t.Iterator[tuple[bytes, bytes]]:
        """Emit (term, doc_id) postings for one tagged line."""
        doc_id, _sep, text = value.partition(b"\t")
        if not _sep:
            # Untagged line: treat the record offset as the document id.
            doc_id, text = str(key).encode(), value
        for term in text.split():
            yield term, doc_id

    def reduce(self, key: bytes, values: list[bytes]) -> _t.Iterator[list[bytes]]:
        """Deduplicate and sort the posting list of one term."""
        yield sorted(set(values))
