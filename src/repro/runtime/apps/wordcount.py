"""Word count — the paper's proof-of-concept application (Section III.C).

"The map function reads an input file word by word and outputs one line
per word, with the format 'word 1' ... The reduce application reads one
line at a time, and increments the count for each unique word."
"""

from __future__ import annotations

import typing as _t

from ..api import MapReduceApp


class WordCount(MapReduceApp):
    """Count occurrences of each whitespace-separated word."""

    name = "wordcount"

    def __init__(self, lowercase: bool = False) -> None:
        """Optionally fold words to lower case before counting."""
        self.lowercase = lowercase

    def map(self, key: int, value: bytes) -> _t.Iterator[tuple[bytes, int]]:
        """Emit (word, 1) per whitespace-separated token."""
        line = value.lower() if self.lowercase else value
        for word in line.split():
            yield word, 1

    def reduce(self, key: bytes, values: list[int]) -> _t.Iterator[int]:
        """Sum the per-word counts."""
        yield sum(values)

    # Summing is associative/commutative, so the combiner is the reducer —
    # the classic word-count optimisation (shrinks intermediate data).
    def combine(self, key: bytes, values: list[int]) -> _t.Iterator[int]:
        """Local pre-sum after each map task."""
        yield sum(values)
