"""Distributed grep: map emits matching lines, reduce passes them through.

One of the canonical MapReduce examples (Dean & Ghemawat §2.3) and a
useful contrast to word count for the "which scenarios are the most
suited" question the paper leaves open: grep is map-heavy with tiny
intermediate data, so inter-client transfers matter much less.
"""

from __future__ import annotations

import re
import typing as _t

from ..api import MapReduceApp


class DistributedGrep(MapReduceApp):
    """Find lines matching a regex; output maps pattern hits to lines."""

    name = "grep"

    def __init__(self, pattern: bytes) -> None:
        """Compile the search *pattern*."""
        self.regex = re.compile(pattern)

    def map(self, key: int, value: bytes) -> _t.Iterator[tuple[bytes, bytes]]:
        """Emit (matched text, full line) when the line matches."""
        match = self.regex.search(value)
        if match is not None:
            yield match.group(0), value

    def reduce(self, key: bytes, values: list[bytes]) -> _t.Iterator[list[bytes]]:
        """Collect the matching lines per pattern hit, sorted."""
        yield sorted(values)


class MatchCount(MapReduceApp):
    """Count matches per captured pattern (the Bloom-filter-ish variant
    discussed in the paper's related work: return small summaries, rerun
    interesting hits locally)."""

    name = "matchcount"

    def __init__(self, pattern: bytes) -> None:
        """Compile the search *pattern*."""
        self.regex = re.compile(pattern)

    def map(self, key: int, value: bytes) -> _t.Iterator[tuple[bytes, int]]:
        """Emit (match, 1) per regex hit in the line."""
        for match in self.regex.finditer(value):
            yield match.group(0), 1

    def reduce(self, key: bytes, values: list[int]) -> _t.Iterator[int]:
        """Total hits for this match text."""
        yield sum(values)

    def combine(self, key: bytes, values: list[int]) -> _t.Iterator[int]:
        """Local pre-sum after each map task."""
        yield sum(values)
