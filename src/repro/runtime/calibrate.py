"""Derive simulator cost models from measured runs of the real runtime.

The simulation's :class:`~repro.core.costmodel.MapReduceCostModel` has four
parameters; three of them (intermediate ratio, final-output ratio, and the
map/reduce throughput *ratio*) are properties of the application, not the
hardware, and can be measured by running the actual application on a
corpus sample.  :func:`measure_cost_model` does exactly that, then anchors
absolute throughput to a reference scale (by default the paper-calibrated
word-count map throughput) so simulated runs remain comparable to Table I
while data volumes reflect the *real* application.

This closes the loop between the two halves of the reproduction: the
executable runtime defines the workload, the simulator predicts its
cluster-scale behaviour.
"""

from __future__ import annotations

import dataclasses
import time

from ..core.costmodel import MapReduceCostModel
from .api import MapReduceApp
from .engine import LocalRunner


@dataclasses.dataclass(frozen=True, slots=True)
class Measurement:
    """Raw measurements from one local profiling run."""

    input_bytes: int
    intermediate_bytes: int
    output_bytes: int
    map_seconds: float
    reduce_seconds: float

    @property
    def intermediate_ratio(self) -> float:
        """Intermediate bytes per input byte (the cost model's map ratio)."""
        return self.intermediate_bytes / max(self.input_bytes, 1)

    @property
    def final_output_ratio(self) -> float:
        """Final output bytes per intermediate byte."""
        return self.output_bytes / max(self.intermediate_bytes, 1)

    @property
    def map_throughput(self) -> float:
        """Measured map bytes/s on this machine."""
        return self.input_bytes / max(self.map_seconds, 1e-9)

    @property
    def reduce_throughput(self) -> float:
        """Measured reduce bytes/s on this machine."""
        return self.intermediate_bytes / max(self.reduce_seconds, 1e-9)


def profile_app(app: MapReduceApp, corpus: bytes, n_maps: int = 8,
                n_reducers: int = 4) -> Measurement:
    """Run *app* on *corpus* locally and measure times and volumes."""
    if not corpus:
        raise ValueError("corpus must be non-empty")
    runner = LocalRunner(app, n_maps, n_reducers)
    from .splitter import split_text

    chunks = split_text(corpus, n_maps)
    blobs: dict[tuple[int, int], bytes] = {}
    t0 = time.perf_counter()
    for i, chunk in enumerate(chunks):
        _report, bs = runner.run_map_task(i, chunk)
        for r, blob in bs.items():
            blobs[(i, r)] = blob
    map_seconds = time.perf_counter() - t0
    intermediate = sum(len(b) for b in blobs.values())
    t0 = time.perf_counter()
    output_bytes = 0
    for r in range(n_reducers):
        report, _out = runner.run_reduce_task(
            r, [blobs[(i, r)] for i in range(n_maps)])
        output_bytes += report.bytes_out
    reduce_seconds = time.perf_counter() - t0
    return Measurement(
        input_bytes=len(corpus),
        intermediate_bytes=intermediate,
        output_bytes=output_bytes,
        map_seconds=map_seconds,
        reduce_seconds=reduce_seconds,
    )


def measure_cost_model(app: MapReduceApp, corpus: bytes, *,
                       n_maps: int = 8, n_reducers: int = 4,
                       anchor_map_throughput: float = 0.6e6
                       ) -> MapReduceCostModel:
    """A cost model with measured ratios, anchored to a reference scale.

    ``anchor_map_throughput`` rescales the measured absolute speeds so the
    model is expressed in "paper-reference-host" terms (the pc3001 class
    maps word count at ~0.6 MB/s): the *ratio* between this app's map and
    reduce speeds — and all data volumes — come from the measurement; only
    the overall scale is anchored.
    """
    m = profile_app(app, corpus, n_maps=n_maps, n_reducers=n_reducers)
    if anchor_map_throughput <= 0:
        raise ValueError("anchor_map_throughput must be positive")
    scale = anchor_map_throughput / m.map_throughput
    return MapReduceCostModel(
        map_throughput=anchor_map_throughput,
        reduce_throughput=max(m.reduce_throughput * scale, 1e-9),
        intermediate_ratio=m.intermediate_ratio,
        final_output_ratio=m.final_output_ratio,
    )
