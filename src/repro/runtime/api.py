"""The MapReduce programming API (what the paper defers to future work).

The paper's prototype hard-coded word count into the application; "a
'full-blown' MapReduce API" is listed as future work.  This module is that
API: users subclass :class:`MapReduceApp` (or compose mapper/reducer
callables) and run it on the local engine (:mod:`repro.runtime.engine`)
for real results, or hand its cost profile to the simulator for
cluster-scale studies.

Semantics follow the Dean & Ghemawat model the paper builds on:

- ``map(key, value) -> iterable[(k2, v2)]``
- ``reduce(k2, values) -> iterable[v3]``
- optional ``combine`` (a local reduce after each map task)
- partitioning is ``hash(k2) mod n_reducers`` — exactly the paper's
  "each map output's key ... is hashed and the output file ... decided
  based on ... modulo the number of reducers".
"""

from __future__ import annotations

import typing as _t
import zlib

K1 = _t.TypeVar("K1")
V1 = _t.TypeVar("V1")
K2 = _t.TypeVar("K2")
V2 = _t.TypeVar("V2")
V3 = _t.TypeVar("V3")

MapFn = _t.Callable[[K1, V1], _t.Iterable[tuple[K2, V2]]]
ReduceFn = _t.Callable[[K2, _t.List[V2]], _t.Iterable[V3]]


def default_partition(key: _t.Any, n_reducers: int) -> int:
    """Stable hash(key) mod n_reducers (stable across runs and processes).

    Python's builtin ``hash`` is salted per process for strings, which
    would make partition assignment nondeterministic — unacceptable for a
    system whose validator compares replica outputs bit for bit.  CRC32 of
    the repr is stable, cheap, and uniform enough.
    """
    if n_reducers < 1:
        raise ValueError("n_reducers must be >= 1")
    data = key if isinstance(key, bytes) else repr(key).encode("utf-8")
    return zlib.crc32(data) % n_reducers


class MapReduceApp:
    """Base class for MapReduce applications.

    Subclasses override :meth:`map` and :meth:`reduce`; :meth:`combine`
    defaults to None (no combiner).
    """

    #: Human-readable application name (used in file naming and traces).
    name: str = "app"

    def map(self, key: _t.Any, value: _t.Any) -> _t.Iterable[tuple[_t.Any, _t.Any]]:
        """Emit (k2, v2) pairs for one input record."""
        raise NotImplementedError

    def reduce(self, key: _t.Any, values: list) -> _t.Iterable[_t.Any]:
        """Fold all values of one key into output values."""
        raise NotImplementedError

    #: Optional combiner; when set, runs as a local reduce per map task.
    combine: ReduceFn | None = None

    def partition(self, key: _t.Any, n_reducers: int) -> int:
        """Reducer index for *key* (hash mod R by default)."""
        return default_partition(key, n_reducers)


class FnApp(MapReduceApp):
    """Compose an app from plain callables (no subclassing needed)."""

    def __init__(self, map_fn: MapFn, reduce_fn: ReduceFn,
                 combine_fn: ReduceFn | None = None,
                 name: str = "fn_app") -> None:
        """Wrap *map_fn*/*reduce_fn* (and optional combiner) as an app."""
        self._map = map_fn
        self._reduce = reduce_fn
        self.combine = combine_fn
        self.name = name

    def map(self, key, value):
        """Delegate to the wrapped map callable."""
        return self._map(key, value)

    def reduce(self, key, values):
        """Delegate to the wrapped reduce callable."""
        return self._reduce(key, values)
