"""The local MapReduce engine: really runs map/shuffle/reduce on real data.

This is the executable counterpart of the simulated BOINC-MR pipeline —
the same three stages with the same partitioning rule, so properties shown
here (determinism, partition completeness, replica agreement) transfer to
the simulation's validation model.  It supports optional thread-pool
parallelism for the embarrassingly parallel map stage, combiners, and a
per-task execution trace used to derive cost-model statistics.

The engine deliberately materialises intermediate partitions as explicit
``(map_index, reduce_index) -> serialized bytes`` blobs: that is exactly
the unit BOINC-MR moves between clients, so the examples can report true
intermediate data volumes.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import pickle
import time
import typing as _t

from .api import MapReduceApp
from .splitter import iter_records, split_text

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry


@dataclasses.dataclass(frozen=True, slots=True)
class TaskReport:
    """Execution record of one map or reduce task."""

    kind: str
    index: int
    records_in: int
    records_out: int
    bytes_in: int
    bytes_out: int


@dataclasses.dataclass(slots=True)
class JobReport:
    """Everything a local run produced, including per-task accounting."""

    output: dict
    tasks: list[TaskReport]
    #: (map_index, reduce_index) -> intermediate partition size in bytes.
    partition_bytes: dict[tuple[int, int], int]

    @property
    def intermediate_bytes(self) -> int:
        """Total bytes across all map-output partitions."""
        return sum(self.partition_bytes.values())

    def map_tasks(self) -> list[TaskReport]:
        """Reports of the map tasks only."""
        return [t for t in self.tasks if t.kind == "map"]

    def reduce_tasks(self) -> list[TaskReport]:
        """Reports of the reduce tasks only."""
        return [t for t in self.tasks if t.kind == "reduce"]


class LocalRunner:
    """Run a :class:`MapReduceApp` over real input on this machine."""

    def __init__(self, app: MapReduceApp, n_maps: int, n_reducers: int,
                 max_workers: int | None = None,
                 metrics: "MetricsRegistry | None" = None) -> None:
        """A runner for *app* with a fixed map/reduce task split."""
        if n_maps < 1 or n_reducers < 1:
            raise ValueError("n_maps and n_reducers must be >= 1")
        self.app = app
        self.n_maps = n_maps
        self.n_reducers = n_reducers
        self.max_workers = max_workers
        #: Optional :class:`repro.obs.MetricsRegistry`: per-task wall-clock
        #: histograms and byte counters (the real engine's own telemetry).
        self.metrics = metrics

    # -- stages ---------------------------------------------------------------
    def run_map_task(self, map_index: int, chunk: bytes
                     ) -> tuple[TaskReport, dict[int, bytes]]:
        """One map task: records -> (k2, v2) pairs -> partitioned blobs."""
        partitions: dict[int, list[tuple]] = {r: [] for r in range(self.n_reducers)}
        records = 0
        emitted = 0
        for offset, record in iter_records(chunk):
            records += 1
            for k2, v2 in self.app.map(offset, record):
                partitions[self.app.partition(k2, self.n_reducers)].append((k2, v2))
                emitted += 1
        if self.app.combine is not None:
            emitted = 0
            for r, pairs in partitions.items():
                combined: list[tuple] = []
                for key, values in _group(pairs).items():
                    for v in self.app.combine(key, values):
                        combined.append((key, v))
                partitions[r] = combined
                emitted += len(combined)
        blobs = {
            r: pickle.dumps(sorted(pairs, key=_stable_key))
            for r, pairs in partitions.items()
        }
        report = TaskReport(
            kind="map", index=map_index, records_in=records,
            records_out=emitted, bytes_in=len(chunk),
            bytes_out=sum(len(b) for b in blobs.values()))
        return report, blobs

    def run_reduce_task(self, reduce_index: int,
                        partition_blobs: _t.Sequence[bytes]
                        ) -> tuple[TaskReport, dict]:
        """One reduce task: merge this partition from every mapper, reduce."""
        pairs: list[tuple] = []
        bytes_in = 0
        for blob in partition_blobs:
            bytes_in += len(blob)
            pairs.extend(pickle.loads(blob))
        grouped = _group(pairs)
        output: dict = {}
        emitted = 0
        for key in sorted(grouped, key=repr):
            values = list(self.app.reduce(key, grouped[key]))
            emitted += len(values)
            output[key] = values[0] if len(values) == 1 else values
        report = TaskReport(
            kind="reduce", index=reduce_index, records_in=len(pairs),
            records_out=emitted, bytes_in=bytes_in,
            bytes_out=len(pickle.dumps(output)))
        return report, output

    # -- metrics ---------------------------------------------------------------
    _LOCAL_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

    def _observe_task(self, report: TaskReport, elapsed: float) -> None:
        """Feed one task's wall-clock cost and volumes into the registry.

        Called only from the coordinating thread — the registry's P²
        estimators are not thread-safe.
        """
        if self.metrics is None:
            return
        self.metrics.histogram(f"local.{report.kind}_task_s",
                               buckets=self._LOCAL_BUCKETS).observe(elapsed)
        self.metrics.counter(f"local.{report.kind}_bytes_in_total").inc(
            report.bytes_in)
        self.metrics.counter(f"local.{report.kind}_bytes_out_total").inc(
            report.bytes_out)

    def _timed_map_task(self, map_index: int, chunk: bytes
                        ) -> tuple[TaskReport, dict[int, bytes], float]:
        t0 = time.perf_counter()
        report, blobs = self.run_map_task(map_index, chunk)
        return report, blobs, time.perf_counter() - t0

    # -- whole job ---------------------------------------------------------------
    def run(self, data: bytes, parallel: bool = False) -> JobReport:
        """Execute the full job on *data*; returns merged output + reports."""
        chunks = split_text(data, self.n_maps)
        tasks: list[TaskReport] = []
        all_blobs: dict[tuple[int, int], bytes] = {}

        if parallel and self.n_maps > 1:
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.max_workers) as pool:
                futures = [pool.submit(self._timed_map_task, i, chunk)
                           for i, chunk in enumerate(chunks)]
                map_results = [f.result() for f in futures]
        else:
            map_results = [self._timed_map_task(i, chunk)
                           for i, chunk in enumerate(chunks)]
        for i, (report, blobs, elapsed) in enumerate(map_results):
            tasks.append(report)
            self._observe_task(report, elapsed)
            for r, blob in blobs.items():
                all_blobs[(i, r)] = blob

        output: dict = {}
        for r in range(self.n_reducers):
            blobs = [all_blobs[(i, r)] for i in range(self.n_maps)]
            t0 = time.perf_counter()
            report, part_out = self.run_reduce_task(r, blobs)
            self._observe_task(report, time.perf_counter() - t0)
            tasks.append(report)
            overlap = set(part_out) & set(output)
            if overlap:  # partitioner guarantees disjoint key ranges
                raise RuntimeError(
                    f"partition overlap across reducers: {sorted(overlap)[:5]}")
            output.update(part_out)

        return JobReport(
            output=output,
            tasks=tasks,
            partition_bytes={k: len(b) for k, b in all_blobs.items()},
        )


def _group(pairs: _t.Iterable[tuple]) -> dict:
    grouped: dict = {}
    for k, v in pairs:
        grouped.setdefault(k, []).append(v)
    return grouped


def _stable_key(pair: tuple) -> str:
    return repr(pair[0])
