"""Input splitting: one 1 GB file into ``n_maps`` chunks (Section IV.A).

The paper fixes the initial input at 1 GB and splits it into as many
chunks as there are map workunits.  For text inputs the split must land on
line boundaries or words would be torn across mappers; :func:`split_text`
implements the same boundary-snapping strategy Hadoop's TextInputFormat
uses (a chunk extends to the end of the line that crosses its nominal
boundary).
"""

from __future__ import annotations

import typing as _t


def split_bytes(data: bytes, n_chunks: int) -> list[bytes]:
    """Split *data* into *n_chunks* nearly equal byte ranges (no snapping)."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n = len(data)
    bounds = [n * i // n_chunks for i in range(n_chunks + 1)]
    return [data[bounds[i]:bounds[i + 1]] for i in range(n_chunks)]


def split_text(data: bytes, n_chunks: int,
               delimiter: bytes = b"\n") -> list[bytes]:
    """Split text into *n_chunks*, snapping boundaries to *delimiter*.

    Every byte of *data* lands in exactly one chunk, chunk order preserves
    input order, and no chunk starts mid-record.  Chunks may be empty when
    records are much larger than the nominal chunk size.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n = len(data)
    chunks: list[bytes] = []
    start = 0
    for i in range(1, n_chunks):
        nominal = n * i // n_chunks
        if nominal <= start:
            chunks.append(b"")
            continue
        cut = data.find(delimiter, nominal - 1)
        if cut == -1:
            cut = n
        else:
            cut += len(delimiter)
        cut = max(cut, start)
        chunks.append(data[start:cut])
        start = cut
    chunks.append(data[start:])
    return chunks


def iter_records(chunk: bytes, delimiter: bytes = b"\n"
                 ) -> _t.Iterator[tuple[int, bytes]]:
    """Yield (offset, record) pairs from a chunk (records exclude delimiter)."""
    pos = 0
    n = len(chunk)
    dlen = len(delimiter)
    while pos < n:
        cut = chunk.find(delimiter, pos)
        if cut == -1:
            yield pos, chunk[pos:]
            return
        yield pos, chunk[pos:cut]
        pos = cut + dlen
