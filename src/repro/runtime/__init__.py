"""Executable MapReduce runtime: API, splitter, local engine, and apps.

This is the half of the reproduction that really computes: the paper's
word-count proof of concept (and other canonical MapReduce apps) run on
real bytes through the same map -> hash-mod-partition -> reduce pipeline
the simulator models.
"""

from .api import FnApp, MapReduceApp, default_partition
from .engine import JobReport, LocalRunner, TaskReport
from .calibrate import Measurement, measure_cost_model, profile_app
from .files import CorruptPartition, FileRunner, blob_checksum
from .splitter import iter_records, split_bytes, split_text

__all__ = [
    "MapReduceApp",
    "FnApp",
    "default_partition",
    "LocalRunner",
    "FileRunner",
    "CorruptPartition",
    "blob_checksum",
    "Measurement",
    "profile_app",
    "measure_cost_model",
    "JobReport",
    "TaskReport",
    "split_bytes",
    "split_text",
    "iter_records",
]
