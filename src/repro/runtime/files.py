"""File-backed MapReduce execution: intermediate partitions on disk.

The in-memory :class:`~repro.runtime.engine.LocalRunner` is convenient for
tests; this runner mirrors how BOINC-MR actually moves data — every
(mapper, reducer) partition is a real file on disk, named exactly as the
simulated system names them (``<job>_m<i>_r<j>``), and reduce output is
written in the paper's word-count format ("one line per word, with the
format 'word 1'" for map; ``word count`` lines for the final output).

This is what a BOINC-MR client application would read and write on a
volunteer machine, so the examples can demonstrate the full data layout,
and jobs larger than memory stream chunk by chunk.
"""

from __future__ import annotations

import hashlib
import pathlib
import typing as _t

from .api import MapReduceApp
from .engine import JobReport, LocalRunner, TaskReport
from .splitter import split_text


class CorruptPartition(RuntimeError):
    """An intermediate file failed its checksum (truncated/corrupt copy).

    BOINC-MR transfers intermediate files between untrusted volunteers; a
    reducer must verify what it downloaded before feeding it to the reduce
    function.  The recovery is a re-download from another holder or the
    data server — in this local runner, a re-run of the map task.
    """


def blob_checksum(blob: bytes) -> str:
    """The checksum clients record for and verify on every partition."""
    return hashlib.sha256(blob).hexdigest()


class FileRunner:
    """Run an app over an input file with on-disk intermediate files."""

    def __init__(self, app: MapReduceApp, n_maps: int, n_reducers: int,
                 workdir: str | pathlib.Path, job_name: str = "job") -> None:
        """A file-backed runner writing all stage files under *workdir*."""
        self.inner = LocalRunner(app, n_maps, n_reducers)
        self.workdir = pathlib.Path(workdir)
        self.job_name = job_name
        self.workdir.mkdir(parents=True, exist_ok=True)
        #: Checksums recorded at map time, verified at reduce time.
        self.checksums: dict[str, str] = {}

    # -- naming (mirrors MapReduceJobSpec's conventions) -----------------------
    def partition_path(self, map_index: int, reduce_index: int) -> pathlib.Path:
        """Where map *map_index*'s partition for *reduce_index* lives."""
        return self.workdir / f"{self.job_name}_m{map_index}_r{reduce_index}"

    def output_path(self, reduce_index: int) -> pathlib.Path:
        """Where reduce *reduce_index*'s final output file lives."""
        return self.workdir / f"{self.job_name}_out{reduce_index}"

    # -- stages ------------------------------------------------------------------
    def run_map_task(self, map_index: int, chunk: bytes) -> TaskReport:
        """Map one chunk; write one partition file per reducer."""
        report, blobs = self.inner.run_map_task(map_index, chunk)
        for r, blob in blobs.items():
            path = self.partition_path(map_index, r)
            path.write_bytes(blob)
            self.checksums[path.name] = blob_checksum(blob)
        return report

    def run_reduce_task(self, reduce_index: int) -> tuple[TaskReport, dict]:
        """Reduce one partition from every mapper's on-disk file."""
        blobs = []
        for i in range(self.inner.n_maps):
            path = self.partition_path(i, reduce_index)
            if not path.exists():
                raise FileNotFoundError(
                    f"missing map output {path.name} — map task {i} has not "
                    "run (or its file was withdrawn)")
            blob = path.read_bytes()
            expected = self.checksums.get(path.name)
            if expected is not None and blob_checksum(blob) != expected:
                raise CorruptPartition(
                    f"map output {path.name} failed checksum validation — "
                    "re-download it from another holder")
            blobs.append(blob)
        report, output = self.inner.run_reduce_task(reduce_index, blobs)
        with self.output_path(reduce_index).open("wb") as fh:
            for key in sorted(output, key=repr):
                fh.write(_render_key(key) + b" "
                         + _render_value(output[key]) + b"\n")
        return report, output

    # -- whole job ------------------------------------------------------------
    def run(self, input_path: str | pathlib.Path,
            cleanup_intermediate: bool = False) -> JobReport:
        """Execute the job over *input_path*; outputs land in the workdir."""
        data = pathlib.Path(input_path).read_bytes()
        chunks = split_text(data, self.inner.n_maps)
        tasks: list[TaskReport] = []
        for i, chunk in enumerate(chunks):
            tasks.append(self.run_map_task(i, chunk))
        output: dict = {}
        for r in range(self.inner.n_reducers):
            report, part = self.run_reduce_task(r)
            tasks.append(report)
            output.update(part)
        partition_bytes = {
            (i, r): self.partition_path(i, r).stat().st_size
            for i in range(self.inner.n_maps)
            for r in range(self.inner.n_reducers)
        }
        if cleanup_intermediate:
            for i in range(self.inner.n_maps):
                for r in range(self.inner.n_reducers):
                    self.partition_path(i, r).unlink()
        return JobReport(output=output, tasks=tasks,
                         partition_bytes=partition_bytes)

    def merged_output(self) -> dict[bytes, int]:
        """Parse the reduce output files back ("can be merged into a single
        file, if necessary" — Section III.C)."""
        merged: dict[bytes, int] = {}
        for r in range(self.inner.n_reducers):
            path = self.output_path(r)
            if not path.exists():
                continue
            for line in path.read_bytes().splitlines():
                key, _sep, value = line.rpartition(b" ")
                merged[key] = int(value)
        return merged


def _render_key(key: _t.Any) -> bytes:
    return key if isinstance(key, bytes) else repr(key).encode()


def _render_value(value: _t.Any) -> bytes:
    return str(value).encode()
