"""Reproduction of Table I: word-count makespan across cluster shapes.

Eight vanilla-BOINC rows plus the BOINC-MR row, exactly as the paper lists
them.  ``run_table1()`` executes every row and returns measured-vs-paper
records; ``render()`` prints the table in the paper's cell format
(``mean [slowest-node-discarded]``).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import format_cell, render_table
from .scenario import Scenario, ScenarioResult, run_scenario


@dataclasses.dataclass(frozen=True, slots=True)
class PaperCell:
    """A value from the paper: mean and optional discarded-straggler mean."""

    mean: float
    discarded: float | None = None

    def text(self) -> str:
        """Render as the paper does: ``mean [discarded]``."""
        if self.discarded is None:
            return f"{self.mean:.0f}"
        return f"{self.mean:.0f} [{self.discarded:.0f}]"


@dataclasses.dataclass(frozen=True, slots=True)
class Table1Row:
    """One published row: configuration + the paper's measurements."""

    nodes: int
    n_maps: int
    n_reducers: int
    mr: bool
    paper_map: PaperCell
    paper_reduce: PaperCell
    paper_total: PaperCell

    @property
    def label(self) -> str:
        """Stable row id, e.g. ``boinc-mr_20n_20m_5r``."""
        kind = "boinc-mr" if self.mr else "boinc"
        return f"{kind}_{self.nodes}n_{self.n_maps}m_{self.n_reducers}r"


#: Table I as printed in the paper (times in seconds; bracketed italics
#: are the slowest-node-discarded averages).
PAPER_TABLE1: tuple[Table1Row, ...] = (
    Table1Row(10, 10, 2, False, PaperCell(484), PaperCell(337), PaperCell(1121)),
    Table1Row(10, 20, 2, False, PaperCell(376), PaperCell(349), PaperCell(1133)),
    Table1Row(15, 15, 3, False, PaperCell(747, 396), PaperCell(604, 312),
              PaperCell(1529, 1011)),
    Table1Row(15, 30, 3, False, PaperCell(983, 364), PaperCell(322),
              PaperCell(1378, 758)),
    Table1Row(20, 20, 5, False, PaperCell(383), PaperCell(455, 341),
              PaperCell(1111, 997)),
    Table1Row(20, 40, 5, False, PaperCell(649, 360), PaperCell(700, 391),
              PaperCell(1681, 1083)),
    Table1Row(30, 30, 7, False, PaperCell(716, 373), PaperCell(345),
              PaperCell(1373, 1030)),
    Table1Row(30, 40, 5, False, PaperCell(368), PaperCell(399), PaperCell(1174)),
    Table1Row(20, 20, 5, True, PaperCell(612), PaperCell(318), PaperCell(1216)),
)


@dataclasses.dataclass(slots=True)
class Table1Record:
    """Paper vs measured for one row."""

    row: Table1Row
    result: ScenarioResult

    @property
    def measured_map(self) -> tuple[float, float]:
        """(mean, slowest-discarded mean) of the map phase."""
        s = self.result.metrics.map_stats
        return (s.mean, s.mean_discard_slowest)

    @property
    def measured_reduce(self) -> tuple[float, float]:
        """(mean, slowest-discarded mean) of the reduce phase."""
        s = self.result.metrics.reduce_stats
        return (s.mean, s.mean_discard_slowest)

    @property
    def measured_total(self) -> tuple[float, float]:
        """(total, slowest-discarded total) makespan."""
        m = self.result.metrics
        return (m.total, m.total_discard_slowest)


def scenario_for_row(row: Table1Row, seed: int = 1, **overrides: _t.Any) -> Scenario:
    """Build the deployment Scenario matching one Table I row."""
    return Scenario(
        name=row.label,
        n_nodes=row.nodes,
        n_maps=row.n_maps,
        n_reducers=row.n_reducers,
        mr_clients=row.mr,
        seed=seed,
        **overrides,
    )


def run_table1(rows: _t.Sequence[Table1Row] = PAPER_TABLE1,
               seed: int = 1) -> list[Table1Record]:
    """Run every Table I row; returns paper-vs-measured records."""
    out = []
    for row in rows:
        result = run_scenario(scenario_for_row(row, seed=seed))
        out.append(Table1Record(row=row, result=result))
    return out


def render(records: _t.Sequence[Table1Record]) -> str:
    """Print the reproduction side by side with the published values."""
    headers = ["Nodes", "#Map", "#Red", "Client",
               "Map (ours)", "Map (paper)",
               "Reduce (ours)", "Reduce (paper)",
               "Total (ours)", "Total (paper)"]
    rows = []
    for rec in records:
        r = rec.row
        rows.append([
            r.nodes, r.n_maps, r.n_reducers,
            "BOINC-MR" if r.mr else "BOINC",
            format_cell(*rec.measured_map), r.paper_map.text(),
            format_cell(*rec.measured_reduce), r.paper_reduce.text(),
            format_cell(*rec.measured_total), r.paper_total.text(),
        ])
    return render_table(headers, rows,
                        title="Table I — word count makespan (seconds)")
