"""Experiment harness: Table I, Fig. 4, ablations, NAT and churn studies."""

from .ablations import (
    AblationOutcome,
    ablate_concurrent_jobs,
    ablate_intermediate_downloads,
    ablate_report_immediately,
)
from .churn import ChurnOutcome, churn_scenario, run_churn
from .fig4 import Fig4Result, fig4_scenario, run_fig4
from .grids import (
    GRID_BUILDERS,
    churn_grid,
    replication_grid,
    resolve_grid,
    scale_out_grid,
    table1_grid,
)
from .planetlab import (
    InternetDeployment,
    build_internet_cloud,
    run_internet_deployment,
    run_lan_vs_internet,
)
from .nat_study import LADDERS, NatStudyOutcome, nat_scenario, run_ladder_study
from .replication import ReplicationOutcome, run_replication, sweep as replication_sweep
from .scaling import (
    SCALE_NODE_COUNTS,
    ScalePoint,
    SweepPoint,
    build_scale_cloud,
    granularity_scaling,
    node_scaling,
    scale_out,
    speedup,
)
from .server_load import LoadPoint, congestion_ratio, run_load_point, run_load_sweep
from .scenario import (
    PC3001_FLOPS,
    PCR200_FLOPS,
    Scenario,
    ScenarioResult,
    build_cloud,
    job_spec,
    run_scenario,
)
from .table1 import (
    PAPER_TABLE1,
    PaperCell,
    Table1Record,
    Table1Row,
    render,
    run_table1,
    scenario_for_row,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "build_cloud",
    "job_spec",
    "PC3001_FLOPS",
    "PCR200_FLOPS",
    "PAPER_TABLE1",
    "Table1Row",
    "Table1Record",
    "PaperCell",
    "run_table1",
    "scenario_for_row",
    "render",
    "Fig4Result",
    "fig4_scenario",
    "run_fig4",
    "AblationOutcome",
    "ablate_report_immediately",
    "ablate_intermediate_downloads",
    "ablate_concurrent_jobs",
    "NatStudyOutcome",
    "LADDERS",
    "nat_scenario",
    "run_ladder_study",
    "ChurnOutcome",
    "churn_scenario",
    "run_churn",
    "InternetDeployment",
    "build_internet_cloud",
    "run_internet_deployment",
    "run_lan_vs_internet",
    "ReplicationOutcome",
    "run_replication",
    "replication_sweep",
    "SweepPoint",
    "node_scaling",
    "granularity_scaling",
    "speedup",
    "SCALE_NODE_COUNTS",
    "ScalePoint",
    "build_scale_cloud",
    "scale_out",
    "LoadPoint",
    "run_load_point",
    "run_load_sweep",
    "congestion_ratio",
    "GRID_BUILDERS",
    "resolve_grid",
    "table1_grid",
    "churn_grid",
    "replication_grid",
    "scale_out_grid",
]
