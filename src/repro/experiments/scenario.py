"""Scenario builder: assemble a full deployment for one experiment run.

A :class:`Scenario` mirrors the paper's experiment setup (Section IV.A):
an Emulab-like cluster of ``n_nodes`` volunteer machines on 100 Mbit
links around one project server, a single word-count job with a fixed
1 GB input split into ``n_maps`` chunks, replication 2 / quorum 2, and
either original BOINC clients (data via the server) or BOINC-MR clients
(inter-client transfers).

``run()`` executes the scenario to completion and returns the paper's
metrics plus handles for deeper inspection.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import JobMetrics, job_metrics
from ..boinc.client import ClientConfig
from ..boinc.server import ServerConfig
from ..core import (
    BoincMRConfig,
    CloudSpec,
    MapReduceJob,
    MapReduceJobSpec,
    VolunteerCloud,
)
from ..core.costmodel import WORD_COUNT, MapReduceCostModel
from ..net import EMULAB_LINK, LinkSpec, NatBox
from ..sim import Tracer

#: Node classes from the paper's testbed.  pc3001 (3 GHz P4 Xeon) is the
#: reference; pcr200 (quad-core X3220) is ~1.6x faster per core for this
#: workload class.
PC3001_FLOPS = 1.0
PCR200_FLOPS = 1.6


@dataclasses.dataclass(slots=True)
class Scenario:
    """One experiment configuration (a Table I row, by default)."""

    name: str
    n_nodes: int
    n_maps: int
    n_reducers: int
    mr_clients: bool = False
    input_size: float = 1e9
    replication: int = 2
    quorum: int = 2
    seed: int = 1
    cost: MapReduceCostModel = WORD_COUNT
    app_name: str = "wordcount"
    #: Fraction of nodes that are the faster pcr200 class.
    fast_node_fraction: float = 0.0
    #: Access-link profile shared by the server and every volunteer.
    link: LinkSpec = EMULAB_LINK
    #: Server access link override (None = same as :attr:`link`).  Internet
    #: deployments pair a well-provisioned project server (SERVER_LINK) with
    #: consumer volunteer links.
    server_link: LinkSpec | None = None
    #: Optional per-node NAT boxes (None = publicly reachable LAN).
    nats: _t.Sequence[NatBox | None] | None = None
    byzantine_rate: float = 0.0
    server_config: ServerConfig | None = None
    client_config: ClientConfig | None = None
    mr_config: BoincMRConfig | None = None
    #: Flow-network rate-allocation strategy (see repro.net.ALLOCATORS).
    allocator: str = "incremental"
    #: Event-loop engine ("sequential" or "parallel"); forwarded to
    #: :class:`repro.core.CloudSpec` and byte-identical either way.
    engine: str = "sequential"
    #: Logical-process count for the parallel engine.
    sim_workers: int = 1
    timeout_s: float = 48 * 3600.0

    def __post_init__(self) -> None:
        if self.n_nodes < self.replication:
            raise ValueError(
                "need at least `replication` nodes or no workunit can ever "
                "reach quorum (one replica per host)")
        if self.nats is not None and len(self.nats) != self.n_nodes:
            raise ValueError("nats must have one entry per node")

    @property
    def link_spec(self) -> LinkSpec:
        """Deprecated alias for :attr:`link` (pre-CloudSpec field name)."""
        return self.link

    def default_mr_config(self) -> BoincMRConfig:
        """The effective BOINC-MR config (explicit, or derived)."""
        if self.mr_config is not None:
            return self.mr_config
        if self.mr_clients:
            return BoincMRConfig()
        # Original BOINC: everything via the server.
        return BoincMRConfig(upload_map_outputs=True, reduce_from_peers=False)

    def cloud_spec(self) -> CloudSpec:
        """The :class:`CloudSpec` this scenario's deployment is built from."""
        return CloudSpec(
            seed=self.seed,
            server_config=self.server_config,
            mr_config=self.default_mr_config(),
            client_config=self.client_config,
            server_link=self.server_link or self.link,
            allocator=self.allocator,
            engine=self.engine,
            sim_workers=self.sim_workers,
        )


@dataclasses.dataclass(slots=True)
class ScenarioResult:
    """Everything a benchmark needs from one run."""

    scenario: Scenario
    job: MapReduceJob
    metrics: JobMetrics
    tracer: Tracer
    cloud: VolunteerCloud

    @property
    def total(self) -> float:
        """Total job makespan in seconds."""
        return self.metrics.total


def build_cloud(scenario: Scenario) -> VolunteerCloud:
    """Construct (but do not run) the deployment for *scenario*."""
    cloud = VolunteerCloud.from_spec(scenario.cloud_spec())
    n_fast = int(round(scenario.n_nodes * scenario.fast_node_fraction))
    for i in range(scenario.n_nodes):
        flops = PCR200_FLOPS if i < n_fast else PC3001_FLOPS
        nat = scenario.nats[i] if scenario.nats is not None else None
        cloud.add_volunteer(
            f"node{i:03d}", flops=flops, mr=scenario.mr_clients,
            link_spec=scenario.link, nat=nat,
            byzantine_rate=scenario.byzantine_rate)
    return cloud


def job_spec(scenario: Scenario) -> MapReduceJobSpec:
    """The MapReduceJobSpec a scenario's deployment will run."""
    return MapReduceJobSpec(
        name=scenario.name,
        n_maps=scenario.n_maps,
        n_reducers=scenario.n_reducers,
        input_size=scenario.input_size,
        replication=scenario.replication,
        quorum=scenario.quorum,
        cost=scenario.cost,
        app_name=scenario.app_name,
    )


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Run *scenario* to job completion and extract the paper's metrics."""
    cloud = build_cloud(scenario)
    job = cloud.run_job(job_spec(scenario), timeout=scenario.timeout_s)
    metrics = job_metrics(cloud.tracer, scenario.name)
    return ScenarioResult(scenario=scenario, job=job, metrics=metrics,
                          tracer=cloud.tracer, cloud=cloud)
