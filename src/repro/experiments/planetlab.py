"""Internet-scale deployment study (the paper's PlanetLab future work).

"We expect to run experiments on a more realistic setting such as
Planetlab in the near future to more accurately assess the performance of
our prototype."  This experiment is that setting, synthesised: volunteers
on asymmetric consumer links (ADSL/cable, tens of ms latency) with a NAT
population, heterogeneous CPU speeds drawn log-normally, and a
well-provisioned university server — versus the paper's idealised Emulab
LAN.  It quantifies how much of BOINC-MR's inter-client advantage
survives the real Internet's thin uplinks.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import JobMetrics, job_metrics
from ..core import BoincMRConfig, CloudSpec, MapReduceJobSpec, VolunteerCloud
from ..net import (
    ADSL_LINK,
    CABLE_LINK,
    SERVER_LINK,
    LinkSpec,
    sample_nat_population,
)
from ..sim import RngRegistry

#: 2011-ish home connectivity mix: mostly ADSL, some cable, a few
#: university/fiber volunteers.
UNIVERSITY_LINK = LinkSpec(down_bps=100e6, up_bps=100e6, latency_s=0.005)
LINK_MIX: tuple[tuple[LinkSpec, float], ...] = (
    (ADSL_LINK, 0.55),
    (CABLE_LINK, 0.35),
    (UNIVERSITY_LINK, 0.10),
)


@dataclasses.dataclass(slots=True)
class InternetDeployment:
    """One synthesized Internet deployment's results."""

    label: str
    metrics: JobMetrics
    server_gb_served: float
    peer_gb: float
    cloud: VolunteerCloud

    @property
    def total(self) -> float:
        """Total job makespan in seconds."""
        return self.metrics.total


def build_internet_cloud(seed: int, n_nodes: int, mr: bool,
                         with_nats: bool = True) -> VolunteerCloud:
    """A volunteer cloud on consumer links with NATs and speed spread."""
    rngs = RngRegistry(seed)
    rng = rngs.stream("planetlab")
    mr_config = (BoincMRConfig(upload_map_outputs=True) if mr
                 else BoincMRConfig(upload_map_outputs=True,
                                    reduce_from_peers=False))
    cloud = VolunteerCloud.from_spec(CloudSpec(
        seed=seed, mr_config=mr_config, server_link=SERVER_LINK))
    nats = (sample_nat_population(rngs.stream("nats"), n_nodes)
            if with_nats else [None] * n_nodes)
    links, weights = zip(*LINK_MIX)
    for i in range(n_nodes):
        link = links[int(rng.choice(len(links), p=weights))]
        # Log-normal CPU speed spread around the pc3001 reference.
        flops = float(rng.lognormal(mean=0.0, sigma=0.35))
        cloud.add_volunteer(f"vol{i:03d}", flops=max(0.3, flops), mr=mr,
                            link_spec=link, nat=nats[i])
    return cloud


def run_internet_deployment(seed: int = 1, n_nodes: int = 20, mr: bool = True,
                            n_maps: int = 20, n_reducers: int = 5,
                            input_size: float = 1e9) -> InternetDeployment:
    """Run one word-count job on the PlanetLab-like internet topology."""
    cloud = build_internet_cloud(seed, n_nodes, mr)
    name = f"planetlab_{'mr' if mr else 'vanilla'}"
    job = cloud.run_job(MapReduceJobSpec(
        name, n_maps=n_maps, n_reducers=n_reducers, input_size=input_size),
        timeout=14 * 24 * 3600.0)
    assert job.finished
    peer_bytes = sum(
        c.peer_store.bytes_served for c in cloud.clients
        if getattr(c, "peer_store", None) is not None)
    return InternetDeployment(
        label=name,
        metrics=job_metrics(cloud.tracer, name),
        server_gb_served=cloud.server.dataserver.bytes_served / 1e9,
        peer_gb=peer_bytes / 1e9,
        cloud=cloud,
    )


def run_lan_vs_internet(seed: int = 1) -> dict[str, InternetDeployment]:
    """The four-way comparison: {LAN, Internet} x {vanilla, BOINC-MR}."""
    from .scenario import Scenario, run_scenario

    out: dict[str, InternetDeployment] = {}
    for mr in (False, True):
        label = f"lan_{'mr' if mr else 'vanilla'}"
        result = run_scenario(Scenario(
            name=label, n_nodes=20, n_maps=20, n_reducers=5,
            mr_clients=mr, seed=seed))
        peer_bytes = sum(
            c.peer_store.bytes_served for c in result.cloud.clients
            if getattr(c, "peer_store", None) is not None)
        out[label] = InternetDeployment(
            label=label, metrics=result.metrics,
            server_gb_served=result.cloud.server.dataserver.bytes_served / 1e9,
            peer_gb=peer_bytes / 1e9, cloud=result.cloud)
    for mr in (False, True):
        dep = run_internet_deployment(seed=seed, mr=mr)
        out[dep.label] = dep
    return out
