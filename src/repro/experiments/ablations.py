"""Section IV.C ablations: minimising the impact of slower nodes.

The paper proposes three mitigations for the backoff pathology and the
map->reduce dead time; each is a toggle in this codebase, and each
ablation here runs the 20-node / 20-map / 5-reduce scenario with and
without the mitigation:

1. **Multiple concurrent jobs** — "having work constantly available at the
   scheduler should minimize the problem": submit k jobs at once so no
   client ever receives a no-work reply mid-run.
2. **Priority map reporting** — "map work units should ... be reported as
   soon as their upload is completed": the client's
   ``report_immediately`` flag.
3. **Intermediate data downloads** — "clients should be able to start
   downloading as soon as files become available": create reduce WUs
   after a fraction of maps validate and let reducers poll for the rest
   (``reduce_creation_fraction``).
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as _t

from ..analysis import job_metrics, report_lags
from ..boinc.client import ClientConfig
from ..core import BoincMRConfig
from .scenario import Scenario, build_cloud, job_spec, run_scenario


@dataclasses.dataclass(slots=True)
class AblationOutcome:
    """Baseline vs mitigated measurements for one ablation."""

    name: str
    baseline_total: float
    mitigated_total: float
    baseline_detail: dict[str, float]
    mitigated_detail: dict[str, float]

    @property
    def improvement(self) -> float:
        """Fractional total-makespan reduction (positive = mitigation wins)."""
        return 1.0 - self.mitigated_total / self.baseline_total


def _base_scenario(seed: int, **overrides: _t.Any) -> Scenario:
    defaults: dict[str, _t.Any] = dict(
        name="ablation", n_nodes=20, n_maps=20, n_reducers=5,
        mr_clients=False, seed=seed)
    defaults.update(overrides)
    return Scenario(**defaults)


def _mean_report_lag(tracer, job: str) -> float:
    lags = [lag for _host, lag in report_lags(tracer, job)]
    return statistics.fmean(lags) if lags else 0.0


def ablate_report_immediately(seed: int = 1) -> AblationOutcome:
    """Priority reporting of finished results (ablation 2)."""
    base = run_scenario(_base_scenario(seed, name="abl_report_base"))
    mitigated = run_scenario(_base_scenario(
        seed, name="abl_report_fast",
        client_config=ClientConfig(report_immediately=True)))
    return AblationOutcome(
        name="report_immediately",
        baseline_total=base.metrics.total,
        mitigated_total=mitigated.metrics.total,
        baseline_detail={
            "mean_report_lag": _mean_report_lag(base.tracer, "abl_report_base"),
            "map_mean": base.metrics.map_stats.mean,
        },
        mitigated_detail={
            "mean_report_lag": _mean_report_lag(mitigated.tracer,
                                                "abl_report_fast"),
            "map_mean": mitigated.metrics.map_stats.mean,
        },
    )


def ablate_intermediate_downloads(seed: int = 1,
                                  fraction: float = 0.5) -> AblationOutcome:
    """Early reduce creation + download overlap (ablation 3)."""
    base = run_scenario(_base_scenario(seed, name="abl_overlap_base"))
    mitigated = run_scenario(_base_scenario(
        seed, name="abl_overlap_early",
        mr_config=BoincMRConfig(
            upload_map_outputs=True, reduce_from_peers=False,
            reduce_creation_fraction=fraction)))
    return AblationOutcome(
        name="intermediate_downloads",
        baseline_total=base.metrics.total,
        mitigated_total=mitigated.metrics.total,
        baseline_detail={"transition_gap": base.metrics.transition_gap},
        mitigated_detail={"transition_gap": mitigated.metrics.transition_gap},
    )


def ablate_concurrent_jobs(seed: int = 1, n_jobs: int = 3) -> AblationOutcome:
    """Work always available at the scheduler (ablation 1).

    Runs ``n_jobs`` identical jobs concurrently; the mitigation metric is
    the mean report lag of the *first* job (extra work keeps clients from
    ever backing off), compared to the same job running alone.
    """
    solo = run_scenario(_base_scenario(seed, name="abl_multi_0"))

    cloud = build_cloud(_base_scenario(seed, name="abl_multi_base"))
    jobs = []
    for j in range(n_jobs):
        spec = job_spec(_base_scenario(seed, name=f"abl_multi_{j}"))
        jobs.append(cloud.submit(spec))
    cloud.run_until(cloud.sim.all_of([job.done for job in jobs]))
    first = job_metrics(cloud.tracer, "abl_multi_0")
    return AblationOutcome(
        name="concurrent_jobs",
        baseline_total=solo.metrics.total,
        mitigated_total=first.total,
        baseline_detail={
            "mean_report_lag": _mean_report_lag(solo.tracer, "abl_multi_0"),
            "backoffs": float(len(solo.tracer.select("client.backoff"))),
        },
        mitigated_detail={
            "mean_report_lag": _mean_report_lag(cloud.tracer, "abl_multi_0"),
            "backoffs": float(len(cloud.tracer.select("client.backoff"))),
        },
    )


def run_all(seed: int = 1) -> list[AblationOutcome]:
    """Run every ablation at one seed."""
    return [
        ablate_report_immediately(seed),
        ablate_intermediate_downloads(seed),
        ablate_concurrent_jobs(seed),
    ]
