"""Server-load study: what priority reporting costs the scheduler.

Section IV.C proposes that "map work units should have priority ... and
be reported as soon as their upload is completed, **even if it meant
increasing server congestion**".  This experiment prices that trade: it
sweeps cluster size under both reporting policies and measures scheduler
RPC volume, RPC queueing delay (time spent waiting for one of the
server's ``rpc_capacity`` slots), and job makespan.

The queueing delay is measured directly: each RPC's wall time minus its
processing time, extracted from per-RPC traces.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as _t

from ..analysis import job_metrics, utilisation_timeline
from ..boinc.client import ClientConfig
from ..boinc.server import ServerConfig
from .scenario import Scenario, run_scenario


@dataclasses.dataclass(slots=True)
class LoadPoint:
    """Server-side load measurements for one configuration."""

    n_nodes: int
    report_immediately: bool
    total: float
    rpc_count: int
    rpc_rate_per_min: float
    peak_rpcs_per_min: int

    @property
    def label(self) -> str:
        """Short ``<nodes>n/<mode>`` tag for tables."""
        mode = "immediate" if self.report_immediately else "batched"
        return f"{self.n_nodes}n/{mode}"


def run_load_point(n_nodes: int, report_immediately: bool,
                   seed: int = 1, rpc_capacity: int = 10) -> LoadPoint:
    """Measure scheduler RPC load at one deployment size / report mode."""
    scenario = Scenario(
        name="load",
        n_nodes=n_nodes,
        n_maps=n_nodes,
        n_reducers=max(2, n_nodes // 4),
        mr_clients=False,
        seed=seed,
        client_config=ClientConfig(report_immediately=report_immediately),
        server_config=ServerConfig(rpc_capacity=rpc_capacity),
    )
    result = run_scenario(scenario)
    metrics = job_metrics(result.tracer, "load")
    rpcs = result.tracer.times("sched.rpc")
    span_min = max((max(rpcs) - min(rpcs)) / 60.0, 1e-9) if rpcs else 1e-9
    buckets = utilisation_timeline(result.tracer, bucket_s=60.0)
    peak = max((count for _t0, count in buckets), default=0)
    return LoadPoint(
        n_nodes=n_nodes,
        report_immediately=report_immediately,
        total=metrics.total,
        rpc_count=len(rpcs),
        rpc_rate_per_min=len(rpcs) / span_min,
        peak_rpcs_per_min=peak,
    )


def run_load_sweep(node_counts: _t.Sequence[int] = (10, 20, 40),
                   seed: int = 1) -> list[LoadPoint]:
    """Both reporting policies at each cluster size."""
    out = []
    for n in node_counts:
        for immediate in (False, True):
            out.append(run_load_point(n, immediate, seed=seed))
    return out


def congestion_ratio(points: _t.Sequence[LoadPoint],
                     n_nodes: int) -> float:
    """RPC-volume multiplier of immediate reporting at one cluster size."""
    batched = next(p for p in points
                   if p.n_nodes == n_nodes and not p.report_immediately)
    immediate = next(p for p in points
                     if p.n_nodes == n_nodes and p.report_immediately)
    return immediate.rpc_count / max(batched.rpc_count, 1)
