"""Scaling study: makespan vs cluster size and vs task granularity.

Table I varies both node count and work-unit count without isolating
either axis; this study sweeps them independently:

- :func:`node_scaling`: fixed 1 GB job, growing cluster — where does
  adding volunteers stop helping?  (Answer: when per-node work drops to a
  couple of tasks, scheduling/backoff overheads and the replication floor
  dominate; the serial fraction here is the reduce tail plus the
  map->reduce transition.)
- :func:`granularity_scaling`: fixed cluster, varying ``n_maps`` — the
  paper's 1x vs 2x maps-per-node comparison extended to a full curve.
  Finer tasks pipeline better (downloads overlap compute) until per-task
  overheads win.
- :func:`scale_out`: the simulator-scalability study behind
  ``benchmarks/test_scale.py`` — an internet-style deployment (1 Gbit
  project server, ADSL volunteers, one concurrent word-count job per 200
  volunteers) at 100/500/2,000 nodes, measuring simulator throughput
  (events/sec) rather than makespan, for each rate-allocation strategy.
"""

from __future__ import annotations

import dataclasses
import time
import typing as _t

from ..boinc.client import ClientConfig
from ..core import BoincMRConfig, CloudSpec, MapReduceJobSpec, VolunteerCloud
from ..net import ADSL_LINK, SERVER_LINK
from .scenario import Scenario, ScenarioResult, run_scenario

#: Node counts for the simulator-scalability study (ISSUE 4).
SCALE_NODE_COUNTS: tuple[int, ...] = (100, 500, 2000)


@dataclasses.dataclass(frozen=True, slots=True)
class SweepPoint:
    """One point on a scaling sweep: x = swept value, y = makespans."""

    x: int
    total: float
    map_mean: float
    reduce_mean: float
    result: ScenarioResult


def node_scaling(node_counts: _t.Sequence[int] = (5, 10, 20, 40),
                 seed: int = 1, mr: bool = True,
                 input_size: float = 1e9,
                 allocator: str = "incremental") -> list[SweepPoint]:
    """Makespan for the same job on clusters of increasing size.

    The incremental allocator (default) makes the larger points in
    :data:`SCALE_NODE_COUNTS` practical; pass ``allocator="full"`` to
    cross-check against the reference full-recompute strategy.
    """
    points = []
    for n in node_counts:
        result = run_scenario(Scenario(
            name=f"nodes{n}", n_nodes=n, n_maps=max(n, 10),
            n_reducers=max(2, n // 4), mr_clients=mr, seed=seed,
            input_size=input_size, allocator=allocator))
        m = result.metrics
        points.append(SweepPoint(x=n, total=m.total,
                                 map_mean=m.map_stats.mean,
                                 reduce_mean=m.reduce_stats.mean,
                                 result=result))
    return points


def granularity_scaling(map_counts: _t.Sequence[int] = (10, 20, 40, 80),
                        seed: int = 1, n_nodes: int = 20,
                        mr: bool = True,
                        input_size: float = 1e9) -> list[SweepPoint]:
    """Makespan for the same 1 GB job split into more, smaller map tasks."""
    points = []
    for n_maps in map_counts:
        result = run_scenario(Scenario(
            name=f"maps{n_maps}", n_nodes=n_nodes, n_maps=n_maps,
            n_reducers=5, mr_clients=mr, seed=seed, input_size=input_size))
        m = result.metrics
        points.append(SweepPoint(x=n_maps, total=m.total,
                                 map_mean=m.map_stats.mean,
                                 reduce_mean=m.reduce_stats.mean,
                                 result=result))
    return points


def speedup(points: _t.Sequence[SweepPoint]) -> list[tuple[int, float]]:
    """Speedup relative to the first (smallest) point."""
    if not points:
        return []
    base = points[0].total
    return [(p.x, base / p.total) for p in points]


# ---------------------------------------------------------------------------
# Simulator-scalability study (events/sec, not makespan)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class ScalePoint:
    """One (cluster size, allocator) measurement of simulator throughput."""

    n_nodes: int
    allocator: str
    n_jobs: int
    events: int
    wall_s: float
    events_per_s: float
    makespan_s: float
    peak_queue_depth: int
    #: Event-loop engine the point was measured on.
    engine: str = "sequential"
    #: Logical-process count (1 on the sequential engine).
    sim_workers: int = 1
    #: Safe windows executed (0 on the sequential engine).
    windows: int = 0
    #: Cross-partition deliveries received (0 on the sequential engine).
    cross_deliveries: int = 0

    def as_dict(self) -> dict[str, _t.Any]:
        """Plain-dict form for JSON export."""
        return dataclasses.asdict(self)


def build_scale_cloud(n_nodes: int, seed: int = 1,
                      allocator: str = "incremental",
                      jobs_per_200_nodes: int = 1,
                      engine: str = "sequential",
                      sim_workers: int = 1,
                      ) -> tuple[VolunteerCloud, list]:
    """Internet-style deployment for the scalability study.

    A well-provisioned project server (1 Gbit) serves ``n_nodes`` ADSL
    volunteers running BOINC-MR clients, with one concurrent 250 MB
    word-count job (50 maps x 50 reducers) per 200 volunteers — a real
    volunteer platform runs many jobs at once, and concurrent shuffles
    are what load the flow network with many independent components.
    Clients poll on a tightened 120 s backoff cap so reducers overlap.

    Returns the (unstarted) cloud and the list of submitted jobs; run
    with ``cloud.run_until(cloud.sim.all_of([j.done for j in jobs]))``.
    """
    spec = CloudSpec(
        seed=seed,
        mr_config=BoincMRConfig(),
        client_config=ClientConfig(backoff_max_s=120.0),
        server_link=SERVER_LINK,
        allocator=allocator,
        engine=engine,
        sim_workers=sim_workers,
    )
    cloud = VolunteerCloud.from_spec(spec)
    cloud.add_volunteers(n_nodes, mr=True, link_spec=ADSL_LINK)
    n_jobs = max(1, (n_nodes * jobs_per_200_nodes) // 200)
    jobs = [
        cloud.submit(MapReduceJobSpec(
            name=f"wordcount{j}", n_maps=50, n_reducers=50,
            input_size=250e6))
        for j in range(n_jobs)
    ]
    return cloud, jobs


def scale_out(n_nodes: int, seed: int = 1,
              allocator: str = "incremental",
              engine: str = "sequential",
              sim_workers: int = 1) -> ScalePoint:
    """Run the scalability workload at *n_nodes* and measure throughput."""
    cloud, jobs = build_scale_cloud(n_nodes, seed=seed, allocator=allocator,
                                    engine=engine, sim_workers=sim_workers)
    t0 = time.perf_counter()
    cloud.run_until(cloud.sim.all_of([j.done for j in jobs]))
    wall = time.perf_counter() - t0
    events = cloud.sim.dispatch_count
    sim = cloud.sim
    return ScalePoint(
        n_nodes=n_nodes,
        allocator=allocator,
        n_jobs=len(jobs),
        events=events,
        wall_s=wall,
        events_per_s=events / wall if wall > 0 else 0.0,
        makespan_s=sim.now,
        peak_queue_depth=sim.peak_pending,
        engine=engine,
        sim_workers=sim_workers,
        windows=getattr(sim, "window_count", 0),
        cross_deliveries=(sim.cross_deliveries()
                          if hasattr(sim, "cross_deliveries") else 0),
    )
