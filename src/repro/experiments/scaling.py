"""Scaling study: makespan vs cluster size and vs task granularity.

Table I varies both node count and work-unit count without isolating
either axis; this study sweeps them independently:

- :func:`node_scaling`: fixed 1 GB job, growing cluster — where does
  adding volunteers stop helping?  (Answer: when per-node work drops to a
  couple of tasks, scheduling/backoff overheads and the replication floor
  dominate; the serial fraction here is the reduce tail plus the
  map->reduce transition.)
- :func:`granularity_scaling`: fixed cluster, varying ``n_maps`` — the
  paper's 1x vs 2x maps-per-node comparison extended to a full curve.
  Finer tasks pipeline better (downloads overlap compute) until per-task
  overheads win.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .scenario import Scenario, ScenarioResult, run_scenario


@dataclasses.dataclass(frozen=True, slots=True)
class SweepPoint:
    x: int
    total: float
    map_mean: float
    reduce_mean: float
    result: ScenarioResult


def node_scaling(node_counts: _t.Sequence[int] = (5, 10, 20, 40),
                 seed: int = 1, mr: bool = True,
                 input_size: float = 1e9) -> list[SweepPoint]:
    """Makespan for the same job on clusters of increasing size."""
    points = []
    for n in node_counts:
        result = run_scenario(Scenario(
            name=f"nodes{n}", n_nodes=n, n_maps=max(n, 10),
            n_reducers=max(2, n // 4), mr_clients=mr, seed=seed,
            input_size=input_size))
        m = result.metrics
        points.append(SweepPoint(x=n, total=m.total,
                                 map_mean=m.map_stats.mean,
                                 reduce_mean=m.reduce_stats.mean,
                                 result=result))
    return points


def granularity_scaling(map_counts: _t.Sequence[int] = (10, 20, 40, 80),
                        seed: int = 1, n_nodes: int = 20,
                        mr: bool = True,
                        input_size: float = 1e9) -> list[SweepPoint]:
    """Makespan for the same 1 GB job split into more, smaller map tasks."""
    points = []
    for n_maps in map_counts:
        result = run_scenario(Scenario(
            name=f"maps{n_maps}", n_nodes=n_nodes, n_maps=n_maps,
            n_reducers=5, mr_clients=mr, seed=seed, input_size=input_size))
        m = result.metrics
        points.append(SweepPoint(x=n_maps, total=m.total,
                                 map_mean=m.map_stats.mean,
                                 reduce_mean=m.reduce_stats.mean,
                                 result=result))
    return points


def speedup(points: _t.Sequence[SweepPoint]) -> list[tuple[int, float]]:
    """Speedup relative to the first (smallest) point."""
    if not points:
        return []
    base = points[0].total
    return [(p.x, base / p.total) for p in points]
