"""Replication-factor study: redundancy cost vs byzantine resilience.

The paper fixes replication 2 / quorum 2 ("each work unit is replicated
into 2 results ... only validated if both results are identical") without
examining the trade-off.  This study sweeps the replication factor against
byzantine populations and measures:

- the redundancy overhead (results executed per workunit, makespan);
- the *wrong-result acceptance rate*: how often a corrupt output becomes
  the canonical result (possible when matching corrupt replicas — or, at
  quorum 1, any corrupt replica — slip through).

Corrupt digests are unique per execution in our byzantine model (the
worst case for collusion is excluded), so quorum >= 2 never accepts a
corrupt result; quorum 1 accepts them at roughly the byzantine rate.
"""

from __future__ import annotations

import dataclasses

from ..analysis import job_metrics
from ..core import CloudSpec, MapReduceJobSpec, VolunteerCloud


@dataclasses.dataclass(slots=True)
class ReplicationOutcome:
    """One replication/quorum sweep cell: cost vs byzantine resilience."""

    replication: int
    quorum: int
    byzantine_rate: float
    total: float
    results_executed: int
    corrupt_accepted: int
    workunits: int

    @property
    def overhead(self) -> float:
        """Executed results per workunit (1.0 = no redundancy)."""
        return self.results_executed / self.workunits


def run_replication(replication: int, quorum: int,
                    byzantine_rate: float = 0.0, seed: int = 5,
                    n_nodes: int = 12) -> ReplicationOutcome:
    """Run one job at a given replication factor / quorum setting."""
    cloud = VolunteerCloud.from_spec(CloudSpec(seed=seed))
    cloud.add_volunteers(n_nodes, mr=True, byzantine_rate=byzantine_rate)
    spec = MapReduceJobSpec("repl", n_maps=12, n_reducers=3,
                            input_size=120e6, replication=replication,
                            quorum=quorum)
    job = cloud.run_job(spec, timeout=96 * 3600)
    assert job.finished
    executed = sum(1 for r in cloud.server.db.results.values()
                   if r.reported_at is not None)
    corrupt = 0
    for wu in cloud.server.db.workunits.values():
        if wu.canonical_result_id is None:
            continue
        canonical = cloud.server.db.results[wu.canonical_result_id]
        if canonical.output and canonical.output.digest.startswith("corrupt:"):
            corrupt += 1
    return ReplicationOutcome(
        replication=replication, quorum=quorum,
        byzantine_rate=byzantine_rate,
        total=job_metrics(cloud.tracer, "repl").total,
        results_executed=executed,
        corrupt_accepted=corrupt,
        workunits=len(cloud.server.db.workunits),
    )


def sweep(byzantine_rate: float = 0.2, seed: int = 5
          ) -> list[ReplicationOutcome]:
    """The paper-relevant grid: no redundancy, the paper's 2/2, and 3/2."""
    grid = [(1, 1), (2, 2), (3, 2)]
    return [run_replication(r, q, byzantine_rate=byzantine_rate, seed=seed)
            for r, q in grid]
