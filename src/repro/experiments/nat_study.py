"""Section III.D study: NAT traversal strategies for inter-client transfers.

The paper did not deploy NAT traversal ("we did not address NAT and
firewall traversal but ... describes some of the alternative solutions");
this study quantifies the design space it sketches: for an Internet-like
NAT population, how does each rung of the traversal ladder (direct /
connection reversal / hole punching / TURN-style relay through the project
server) affect inter-client MapReduce — how many transfers succeed per
method, how many fall back to the server, and what it does to makespan.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..core import BoincMRConfig
from ..net import NatType, TraversalConfig, sample_nat_population
from ..sim import RngRegistry
from .scenario import Scenario, ScenarioResult, run_scenario

#: An Internet-like volunteer NAT population (see ``sample_nat_population``).
INTERNET_MIX: dict[NatType, float] = {
    NatType.NONE: 0.20,
    NatType.FULL_CONE: 0.15,
    NatType.RESTRICTED: 0.20,
    NatType.PORT_RESTRICTED: 0.30,
    NatType.SYMMETRIC: 0.10,
    NatType.FIREWALL: 0.05,
}


@dataclasses.dataclass(slots=True)
class NatStudyOutcome:
    """One traversal configuration's results."""

    label: str
    total: float
    method_counts: dict[str, int]
    peer_fetches: int
    server_fallbacks: int
    result: ScenarioResult


#: The ladder configurations compared, cheapest-capability first.
LADDERS: dict[str, TraversalConfig] = {
    "direct_only": TraversalConfig(enable_reversal=False,
                                   enable_hole_punch=False,
                                   enable_relay=False),
    "plus_reversal": TraversalConfig(enable_hole_punch=False,
                                     enable_relay=False),
    "plus_hole_punch": TraversalConfig(enable_relay=False),
    "full_ladder": TraversalConfig(),
}


def nat_scenario(seed: int, traversal_label: str = "full_ladder",
                 mix: dict[NatType, float] | None = None) -> Scenario:
    """20-node scenario with a sampled NAT population and traversal config."""
    rng = RngRegistry(seed).stream("nat_population")
    nats = sample_nat_population(rng, 20, mix=mix or INTERNET_MIX)
    return Scenario(
        name=f"nat_{traversal_label}",
        n_nodes=20, n_maps=20, n_reducers=5, mr_clients=True, seed=seed,
        nats=nats,
        # Keep the server copy so failed traversals fall back instead of
        # dooming the job — the paper's own safety net.
        mr_config=BoincMRConfig(upload_map_outputs=True),
    )


def run_ladder_study(seed: int = 1,
                     ladders: _t.Mapping[str, TraversalConfig] = None
                     ) -> list[NatStudyOutcome]:
    """Run the NAT scenario under every ladder configuration."""
    ladders = dict(LADDERS if ladders is None else ladders)
    out = []
    for label, traversal in ladders.items():
        scenario = nat_scenario(seed, traversal_label=label)
        cloud_result = _run_with_traversal(scenario, traversal)
        out.append(cloud_result)
    return out


def _run_with_traversal(scenario: Scenario,
                        traversal: TraversalConfig) -> NatStudyOutcome:
    from ..analysis import job_metrics
    from .scenario import build_cloud, job_spec

    cloud = build_cloud(scenario)
    # Swap the connectivity policy wholesale (all fetchers share it).
    cloud.connectivity.config = traversal
    job = cloud.run_job(job_spec(scenario), timeout=scenario.timeout_s)
    metrics = job_metrics(cloud.tracer, scenario.name)
    peer_fetches = sum(
        getattr(c.input_fetcher, "peer_fetches", 0) for c in cloud.clients)
    fallbacks = sum(
        getattr(c.input_fetcher, "server_fallbacks", 0) for c in cloud.clients)
    return NatStudyOutcome(
        label=scenario.name.removeprefix("nat_"),
        total=metrics.total,
        method_counts=cloud.connectivity.method_counts(),
        peer_fetches=peer_fetches,
        server_fallbacks=fallbacks,
        result=ScenarioResult(scenario=scenario, job=job, metrics=metrics,
                              tracer=cloud.tracer, cloud=cloud),
    )
