"""The paper's sweeps expressed as campaign grids.

Each builder returns a :class:`repro.campaign.CampaignGrid` whose cells
reproduce one of the existing sequential studies — the Table I grid,
the churn study, the replication sweep, and the simulator-scalability
study — fanned out over seeds (and, where it makes sense, a chaos
plan), so ``python -m repro campaign --grid table1`` runs the whole
evaluation concurrently and :mod:`repro.analysis.campaign` folds the
seeds back into tables.

Per-replicate seeds are derived with :func:`repro.sim.derive_seed`, so
every cell owns an independent, reproducible rng universe regardless of
worker scheduling.
"""

from __future__ import annotations

import typing as _t

from ..campaign import CampaignCell, CampaignGrid
from ..sim import derive_seed
from .table1 import PAPER_TABLE1

#: Default seed fan-out for multi-seed sweeps.
DEFAULT_SEEDS: tuple[int, ...] = (1, 2, 3)


def table1_grid(seeds: _t.Sequence[int] = DEFAULT_SEEDS,
                faults: str | None = None) -> CampaignGrid:
    """Every Table I row x every seed (9 x len(seeds) cells).

    The per-cell seed is the sweep seed itself, so a one-seed grid
    reproduces ``run_table1(seed=s)`` cell for cell.
    """
    cells = [
        CampaignCell(kind="table1", seed=seed, params={"row": i},
                     faults=faults, group=row.label)
        for i, row in enumerate(PAPER_TABLE1)
        for seed in seeds
    ]
    return CampaignGrid(
        name="table1", cells=tuple(cells),
        description="Table I word-count makespan grid across seeds")


def churn_grid(seeds: _t.Sequence[int] = DEFAULT_SEEDS,
               replicates: int = 2,
               mean_on_s: float = 1800.0, mean_off_s: float = 600.0,
               departure_prob: float = 0.05) -> CampaignGrid:
    """Churn-study replicates: each (seed, replicate) is one cell."""
    cells = [
        CampaignCell(
            kind="churn", seed=derive_seed(seed, "churn", rep),
            params={"mean_on_s": mean_on_s, "mean_off_s": mean_off_s,
                    "departure_prob": departure_prob},
            group="churn")
        for seed in seeds
        for rep in range(replicates)
    ]
    return CampaignGrid(
        name="churn", cells=tuple(cells),
        description="job survival under ON/OFF volatility + departures")


def replication_grid(seeds: _t.Sequence[int] = DEFAULT_SEEDS,
                     byzantine_rate: float = 0.2) -> CampaignGrid:
    """The replication/quorum sweep (1/1, the paper's 2/2, 3/2) x seeds."""
    points = [(1, 1), (2, 2), (3, 2)]
    cells = [
        CampaignCell(
            kind="replication", seed=derive_seed(seed, "replication", r, q),
            params={"replication": r, "quorum": q,
                    "byzantine_rate": byzantine_rate},
            group=f"repl{r}q{q}")
        for r, q in points
        for seed in seeds
    ]
    return CampaignGrid(
        name="replication", cells=tuple(cells),
        description="redundancy overhead vs byzantine resilience")


def scale_out_grid(seeds: _t.Sequence[int] = (1,),
                   sizes: _t.Sequence[int] = (100, 500),
                   allocators: _t.Sequence[str] = ("incremental", "full"),
                   ) -> CampaignGrid:
    """Simulator-scalability points (size x allocator x seed).

    Wall-clock throughput is the runner's ``meta.wall_s`` per cell; the
    deterministic payload carries events/makespan for cross-checks.
    """
    cells = [
        CampaignCell(kind="scale_out", seed=seed,
                     params={"n_nodes": n, "allocator": allocator},
                     group=f"scale{n}_{allocator}")
        for n in sizes
        for allocator in allocators
        for seed in seeds
    ]
    return CampaignGrid(
        name="scale_out", cells=tuple(cells),
        description="simulator throughput at volunteer-platform scale")


#: Builtin grid builders addressable from the CLI (``--grid NAME``).
GRID_BUILDERS: dict[str, _t.Callable[..., CampaignGrid]] = {
    "table1": table1_grid,
    "churn": churn_grid,
    "replication": replication_grid,
    "scale_out": scale_out_grid,
}


def resolve_grid(name_or_path: str, seeds: _t.Sequence[int] | None = None,
                 faults: str | None = None) -> CampaignGrid:
    """A builtin grid by name, or a declarative grid from a TOML path.

    *seeds* overrides the builtin default fan-out; *faults* arms a chaos
    plan on every cell of grids that support it (currently ``table1``).
    """
    from ..campaign import grid_from_toml

    builder = GRID_BUILDERS.get(name_or_path)
    if builder is None:
        if name_or_path.endswith(".toml"):
            return grid_from_toml(name_or_path)
        raise ValueError(
            f"unknown grid {name_or_path!r}: expected one of "
            f"{sorted(GRID_BUILDERS)} or a .toml path")
    kwargs: dict[str, _t.Any] = {}
    if seeds is not None:
        kwargs["seeds"] = tuple(seeds)
    if faults is not None:
        if builder is not table1_grid:
            raise ValueError(
                f"--faults is only supported for the table1 grid, "
                f"not {name_or_path!r}")
        kwargs["faults"] = faults
    return builder(**kwargs)
