"""Reproduction of Fig. 4: the map-phase backoff straggler.

The paper's Figure 4 shows per-node map timelines for the 15-node /
15-map-WU scenario (30 results): every node uploads its map outputs
promptly, but one node's *report* is held hostage by the exponential
backoff window, delaying the start of the reduce phase for everyone.

``run_fig4()`` executes that scenario (scanning seeds until a genuine
straggler appears, since the paper itself presents a cherry-picked "perfect
example"), and returns per-result timelines plus the straggler analysis.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import render_timeline, task_intervals
from .scenario import Scenario, ScenarioResult, run_scenario


@dataclasses.dataclass(frozen=True, slots=True)
class MapTimeline:
    """One map result's timeline entries (for the Gantt rendering)."""

    host: str
    result_id: int
    assigned_at: float
    ready_at: float | None
    reported_at: float

    @property
    def report_lag(self) -> float | None:
        """Output-ready to reported, the paper's delay metric."""
        if self.ready_at is None:
            return None
        return self.reported_at - self.ready_at


@dataclasses.dataclass(slots=True)
class Fig4Result:
    """Fig. 4 reproduction: per-result map timelines + the straggler."""

    result: ScenarioResult
    timelines: list[MapTimeline]
    straggler_host: str
    straggler_lag: float
    reduce_start: float

    def render(self, width: int = 64) -> str:
        """ASCII Gantt of every map result's assigned-to-reported span."""
        events = [
            (f"{t.host}/r{t.result_id}", t.assigned_at, t.reported_at)
            for t in sorted(self.timelines,
                            key=lambda t: (t.host, t.assigned_at))
        ]
        chart = render_timeline(
            events, width=width,
            title=("Fig. 4 — map phase, 15 map WUs (30 results): "
                   f"straggler {self.straggler_host} held its report "
                   f"{self.straggler_lag:.0f}s in backoff"))
        return chart


def fig4_scenario(seed: int) -> Scenario:
    """The paper's Fig. 4 deployment: 15 nodes, 15 map WUs."""
    return Scenario(name="fig4", n_nodes=15, n_maps=15, n_reducers=3,
                    mr_clients=False, seed=seed)


def extract_timelines(result: ScenarioResult) -> list[MapTimeline]:
    """Pull per-map-result timelines out of a run's trace."""
    ready_at = {rec["result"]: rec.time
                for rec in result.tracer.select("task.ready")}
    out = []
    for iv in task_intervals(result.tracer, result.scenario.name):
        if iv.kind != "map":
            continue
        out.append(MapTimeline(
            host=iv.host, result_id=iv.result_id,
            assigned_at=iv.assigned_at,
            ready_at=ready_at.get(iv.result_id),
            reported_at=iv.reported_at))
    return out


def run_fig4(base_seed: int = 1, min_straggler_lag: float = 120.0,
             max_seed_scans: int = 20) -> Fig4Result:
    """Run the Fig. 4 scenario, scanning seeds for a visible straggler.

    The pathology is stochastic ("it was not unusual for a node ... to
    back off at the exact moment before he had the result ready"); like
    the paper we present a run where it occurred.  Raises RuntimeError if
    no seed in the scan range produces one — which would itself indicate
    the backoff model is broken.
    """
    best: Fig4Result | None = None
    for seed in range(base_seed, base_seed + max_seed_scans):
        result = run_scenario(fig4_scenario(seed))
        timelines = extract_timelines(result)
        lags = [(t.host, t.report_lag) for t in timelines
                if t.report_lag is not None]
        if not lags:
            continue
        host, lag = max(lags, key=lambda hl: hl[1])
        reduces = [iv for iv in task_intervals(result.tracer, "fig4")
                   if iv.kind == "reduce"]
        reduce_start = min(iv.assigned_at for iv in reduces)
        candidate = Fig4Result(result=result, timelines=timelines,
                               straggler_host=host, straggler_lag=lag,
                               reduce_start=reduce_start)
        if lag >= min_straggler_lag:
            return candidate
        if best is None or lag > best.straggler_lag:
            best = candidate
    if best is None:
        raise RuntimeError("fig4 scenario produced no report lags at all")
    raise RuntimeError(
        f"no seed in [{base_seed}, {base_seed + max_seed_scans}) produced a "
        f"straggler lag >= {min_straggler_lag}s (best: "
        f"{best.straggler_lag:.0f}s on {best.straggler_host}) — "
        "the backoff pathology did not reproduce")
