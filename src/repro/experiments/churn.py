"""Churn study: BOINC-MR under actual volunteer volatility.

The paper evaluated on a dedicated cluster and explicitly deferred
failure tolerance; this extension experiment runs the word-count job with
the two-state availability model of :mod:`repro.volunteers` and measures
what the paper's safety nets buy:

- replication + deadline timeouts recover work lost to offline hosts;
- the reduce phase's n-retries-then-server fallback keeps the job alive
  when mappers disappear while serving outputs (requires
  ``upload_map_outputs``, as the paper notes).
"""

from __future__ import annotations

import dataclasses

from ..analysis import job_metrics
from ..boinc.server import ServerConfig
from ..core import BoincMRConfig
from ..volunteers import AvailabilityModel, ChurnController
from .scenario import Scenario, ScenarioResult, build_cloud, job_spec


@dataclasses.dataclass(slots=True)
class ChurnOutcome:
    """Churn-study result: job metrics plus the volatility it survived."""

    result: ScenarioResult
    transitions: int
    departed: int
    peer_fetches: int
    server_fallbacks: int
    replacement_results: int

    @property
    def total(self) -> float:
        """Total job makespan in seconds."""
        return self.result.metrics.total


def churn_scenario(seed: int = 1, mr: bool = True) -> Scenario:
    """The churn-study deployment (20 nodes, 20 maps, 5 reducers)."""
    return Scenario(
        name="churn",
        n_nodes=20, n_maps=20, n_reducers=5, mr_clients=mr, seed=seed,
        # Volatile hosts need a short deadline or lost results stall the
        # job for hours; 20 minutes is generous for ~2-4 minute tasks.
        server_config=ServerConfig(delay_bound_s=1200.0),
        mr_config=(BoincMRConfig(upload_map_outputs=True) if mr
                   else BoincMRConfig(upload_map_outputs=True,
                                      reduce_from_peers=False)),
        timeout_s=24 * 3600.0,
    )


def run_churn(seed: int = 1, mean_on_s: float = 1800.0,
              mean_off_s: float = 600.0, departure_prob: float = 0.05,
              mr: bool = True) -> ChurnOutcome:
    """Run the churn scenario; raises if the job cannot finish at all."""
    scenario = churn_scenario(seed, mr=mr)
    cloud = build_cloud(scenario)
    model = AvailabilityModel(mean_on_s=mean_on_s, mean_off_s=mean_off_s,
                              departure_prob=departure_prob)
    controller = ChurnController(cloud.sim, cloud.rngs.stream("churn"),
                                 model, tracer=cloud.tracer)
    cloud.start()
    controller.manage_all(cloud.clients)
    job = cloud.run_job(job_spec(scenario), timeout=scenario.timeout_s)
    metrics = job_metrics(cloud.tracer, scenario.name)
    replacement = len(cloud.tracer.select("transitioner.new_result"))
    peer_fetches = sum(
        getattr(c.input_fetcher, "peer_fetches", 0) for c in cloud.clients)
    fallbacks = sum(
        getattr(c.input_fetcher, "server_fallbacks", 0) for c in cloud.clients)
    return ChurnOutcome(
        result=ScenarioResult(scenario=scenario, job=job, metrics=metrics,
                              tracer=cloud.tracer, cloud=cloud),
        transitions=controller.transitions,
        departed=len(controller.departed),
        peer_fetches=peer_fetches,
        server_fallbacks=fallbacks,
        replacement_results=replacement,
    )
