"""BOINC-MR: a reproduction of "Volunteer Cloud Computing: MapReduce over
the Internet" (Costa, Silva & Dahlin, IPDPS Workshops / PCGrid 2011).

Layers, bottom to top:

- :mod:`repro.sim` — deterministic discrete-event simulation kernel;
- :mod:`repro.net` — flow-level network, NAT traversal, peer transfers;
- :mod:`repro.boinc` — the BOINC substrate (server daemons + pull client);
- :mod:`repro.core` — BOINC-MR itself (JobTracker, inter-client transfers,
  replication/quorum validation of MapReduce outputs);
- :mod:`repro.runtime` — an executable MapReduce engine + canonical apps;
- :mod:`repro.volunteers`, :mod:`repro.workloads` — churn and input models;
- :mod:`repro.experiments`, :mod:`repro.analysis` — the paper's tables,
  figures, and metrics.

Quickstart::

    from repro.core import CloudSpec, VolunteerCloud, MapReduceJobSpec

    cloud = VolunteerCloud.from_spec(CloudSpec(seed=1))
    cloud.add_volunteers(20, mr=True)
    job = cloud.run_job(MapReduceJobSpec("wc", n_maps=20, n_reducers=5))
    print(job.makespan())
"""

from .core import CloudSpec, MapReduceJob, MapReduceJobSpec, VolunteerCloud

__version__ = "1.0.0"

__all__ = ["VolunteerCloud", "CloudSpec", "MapReduceJobSpec", "MapReduceJob",
           "__version__"]
