"""Volunteer availability and churn modelling.

The paper ran on a dedicated testbed ("we did not consider node failure in
our tests") but the whole point of BOINC-MR is the *unreliable* volunteer
environment, and its fallback mechanisms exist because of churn.  This
module provides the standard two-state availability model used in desktop
grid studies: alternating exponentially distributed ON/OFF periods per
host, plus a permanent-departure hazard.

:class:`ChurnController` drives a set of clients through that process —
taking a client offline kills its flows and running tasks (the server
recovers via deadline timeouts and replica creation).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..boinc.client import Client
from ..sim import Simulator, Tracer


@dataclasses.dataclass(frozen=True, slots=True)
class AvailabilityModel:
    """Two-state ON/OFF availability with optional permanent departure."""

    mean_on_s: float = 4 * 3600.0
    mean_off_s: float = 1 * 3600.0
    #: Probability that an OFF transition is permanent (user uninstalls).
    departure_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("mean durations must be positive")
        if not 0.0 <= self.departure_prob <= 1.0:
            raise ValueError("departure_prob must be in [0, 1]")

    def draw_on(self, rng: np.random.Generator) -> float:
        """Sample the next ON-period length."""
        return float(rng.exponential(self.mean_on_s))

    def draw_off(self, rng: np.random.Generator) -> float:
        """Sample the next OFF-period length."""
        return float(rng.exponential(self.mean_off_s))


class ChurnController:
    """Applies an :class:`AvailabilityModel` to live clients.

    Going offline is *abrupt*: running tasks fail, in-flight transfers are
    aborted, and peers serving from this host lose their source — exactly
    the failure surface the paper's retry/fallback design targets.  A host
    coming back re-registers nothing; its client simply resumes the pull
    loop (BOINC semantics: state is client-side).
    """

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 model: AvailabilityModel,
                 tracer: Tracer | None = None) -> None:
        """Drive ON/OFF lifecycles from *model* using *rng*."""
        self.sim = sim
        self.rng = rng
        self.model = model
        self.tracer = tracer
        self.departed: set[str] = set()
        self.transitions = 0

    def manage(self, client: Client) -> None:
        """Start driving *client* through ON/OFF cycles."""
        self.sim.process(self._lifecycle(client), name=f"churn:{client.name}")

    def manage_all(self, clients: _t.Iterable[Client]) -> None:
        """Start a lifecycle process for every client."""
        for c in clients:
            self.manage(c)

    def _lifecycle(self, client: Client) -> _t.Generator:
        while True:
            yield self.model.draw_on(self.rng)
            # -- go offline ------------------------------------------------
            permanent = self.rng.random() < self.model.departure_prob
            self.transitions += 1
            if self.tracer is not None:
                self.tracer.record(self.sim.now, "churn.offline",
                                   host=client.name, permanent=permanent)
            self._take_offline(client)
            if permanent:
                self.departed.add(client.name)
                return
            yield self.model.draw_off(self.rng)
            # -- come back -------------------------------------------------
            self.transitions += 1
            if self.tracer is not None:
                self.tracer.record(self.sim.now, "churn.online",
                                   host=client.name)
            self._bring_online(client)

    def _take_offline(self, client: Client) -> None:
        # Kill running task processes; the client's main loop pauses.
        for proc in client._task_procs:
            if proc.alive:
                proc.interrupt("host offline")
        client._task_procs = [p for p in client._task_procs if p.alive]
        client._paused = True
        if client._main_proc is not None and client._main_proc.alive:
            client._main_proc.interrupt("host offline")
        client._main_proc = None
        client.net.set_online(client.host, False)

    def _bring_online(self, client: Client) -> None:
        client.net.set_online(client.host, True)
        client._paused = False
        client._stopped = False
        # Unreported finished tasks survive the outage (client-side state).
        client._main_proc = client.sim.process(
            client._main(), name=f"client:{client.name}")
