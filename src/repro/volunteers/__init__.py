"""Volunteer host modelling: availability, churn, departures."""

from .availability import AvailabilityModel, ChurnController
from .traces import (
    AvailabilityTrace,
    TraceChurnController,
    diurnal_trace,
    load_traces_csv,
)

__all__ = [
    "AvailabilityModel",
    "ChurnController",
    "AvailabilityTrace",
    "TraceChurnController",
    "diurnal_trace",
    "load_traces_csv",
]
