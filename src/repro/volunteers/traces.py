"""Availability traces: replaying recorded volunteer uptime patterns.

Desktop-grid research commonly drives simulations from availability
traces (e.g. the Failure Trace Archive's SETI@home and Notre Dame
collections) rather than analytic ON/OFF models.  This module provides:

- :class:`AvailabilityTrace` — an explicit list of ``[start, end)``
  availability intervals for one host, with validation and queries;
- :func:`load_traces_csv` — a simple ``host,start,end`` CSV reader;
- :func:`diurnal_trace` — a synthetic weekday/evening pattern generator
  (volunteer machines are famously available outside office hours);
- :class:`TraceChurnController` — drives clients from traces, the
  deterministic counterpart of
  :class:`~repro.volunteers.availability.ChurnController`.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import typing as _t

import numpy as np

from ..boinc.client import Client
from ..sim import Simulator, Tracer
from .availability import ChurnController


@dataclasses.dataclass(frozen=True, slots=True)
class AvailabilityTrace:
    """Sorted, non-overlapping ``[start, end)`` intervals of availability."""

    host: str
    intervals: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        prev_end = -float("inf")
        for start, end in self.intervals:
            if end <= start:
                raise ValueError(
                    f"trace {self.host}: empty interval [{start}, {end})")
            if start < prev_end:
                raise ValueError(
                    f"trace {self.host}: overlapping/unsorted at {start}")
            prev_end = end

    def available_at(self, t: float) -> bool:
        """True when some ON interval covers time *t*."""
        return any(start <= t < end for start, end in self.intervals)

    @property
    def total_available(self) -> float:
        """Summed ON time across all intervals."""
        return sum(end - start for start, end in self.intervals)

    def availability_fraction(self, horizon: float) -> float:
        """Fraction of [0, horizon) covered by availability."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        covered = sum(max(0.0, min(end, horizon) - min(start, horizon))
                      for start, end in self.intervals)
        return covered / horizon


def load_traces_csv(source: str | _t.TextIO) -> dict[str, AvailabilityTrace]:
    """Parse ``host,start,end`` rows (header optional) into traces."""
    if isinstance(source, str):
        source = io.StringIO(source)
    rows: dict[str, list[tuple[float, float]]] = {}
    for row in csv.reader(source):
        if not row or row[0].strip().lower() == "host":
            continue
        if len(row) != 3:
            raise ValueError(f"expected host,start,end — got {row!r}")
        host, start, end = row[0].strip(), float(row[1]), float(row[2])
        rows.setdefault(host, []).append((start, end))
    return {
        host: AvailabilityTrace(host=host,
                                intervals=tuple(sorted(intervals)))
        for host, intervals in rows.items()
    }


def diurnal_trace(host: str, days: int, *,
                  rng: np.random.Generator,
                  evening_start_h: float = 18.0,
                  evening_len_h: float = 5.0,
                  weekend_all_day: bool = True,
                  jitter_h: float = 1.0) -> AvailabilityTrace:
    """A home-PC availability pattern: evenings on weekdays, long weekends.

    Deterministic under *rng*; start times and session lengths are
    jittered by up to ``jitter_h`` hours.
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    hour = 3600.0
    intervals: list[tuple[float, float]] = []
    for day in range(days):
        day_start = day * 24 * hour
        weekend = day % 7 in (5, 6)
        if weekend and weekend_all_day:
            start = day_start + (9.0 + rng.uniform(0, jitter_h)) * hour
            end = day_start + (23.0 - rng.uniform(0, jitter_h)) * hour
        else:
            start = day_start + (evening_start_h
                                 + rng.uniform(-jitter_h, jitter_h)) * hour
            end = start + (evening_len_h
                           + rng.uniform(-jitter_h, jitter_h)) * hour
        if end > start:
            intervals.append((start, end))
    return AvailabilityTrace(host=host, intervals=tuple(intervals))


class TraceChurnController:
    """Drive clients' availability from explicit traces."""

    def __init__(self, sim: Simulator, tracer: Tracer | None = None) -> None:
        """Replay recorded availability traces on *sim*."""
        self.sim = sim
        self.tracer = tracer
        self._impl = ChurnController(
            sim, rng=np.random.default_rng(0),
            model=_DUMMY_MODEL, tracer=tracer)

    def manage(self, client: Client, trace: AvailabilityTrace) -> None:
        """Drive *client* ON/OFF according to *trace*."""
        self.sim.process(self._lifecycle(client, trace),
                         name=f"trace:{client.name}")

    def _lifecycle(self, client: Client,
                   trace: AvailabilityTrace) -> _t.Generator:
        # A client starts online (its start() already ran); if the trace
        # says it is offline at t=0, take it down immediately.
        online = True
        for start, end in trace.intervals:
            if self.sim.now < start:
                if online:
                    self._offline(client)
                    online = False
                yield self.sim.timeout(start - self.sim.now)
            if not online:
                self._online(client)
                online = True
            if self.sim.now < end:
                yield self.sim.timeout(end - self.sim.now)
        if online:
            self._offline(client)

    def _offline(self, client: Client) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "churn.offline",
                               host=client.name, permanent=False)
        self._impl._take_offline(client)

    def _online(self, client: Client) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "churn.online", host=client.name)
        self._impl._bring_online(client)


# Internal placeholder; TraceChurnController never draws from the model.
from .availability import AvailabilityModel as _AM  # noqa: E402

_DUMMY_MODEL = _AM()
