"""Extraction of the paper's metrics from simulation traces.

Table I reports, per scenario:

- **Map time / Reduce time** — "the average of the time taken for each
  step (interval between receiving task from scheduler to reporting it as
  done)", per successful result;
- the *bracketed italic* variants — the same averages "discard[ing] the
  results of the slowest node of the experiment";
- **Total time** — "the interval between the scheduling of the first map
  task and the return of the last reduce output".

Everything here is computed from the shared trace (``sched.assign`` /
``sched.report`` records), i.e. from the server's point of view, exactly
as the paper instruments it.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as _t

from ..sim import Tracer


@dataclasses.dataclass(frozen=True, slots=True)
class TaskInterval:
    """One result's life as the scheduler saw it."""

    result_id: int
    host: str
    kind: str               # "map" | "reduce"
    index: int
    assigned_at: float
    reported_at: float

    @property
    def duration(self) -> float:
        """Assigned-to-reported span in seconds."""
        return self.reported_at - self.assigned_at


@dataclasses.dataclass(frozen=True, slots=True)
class PhaseStats:
    """Aggregates over one phase's task intervals."""

    mean: float
    mean_discard_slowest: float
    span: float              # first assignment -> last report
    n_tasks: int
    slowest_host: str

    def as_row(self) -> tuple[float, float]:
        """(mean, slowest-discarded mean) — one Table I cell pair."""
        return (self.mean, self.mean_discard_slowest)


@dataclasses.dataclass(frozen=True, slots=True)
class JobMetrics:
    """The paper's Table I cell set for one run."""

    job: str
    map_stats: PhaseStats
    reduce_stats: PhaseStats
    total: float
    total_discard_slowest: float
    #: Dead time between last map report and first reduce assignment
    #: (the Section IV.B map->reduce transition delay).
    transition_gap: float


def task_intervals(tracer: Tracer, job: str) -> list[TaskInterval]:
    """Join assignment and report records per result for *job*."""
    assigns: dict[int, _t.Any] = {}
    for rec in tracer.select("sched.assign", job=job):
        assigns[rec["result"]] = rec
    out: list[TaskInterval] = []
    for rec in tracer.select("sched.report", job=job):
        if not rec.get("success", False):
            continue
        a = assigns.get(rec["result"])
        if a is None:
            continue
        out.append(TaskInterval(
            result_id=rec["result"], host=a["host"], kind=a["kind"],
            index=a["index"], assigned_at=a.time, reported_at=rec.time))
    return out


def _phase_stats(intervals: list[TaskInterval]) -> PhaseStats:
    if not intervals:
        raise ValueError("no intervals for phase")
    durations = [iv.duration for iv in intervals]
    # "The slowest node of the experiment": the host with the longest
    # single task interval — the straggler whose backoff-delayed report
    # inflates the average (Section IV.B).
    slowest_host = max(intervals, key=lambda iv: iv.duration).host
    kept = [iv.duration for iv in intervals if iv.host != slowest_host]
    discarded_mean = statistics.fmean(kept) if kept else statistics.fmean(durations)
    return PhaseStats(
        mean=statistics.fmean(durations),
        mean_discard_slowest=discarded_mean,
        span=max(iv.reported_at for iv in intervals)
             - min(iv.assigned_at for iv in intervals),
        n_tasks=len(intervals),
        slowest_host=slowest_host,
    )


def job_metrics(tracer: Tracer, job: str) -> JobMetrics:
    """Compute the Table I cells for *job* from the trace."""
    intervals = task_intervals(tracer, job)
    maps = [iv for iv in intervals if iv.kind == "map"]
    reduces = [iv for iv in intervals if iv.kind == "reduce"]
    if not maps or not reduces:
        raise ValueError(
            f"job {job!r} has incomplete trace (maps={len(maps)}, "
            f"reduces={len(reduces)})")
    map_stats = _phase_stats(maps)
    reduce_stats = _phase_stats(reduces)
    first_map_assign = min(iv.assigned_at for iv in maps)
    last_reduce_report = max(iv.reported_at for iv in reduces)
    total = last_reduce_report - first_map_assign

    # Total with the slowest node discarded: drop the phase-straggler's
    # results and recompute the end-to-end interval.
    slow = {map_stats.slowest_host, reduce_stats.slowest_host}
    kept_maps = [iv for iv in maps if iv.host not in slow] or maps
    kept_reduces = [iv for iv in reduces if iv.host not in slow] or reduces
    total_discard = (max(iv.reported_at for iv in kept_reduces)
                     - min(iv.assigned_at for iv in kept_maps))

    transition_gap = (min(iv.assigned_at for iv in reduces)
                      - max(iv.reported_at for iv in maps))
    return JobMetrics(
        job=job,
        map_stats=map_stats,
        reduce_stats=reduce_stats,
        total=total,
        total_discard_slowest=total_discard,
        transition_gap=transition_gap,
    )


def backoff_delays(tracer: Tracer, host: str | None = None) -> list[float]:
    """All exponential-backoff deferrals recorded, optionally per host."""
    if host is None:
        return [r["delay"] for r in tracer.select("client.backoff")]
    return [r["delay"] for r in tracer.select("client.backoff", host=host)]


def report_lags(tracer: Tracer, job: str) -> list[tuple[str, float]]:
    """Per result: time between output being ready and its report.

    The paper's Fig. 4 quantity — "the task ... is only reported as
    completed in the next scheduler RPC".
    """
    ready_at: dict[int, tuple[str, float]] = {}
    for rec in tracer.select("task.ready"):
        ready_at[rec["result"]] = (rec["host"], rec.time)
    out = []
    for rec in tracer.select("sched.report", job=job, success=True):
        entry = ready_at.get(rec["result"])
        if entry is not None:
            out.append((entry[0], rec.time - entry[1]))
    return out
