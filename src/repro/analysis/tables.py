"""Plain-text rendering of reproduced tables and figure series.

The benchmark harness prints the same rows the paper reports; these
helpers format them without any plotting dependency (the environment is
offline).  Figure series are rendered as aligned text timelines.
"""

from __future__ import annotations

import typing as _t


def format_cell(mean: float, discarded: float, threshold: float = 10.0) -> str:
    """Table I cell style: ``mean [discarded]`` when they differ materially."""
    if abs(mean - discarded) <= threshold:
        return f"{mean:.0f}"
    return f"{mean:.0f} [{discarded:.0f}]"


def render_table(headers: _t.Sequence[str],
                 rows: _t.Sequence[_t.Sequence[_t.Any]],
                 title: str = "") -> str:
    """Monospace table with per-column alignment."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_timeline(events: _t.Sequence[tuple[str, float, float]],
                    width: int = 60, title: str = "") -> str:
    """ASCII Gantt chart: one bar per (label, start, end) tuple.

    Used for the Fig. 4 reproduction: per-result map timelines that make
    the backoff straggler visually obvious.
    """
    if not events:
        return "(no events)"
    t0 = min(start for _l, start, _e in events)
    t1 = max(end for _l, _s, end in events)
    span = max(t1 - t0, 1e-9)
    label_w = max(len(label) for label, _s, _e in events)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'':{label_w}}  t={t0:.0f}s {'.' * (width - 16)} t={t1:.0f}s")
    for label, start, end in events:
        a = int(round((start - t0) / span * (width - 1)))
        b = int(round((end - t0) / span * (width - 1)))
        b = max(b, a)
        bar = " " * a + "#" * (b - a + 1)
        lines.append(f"{label:{label_w}}  |{bar.ljust(width)}|")
    return "\n".join(lines)


def render_series(points: _t.Sequence[tuple[_t.Any, float]],
                  value_label: str = "value", width: int = 40,
                  title: str = "") -> str:
    """Horizontal bar chart for (x, value) series (figure-style output)."""
    if not points:
        return "(no data)"
    peak = max(v for _x, v in points) or 1.0
    label_w = max(len(str(x)) for x, _v in points)
    lines = []
    if title:
        lines.append(title)
    for x, v in points:
        bar = "#" * max(1, int(round(v / peak * width))) if v > 0 else ""
        lines.append(f"{str(x):>{label_w}}  {bar} {v:.1f} {value_label}")
    return "\n".join(lines)
