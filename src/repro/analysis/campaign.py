"""Aggregation of campaign result stores into the paper's tables.

A finished campaign is a pile of per-cell JSONL records
(:class:`repro.campaign.ResultStore`); this module folds them back into
the shapes the sequential studies print: group cells by their
aggregation bucket (a Table I row label, a replication point, ...),
summarise the headline metric across seeds with the existing
:func:`repro.analysis.summarise` statistics, and render with the shared
:func:`repro.analysis.render_table` formatter.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from .stats import Summary, summarise
from .tables import render_table

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..campaign import CellRecord

#: Which payload field is the headline metric, per cell kind.
HEADLINE_METRIC: dict[str, str] = {
    "scenario": "total",
    "table1": "total",
    "churn": "total",
    "replication": "total",
    "scale_out": "makespan_s",
    "sleep": "slept_s",
}


@dataclasses.dataclass(frozen=True, slots=True)
class GroupStats:
    """Cross-seed aggregate of one campaign group (e.g. a Table I row)."""

    group: str
    kind: str
    summary: Summary
    #: Mean of every numeric payload field across the group's cells.
    field_means: dict[str, float]
    failed: int
    #: Mean wall-clock seconds per cell (from the runner's meta
    #: side-channel; 0.0 when the store predates wall recording).
    wall_mean: float = 0.0
    #: Aggregate simulator throughput: summed payload ``events`` over
    #: summed wall seconds (0.0 when either is unavailable) — the column
    #: that makes sequential-vs-parallel engine campaigns directly
    #: comparable from the aggregate table.
    events_per_s: float = 0.0
    #: Paper-reported counterpart of the headline metric, when the
    #: cells carry one (a ``paper_<metric>`` payload field — the
    #: Table I rows do); ``None`` otherwise.
    paper_mean: float | None = None

    @property
    def n(self) -> int:
        """Number of completed cells aggregated into this group."""
        return self.summary.n

    @property
    def stddev(self) -> float:
        """Cross-seed sample standard deviation of the headline metric."""
        return self.summary.stddev

    @property
    def ci95(self) -> float:
        """Half-width of the normal-approximation 95% confidence band
        around the cross-seed mean (0.0 when n < 2)."""
        if self.summary.n < 2:
            return 0.0
        return 1.96 * self.summary.stddev / math.sqrt(self.summary.n)

    @property
    def paper_delta(self) -> float | None:
        """Fractional deviation of the simulated mean from the paper's
        reported value (``None`` when the paper reported nothing)."""
        if self.paper_mean is None or self.paper_mean == 0:
            return None
        return self.summary.mean / self.paper_mean - 1.0


def _numeric_means(payloads: _t.Sequence[_t.Mapping[str, _t.Any]]
                   ) -> dict[str, float]:
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for payload in payloads:
        for field, value in payload.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            sums[field] = sums.get(field, 0.0) + float(value)
            counts[field] = counts.get(field, 0) + 1
    return {f: sums[f] / counts[f] for f in sums}


def aggregate_records(records: _t.Iterable["CellRecord"]
                      ) -> list[GroupStats]:
    """Fold store records into per-group statistics (store order kept)."""
    groups: dict[str, list["CellRecord"]] = {}
    for record in records:
        group = record.spec.get("group") or record.spec["kind"]
        groups.setdefault(group, []).append(record)
    out: list[GroupStats] = []
    for group, members in groups.items():
        ok = [m for m in members if m.ok and m.result is not None]
        failed = len(members) - len(ok)
        if not ok:
            continue
        kind = members[0].spec["kind"]
        metric = HEADLINE_METRIC.get(kind, "total")
        values = [float(m.result[metric]) for m in ok
                  if metric in m.result]
        if not values:
            continue
        walls = [float(m.meta["wall_s"]) for m in ok if "wall_s" in m.meta]
        events = [float(m.result["events"]) for m in ok
                  if "wall_s" in m.meta and "events" in m.result]
        wall_sum = sum(walls)
        papers = [float(m.result[f"paper_{metric}"]) for m in ok
                  if f"paper_{metric}" in m.result]
        out.append(GroupStats(
            group=group, kind=kind, summary=summarise(values),
            field_means=_numeric_means([m.result for m in ok]),
            failed=failed,
            wall_mean=wall_sum / len(walls) if walls else 0.0,
            events_per_s=sum(events) / wall_sum
            if events and wall_sum > 0 else 0.0,
            paper_mean=sum(papers) / len(papers) if papers else None))
    return out


def aggregate_store(path: str) -> list[GroupStats]:
    """Load a campaign store from *path* and aggregate it."""
    from ..campaign import ResultStore

    return aggregate_records(ResultStore(path).load().values())


def render_campaign_table(stats: _t.Sequence[GroupStats],
                          title: str = "campaign summary") -> str:
    """Aggregates as a monospace table (one row per group)."""
    if not stats:
        return "(no completed cells)"
    headers = ["group", "kind", "n", "mean", "sd", "ci95", "p50", "p90",
               "min", "max", "paper", "delta", "wall", "ev/s", "failed"]
    rows = []
    for s in stats:
        rows.append([
            s.group, s.kind, s.n,
            f"{s.summary.mean:.1f}",
            f"{s.stddev:.1f}" if s.n > 1 else "-",
            f"+/-{s.ci95:.1f}" if s.n > 1 else "-",
            f"{s.summary.p50:.1f}",
            f"{s.summary.p90:.1f}", f"{s.summary.minimum:.1f}",
            f"{s.summary.maximum:.1f}",
            f"{s.paper_mean:.1f}" if s.paper_mean is not None else "-",
            f"{s.paper_delta * 100:+.1f}%"
            if s.paper_delta is not None else "-",
            f"{s.wall_mean:.2f}s" if s.wall_mean > 0 else "-",
            f"{s.events_per_s:,.0f}" if s.events_per_s > 0 else "-",
            s.failed,
        ])
    return render_table(headers, rows, title=title)
