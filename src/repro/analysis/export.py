"""Export traces and metrics to CSV/JSON for external analysis.

The offline environment has no plotting stack; these exporters produce
files any external tool (pandas, gnuplot, a spreadsheet) can consume to
redraw the paper's figures from our runs.
"""

from __future__ import annotations

import csv
import io
import json
import typing as _t

from ..obs.export import (  # noqa: F401 - analysis is the exporters' home too
    chrome_trace_json,
    run_summary,
    trace_to_jsonl,
    write_chrome_trace,
)
from ..sim import Tracer
from .makespan import JobMetrics, task_intervals


def trace_to_csv(tracer: Tracer, kinds: _t.Sequence[str] | None = None,
                 out: _t.TextIO | None = None) -> str:
    """Serialise trace records to CSV (one row per record).

    Field columns are the union of all selected records' fields, sorted
    for stability.  Returns the CSV text (also written to *out* if given).
    """
    records = [r for r in tracer.records
               if kinds is None or r.kind in kinds]
    field_names: set[str] = set()
    for rec in records:
        field_names.update(rec.fields)
    fields = sorted(field_names)
    # A payload field may shadow the two record columns (e.g. sched.assign
    # carries kind="map"); keep both under distinct headers.
    header = ["time", "kind",
              *(f"field.{k}" if k in ("time", "kind") else k for k in fields)]
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(header)
    for rec in records:
        writer.writerow([rec.time, rec.kind]
                        + [rec.get(k, "") for k in fields])
    text = buf.getvalue()
    if out is not None:
        out.write(text)
    return text


def intervals_to_csv(tracer: Tracer, job: str,
                     out: _t.TextIO | None = None) -> str:
    """Per-result (assign, report) intervals as CSV — the Fig. 4 data."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["result_id", "host", "kind", "index",
                     "assigned_at", "reported_at", "duration"])
    for iv in task_intervals(tracer, job):
        writer.writerow([iv.result_id, iv.host, iv.kind, iv.index,
                         iv.assigned_at, iv.reported_at, iv.duration])
    text = buf.getvalue()
    if out is not None:
        out.write(text)
    return text


def metrics_to_dict(metrics: JobMetrics) -> dict:
    """JSON-ready dictionary of one run's Table I cells."""
    def phase(p) -> dict:
        return {
            "mean": p.mean,
            "mean_discard_slowest": p.mean_discard_slowest,
            "span": p.span,
            "n_tasks": p.n_tasks,
            "slowest_host": p.slowest_host,
        }

    return {
        "job": metrics.job,
        "map": phase(metrics.map_stats),
        "reduce": phase(metrics.reduce_stats),
        "total": metrics.total,
        "total_discard_slowest": metrics.total_discard_slowest,
        "transition_gap": metrics.transition_gap,
    }


def metrics_to_json(metrics: JobMetrics, indent: int = 2) -> str:
    """JSON-encode a JobMetrics (sorted keys, stable across runs)."""
    return json.dumps(metrics_to_dict(metrics), indent=indent, sort_keys=True)


def utilisation_timeline(tracer: Tracer, bucket_s: float = 30.0,
                         kind: str = "sched.rpc") -> list[tuple[float, int]]:
    """Events per time bucket — e.g. scheduler RPC load over the run.

    Returns ``(bucket_start, count)`` pairs covering the full span of the
    trace, including empty buckets (so plots show the gaps).
    """
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    times = tracer.times(kind)
    if not times:
        return []
    start = 0.0
    end = max(times)
    n_buckets = int(end // bucket_s) + 1
    counts = [0] * n_buckets
    for t in times:
        counts[int(t // bucket_s)] += 1
    return [(start + i * bucket_s, counts[i]) for i in range(n_buckets)]
