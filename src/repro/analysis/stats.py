"""Summary statistics helpers for experiment series.

Small, dependency-light descriptive statistics used by the benches and
examples: percentile summaries, straggler indices, and comparison ratios
with readable rendering.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t


@dataclasses.dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float
    #: Sample standard deviation (Bessel-corrected; 0.0 when n < 2).
    stddev: float = 0.0

    def text(self, unit: str = "s") -> str:
        """One-line rendering: n, mean, p50/p90, min-max."""
        return (f"n={self.n} mean={self.mean:.1f}{unit} "
                f"p50={self.p50:.1f}{unit} p90={self.p90:.1f}{unit} "
                f"p99={self.p99:.1f}{unit} max={self.maximum:.1f}{unit}")


def percentile(values: _t.Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi or ordered[lo] == ordered[hi]:
        # Equal endpoints: interpolation could only add float error
        # (subnormals underflow in the weighted sum).
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarise(values: _t.Sequence[float]) -> Summary:
    """Descriptive summary of a sample (raises on empty input)."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    mean = sum(values) / len(values)
    if len(values) > 1:
        stddev = math.sqrt(sum((v - mean) ** 2 for v in values)
                           / (len(values) - 1))
    else:
        stddev = 0.0
    return Summary(
        n=len(values),
        mean=mean,
        p50=percentile(values, 50),
        p90=percentile(values, 90),
        p99=percentile(values, 99),
        minimum=min(values),
        maximum=max(values),
        stddev=stddev,
    )


def straggler_index(values: _t.Sequence[float]) -> float:
    """max / median — how badly the worst sample lags the typical one.

    1.0 means perfectly even; the paper's Fig. 4 run has a map-phase
    straggler index of several.
    """
    med = percentile(values, 50)
    if med <= 0:
        raise ValueError("straggler index undefined for non-positive median")
    return max(values) / med


def improvement(baseline: float, treated: float) -> float:
    """Fractional improvement of *treated* over *baseline* (+ is better)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 1.0 - treated / baseline
