"""Trace analysis: the paper's metrics and text renderers for tables/figures."""

from .makespan import (
    JobMetrics,
    PhaseStats,
    TaskInterval,
    backoff_delays,
    job_metrics,
    report_lags,
    task_intervals,
)
from .campaign import (
    GroupStats,
    aggregate_records,
    aggregate_store,
    render_campaign_table,
)
from .export import (
    chrome_trace_json,
    intervals_to_csv,
    metrics_to_dict,
    metrics_to_json,
    run_summary,
    trace_to_csv,
    trace_to_jsonl,
    utilisation_timeline,
    write_chrome_trace,
)
from .stats import Summary, improvement, percentile, straggler_index, summarise
from .tables import format_cell, render_series, render_table, render_timeline

__all__ = [
    "JobMetrics",
    "PhaseStats",
    "TaskInterval",
    "job_metrics",
    "task_intervals",
    "backoff_delays",
    "report_lags",
    "format_cell",
    "render_table",
    "render_timeline",
    "render_series",
    "trace_to_csv",
    "trace_to_jsonl",
    "chrome_trace_json",
    "write_chrome_trace",
    "run_summary",
    "intervals_to_csv",
    "metrics_to_dict",
    "metrics_to_json",
    "utilisation_timeline",
    "Summary",
    "summarise",
    "percentile",
    "straggler_index",
    "improvement",
    "GroupStats",
    "aggregate_records",
    "aggregate_store",
    "render_campaign_table",
]
