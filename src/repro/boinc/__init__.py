"""The BOINC substrate: project server, daemons, data server, and client.

Public surface:

- server side: :class:`SchedulerCore` (the transport-agnostic
  scheduler/daemon state machine), :class:`ProjectServer`, :class:`ServerConfig`,
  :class:`Database`, :class:`DataServer`, plus the workunit/result model;
- client side: :class:`Client`, :class:`ClientConfig`, strategy protocols
  (:class:`InputFetcher`, :class:`OutputPolicy`, :class:`Executor`) and
  their stock implementations.
"""

from .client import (
    Client,
    ClientConfig,
    ClientTask,
    GenericExecutor,
    ServerInputFetcher,
    ServerUploadPolicy,
    TaskState,
    download_with_retry,
    make_client,
    upload_with_retry,
)
from .dataserver import ChecksumMismatch, DataServer, FileMissing, ServerUnavailable
from .model import (
    Database,
    FileRef,
    HostRecord,
    OutputData,
    Result,
    ResultOutcome,
    ResultState,
    ValidateState,
    Workunit,
    WorkunitState,
)
from .server import (
    Assignment,
    ProjectServer,
    ReportedResult,
    SchedulerCore,
    SchedulerReply,
    SchedulerRequest,
    ServerConfig,
)

__all__ = [
    "ProjectServer",
    "SchedulerCore",
    "ServerConfig",
    "SchedulerRequest",
    "SchedulerReply",
    "ReportedResult",
    "Assignment",
    "Database",
    "DataServer",
    "FileMissing",
    "ServerUnavailable",
    "ChecksumMismatch",
    "download_with_retry",
    "upload_with_retry",
    "Workunit",
    "WorkunitState",
    "Result",
    "ResultState",
    "ResultOutcome",
    "ValidateState",
    "FileRef",
    "OutputData",
    "HostRecord",
    "Client",
    "ClientConfig",
    "ClientTask",
    "TaskState",
    "GenericExecutor",
    "ServerInputFetcher",
    "ServerUploadPolicy",
    "make_client",
]
