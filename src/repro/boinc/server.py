"""The BOINC project server: scheduler RPC handler + back-end daemons.

This mirrors the server-side architecture the paper modified (BOINC server
6.11): a *scheduler* answers client RPCs (reports in, work out — strictly
pull-based), a *feeder* exposes a bounded cache of unsent results to the
scheduler, a *transitioner* drives workunit/result state transitions
(replica creation, deadline timeouts, quorum-possible flagging), a
*validator* compares replica outputs and picks a canonical result, and an
*assimilator* hands validated work to project code (for BOINC-MR, the
JobTracker in :mod:`repro.core`).

The daemons are simulation processes polling the database on configurable
periods — these periods are *load-bearing* for the paper's results: the
dead time between the last map report and the first reduce assignment is
exactly one transitioner + validator + assimilator + feeder pipeline delay,
during which clients keep backing off (Section IV.B).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..net import Host, Network, SimSemaphore
from ..sim import Simulator, Tracer, jittered

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
from .dataserver import DataServer, ServerUnavailable
from .model import (
    Database,
    HostRecord,
    OutputData,
    Result,
    ResultOutcome,
    ResultState,
    ValidateState,
    Workunit,
    WorkunitState,
)


@dataclasses.dataclass(slots=True)
class ServerConfig:
    """Tunables for the project server and its daemons."""

    #: Daemon polling periods (seconds).  BOINC defaults poll every few
    #: seconds on a loaded project; these values reproduce the transition
    #: latencies discussed in Section IV.B.
    feeder_period_s: float = 5.0
    transitioner_period_s: float = 10.0
    validator_period_s: float = 10.0
    assimilator_period_s: float = 10.0
    #: Feeder shared-memory slots (results visible to the scheduler).
    feeder_cache_size: int = 100
    #: Max simultaneous scheduler RPCs before requests queue (congestion).
    rpc_capacity: int = 10
    #: Server-side processing time per scheduler RPC.
    rpc_process_s: float = 0.5
    #: Result deadline: sent_at + delay_bound.
    delay_bound_s: float = 6 * 3600.0
    #: Reply field telling the client the minimum wait before its next RPC.
    request_delay_s: float = 6.0
    #: Cap on results handed out in a single RPC.  Keeping this small
    #: spreads a single job's results evenly over the cluster, matching
    #: the paper's ~(replication x maps / nodes) tasks per node.
    max_results_per_rpc: int = 2
    #: Hadoop-style speculative execution: when an assigned result has
    #: been out for ``speculative_factor`` x its estimated runtime (and at
    #: least ``speculative_min_elapsed_s``), the transitioner creates a
    #: backup replica on another host.  Directly attacks the paper's
    #: Fig. 4 straggler: a backup replica can complete the quorum while
    #: the original sits unreported in a backoff window.
    speculative_execution: bool = False
    speculative_factor: float = 3.0
    speculative_min_elapsed_s: float = 120.0
    #: BOINC's homogeneous redundancy: replicas of a workunit go only to
    #: hosts of the same platform class, so bitwise output comparison is
    #: sound for numerically platform-sensitive applications.
    homogeneous_redundancy: bool = False
    #: Prefer assigning reduce results to hosts already holding map
    #: output partitions for that job (locality-aware scheduling).
    locality_scheduling: bool = False
    #: BOINC's adaptive replication: workunits start with a single
    #: replica; a result from a host with fewer than
    #: ``adaptive_trust_threshold`` validated results — or any result
    #: drawn for a spot check — escalates the workunit to its full quorum.
    #: Trades the paper's fixed 2x redundancy for reputation + sampling.
    adaptive_replication: bool = False
    adaptive_trust_threshold: int = 3
    adaptive_spot_check_rate: float = 0.1


@dataclasses.dataclass(slots=True)
class ReportedResult:
    """A completed task reported through a scheduler RPC."""

    result_id: int
    success: bool
    output: OutputData | None
    elapsed_s: float


@dataclasses.dataclass(slots=True)
class Assignment:
    """One result handed to a client, plus everything needed to run it."""

    result_id: int
    wu: Workunit
    est_runtime_s: float
    deadline: float
    #: For MR reduce tasks: map_index -> list of peer addresses holding the
    #: map output (empty when inputs come from the data server).
    peer_locations: dict[int, list[str]] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(slots=True)
class SchedulerRequest:
    """One client-initiated scheduler RPC: work ask + piggybacked reports."""

    host_id: int
    work_req_s: float
    reports: list[ReportedResult] = dataclasses.field(default_factory=list)


@dataclasses.dataclass(slots=True)
class SchedulerReply:
    """Scheduler's answer: assignments plus the next-contact delay."""

    assignments: list[Assignment]
    request_delay_s: float
    #: True when the server currently has no work for this host.
    no_work: bool = False


class SchedulerCore:
    """Transport-agnostic scheduler + daemon logic around a :class:`Database`.

    Everything BOINC-semantic lives here — work assignment, report
    acceptance, the feeder/transitioner/validator/assimilator passes,
    replication and quorum — with *no* reference to the simulator, the
    flow network, or any transport.  Time comes from an injected ``clock``
    callable, so the same state machine serves two front ends:

    - :class:`ProjectServer` drives it on simulated time (``sim.now``)
      behind the simulated RPC gate;
    - :class:`repro.gateway.GatewayServer` drives it on wall-clock time
      behind a live asyncio HTTP listener.

    Validation/replication semantics are therefore shared, not forked: a
    behaviour proven in simulation holds verbatim on the live gateway.

    Project-specific behaviour is attached through hooks:

    - ``assimilate_handler(wu, canonical_result)`` — called once per
      validated workunit (the BOINC assimilator contract);
    - ``locate_reduce_inputs(wu, host)`` — returns the peer-address map for
      a reduce assignment (BOINC-MR's JobTracker), or ``{}``;
    - ``publish_input(ref)`` — called per input file on submission (the
      data-server publish seam).
    """

    def __init__(self, config: ServerConfig | None = None,
                 tracer: Tracer | None = None,
                 rng=None,
                 metrics: "MetricsRegistry | None" = None,
                 clock: _t.Callable[[], float] | None = None) -> None:
        """Create the scheduler state machine (database, hooks, clock)."""
        self.config = config or ServerConfig()
        # Explicit None check: an empty Tracer is falsy (it has __len__).
        self.tracer = tracer if tracer is not None else Tracer()
        self.rng = rng
        #: Optional :class:`repro.obs.MetricsRegistry`; when present the
        #: scheduler and daemons keep BOINC server-status style counters.
        self.metrics = metrics
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.db = Database()
        self._feeder_visible: set[int] = set()
        self._dirty_wus: set[int] = set()
        self.assimilate_handler: _t.Callable[[Workunit, Result], None] | None = None
        self.locate_reduce_inputs: _t.Callable[
            [Workunit, HostRecord], dict[int, list[str]]] | None = None
        #: Invoked after a result's output upload lands (received_at set).
        self.on_upload: _t.Callable[[Result], None] | None = None
        #: Invoked when a workunit is abandoned after too many errors.
        self.on_wu_error: _t.Callable[[Workunit], None] | None = None
        #: Called with each input :class:`FileRef` on submission.
        self.publish_input: _t.Callable[..., None] | None = None
        #: Fault injection: False refuses every scheduler RPC (server down).
        self.available = True

    @property
    def now(self) -> float:
        """Current time from the injected clock (sim or wall)."""
        return self._clock()

    def run_daemon_passes(self) -> None:
        """One tick of every back-end daemon, in pipeline order.

        The live gateway calls this on a wall-clock cadence; the simulator
        instead runs each pass on its own configured period.
        """
        self._feeder_pass()
        self._transitioner_pass()
        self._validator_pass()
        self._assimilator_pass()
    # -- work submission ------------------------------------------------------------
    def submit_workunit(self, wu: Workunit, publish_inputs: bool = True) -> Workunit:
        """Insert *wu* and its initial replicas (the ``create_work`` script)."""
        wu = self.db.insert_workunit(wu)
        if self.config.adaptive_replication and wu.min_quorum > 1:
            # Single replica first; the validator escalates to the full
            # quorum for untrusted hosts and spot checks.
            wu.adaptive = True
            wu.adaptive_quorum = wu.min_quorum
            wu.min_quorum = 1
            wu.target_nresults = 1
        for _ in range(wu.target_nresults):
            self.db.insert_result(wu, created_at=self.now)
        if publish_inputs and self.publish_input is not None:
            for ref in wu.input_files:
                self.publish_input(ref)
        self._dirty_wus.add(wu.id)
        if self.metrics is not None:
            self.metrics.counter("server.workunits_submitted_total").inc()
        self.tracer.record(self.now, "server.wu_submitted", wu=wu.id,
                           job=wu.mr_job, kind=wu.mr_kind, index=wu.mr_index)
        return wu

    def register_host(self, name: str, flops: float,
                      supports_mr: bool = False,
                      hr_class: str = "") -> HostRecord:
        """Add a volunteer host to the project database."""
        version = "6.11.1-mr" if supports_mr else "6.13.0"
        rec = self.db.insert_host(name, flops, supports_mr=supports_mr,
                                  client_version=version)
        rec.hr_class = hr_class
        return rec

    # -- scheduler RPC ------------------------------------------------------------
    def handle_scheduler_request(self, request: SchedulerRequest
                                 ) -> SchedulerReply:
        """Answer one scheduler RPC synchronously (no transport delay).

        Raises :class:`ServerUnavailable` when the server is down — both
        front ends map this to their transport's retry-later signal (the
        simulated client's exponential backoff, the gateway's HTTP 503).
        """
        if not self.available:
            if self.metrics is not None:
                self.metrics.counter("sched.refused_total").inc()
            raise ServerUnavailable("scheduler is down")
        return self._handle_rpc_now(request)

    def _handle_rpc_now(self, request: SchedulerRequest) -> SchedulerReply:
        host = self.db.hosts[request.host_id]
        host.rpc_count += 1
        self.tracer.record(self.now, "sched.rpc", host=host.name,
                           work_req=request.work_req_s,
                           n_reports=len(request.reports))
        for report in request.reports:
            self._accept_report(report, host)
        assignments: list[Assignment] = []
        no_work = False
        if request.work_req_s > 0:
            assignments = self._assign_work(host, request.work_req_s)
            no_work = not assignments
        if self.metrics is not None:
            self.metrics.counter("sched.rpc_total").inc()
            if request.reports:
                self.metrics.counter("sched.reports_total").inc(
                    len(request.reports))
            if assignments:
                self.metrics.counter("sched.assignments_total").inc(
                    len(assignments))
            if no_work:
                self.metrics.counter("sched.no_work_total").inc()
        return SchedulerReply(assignments=assignments,
                              request_delay_s=self.config.request_delay_s,
                              no_work=no_work)

    def _accept_report(self, report: ReportedResult, host: HostRecord) -> None:
        res = self.db.results.get(report.result_id)
        if res is None or res.state is not ResultState.IN_PROGRESS:
            return  # e.g. already timed out and replaced — BOINC drops these
        res.state = ResultState.OVER
        res.outcome = (ResultOutcome.SUCCESS if report.success
                       else ResultOutcome.CLIENT_ERROR)
        res.reported_at = self.now
        res.elapsed_s = report.elapsed_s
        if report.success:
            res.output = report.output
            if res.received_at is None:
                # Report and upload may race; the report implies the data
                # is available (hash-only reporting in BOINC-MR).
                res.received_at = self.now
        self._dirty_wus.add(res.wu_id)
        if self.metrics is not None and res.sent_at is not None:
            self.metrics.histogram("sched.result_turnaround_s").observe(
                self.now - res.sent_at)
        wu = self.db.workunits[res.wu_id]
        self.tracer.record(self.now, "sched.report", host=host.name,
                           result=res.id, wu=res.wu_id, success=report.success,
                           job=wu.mr_job, kind=wu.mr_kind, index=wu.mr_index)

    def record_upload(self, result_id: int) -> None:
        """Mark a result's output data as landed on the server (pre-report)."""
        res = self.db.results.get(result_id)
        if res is not None and res.received_at is None:
            res.received_at = self.now
            self.tracer.record(self.now, "server.upload_received",
                               result=res.id, wu=res.wu_id)
            if self.on_upload is not None:
                self.on_upload(res)

    def _assign_work(self, host: HostRecord, work_req_s: float) -> list[Assignment]:
        out: list[Assignment] = []
        booked = 0.0
        for rid in self._eligible_results(host):
            if booked >= work_req_s or len(out) >= self.config.max_results_per_rpc:
                break
            res = self.db.results.get(rid)
            if res is None or res.state is not ResultState.UNSENT:
                continue  # raced with another assignment this pass
            wu = self.db.workunits[res.wu_id]
            # Re-check within the pass: an earlier assignment in this very
            # RPC may have given this host a replica of the same workunit.
            if host.id in self.db.hosts_with_result_of_wu(wu.id):
                continue
            peer_locations: dict[int, list[str]] = {}
            if wu.mr_kind == "reduce" and self.locate_reduce_inputs is not None:
                peer_locations = self.locate_reduce_inputs(wu, host)
            est = wu.flops / host.flops
            deadline = self.now + self.config.delay_bound_s
            self.db.mark_sent(res, host, self.now, deadline)
            self._feeder_visible.discard(rid)
            out.append(Assignment(result_id=res.id, wu=wu, est_runtime_s=est,
                                  deadline=deadline,
                                  peer_locations=peer_locations))
            booked += est
            self.tracer.record(self.now, "sched.assign", host=host.name,
                               result=res.id, wu=wu.id, job=wu.mr_job,
                               kind=wu.mr_kind, index=wu.mr_index)
        return out

    def _eligible_results(self, host: HostRecord) -> list[int]:
        """Feeder-cache results this host may receive, in serving order.

        Enforces one-replica-per-host and (optionally) homogeneous
        redundancy; with locality scheduling on, reduce results whose
        inputs this host already holds are served first.
        """
        eligible: list[tuple[float, int, int]] = []  # (-locality, order, rid)
        for order, rid in enumerate(list(self._feeder_visible)):
            res = self.db.results.get(rid)
            if res is None or res.state is not ResultState.UNSENT:
                self._feeder_visible.discard(rid)
                continue
            wu = self.db.workunits[res.wu_id]
            if wu.state is not WorkunitState.ACTIVE:
                self._feeder_visible.discard(rid)
                continue
            # One replica of a WU per host, or redundancy is meaningless.
            assigned_hosts = self.db.hosts_with_result_of_wu(wu.id)
            if host.id in assigned_hosts:
                continue
            if self.config.homogeneous_redundancy and assigned_hosts:
                classes = {self.db.hosts[h].hr_class for h in assigned_hosts}
                if host.hr_class not in classes:
                    continue
            locality = 0.0
            if (self.config.locality_scheduling and wu.mr_kind == "reduce"
                    and self.locate_reduce_inputs is not None):
                locations = self.locate_reduce_inputs(wu, host)
                locality = sum(
                    1.0 for holders in locations.values()
                    for addr in holders if addr.startswith(host.name + ":")
                    or addr == host.name
                )
            eligible.append((-locality, order, rid))
        eligible.sort()
        return [rid for _loc, _order, rid in eligible]

    # -- daemons ------------------------------------------------------------------
    def _feeder_pass(self) -> None:
        """Refill the shared-memory cache with unsent results, FIFO."""
        space = self.config.feeder_cache_size
        visible: set[int] = set()
        for res in self.db.unsent_results():
            if len(visible) >= space:
                break
            visible.add(res.id)
        self._feeder_visible = visible

    def _transitioner_pass(self) -> None:
        now = self.now
        # Deadline sweep is global (BOINC does it in the transitioner too).
        for res in self.db.in_progress_results():
            if res.deadline is not None and now > res.deadline:
                res.state = ResultState.OVER
                res.outcome = ResultOutcome.NO_REPLY
                self._dirty_wus.add(res.wu_id)
                if self.metrics is not None:
                    self.metrics.counter(
                        "daemon.transitioner.timeouts_total").inc()
                self.tracer.record(now, "transitioner.timeout", result=res.id,
                                   wu=res.wu_id)
        if self.config.speculative_execution:
            self._speculative_pass(now)
        dirty, self._dirty_wus = self._dirty_wus, set()
        for wu_id in sorted(dirty):
            self._transition_wu(self.db.workunits[wu_id])

    def _speculative_pass(self, now: float) -> None:
        """Create backup replicas for results that look like stragglers."""
        cfg = self.config
        for res in self.db.in_progress_results():
            wu = self.db.workunits[res.wu_id]
            if wu.state is not WorkunitState.ACTIVE or res.sent_at is None:
                continue
            host = self.db.hosts[res.host_id]
            est = wu.flops / host.flops
            threshold = max(cfg.speculative_min_elapsed_s,
                            cfg.speculative_factor * est)
            if now - res.sent_at < threshold:
                continue
            results = self.db.results_for_wu(wu.id)
            if any(r.state is ResultState.UNSENT for r in results):
                continue  # a backup (or fresh replica) is already queued
            if len(results) >= wu.max_total_results:
                continue
            self.db.insert_result(wu, created_at=now)
            self.tracer.record(now, "transitioner.speculative", wu=wu.id,
                               laggard=res.id, host=host.name,
                               out_for=now - res.sent_at)

    def _transition_wu(self, wu: Workunit) -> None:
        if wu.state is not WorkunitState.ACTIVE:
            return
        results = self.db.results_for_wu(wu.id)
        n_success = sum(1 for r in results if r.reported_success
                        and r.validate_state is not ValidateState.INVALID)
        n_outstanding = sum(1 for r in results
                            if r.state in (ResultState.UNSENT,
                                           ResultState.IN_PROGRESS))
        n_errors = sum(
            1 for r in results
            if (r.state is ResultState.OVER and not r.reported_success)
            or r.validate_state is ValidateState.INVALID
        )
        if n_errors >= wu.max_error_results:
            wu.state = WorkunitState.ERROR
            wu.error_reason = f"{n_errors} errored results"
            self.tracer.record(self.now, "transitioner.wu_error", wu=wu.id)
            if self.on_wu_error is not None:
                self.on_wu_error(wu)
            return
        # Top up replicas: errors and timeouts spawn replacement results.
        while (n_success + n_outstanding < wu.target_nresults
               and len(results) < wu.max_total_results):
            self.db.insert_result(wu, created_at=self.now)
            results = self.db.results_for_wu(wu.id)
            n_outstanding += 1
            self.tracer.record(self.now, "transitioner.new_result", wu=wu.id)
        if n_success >= wu.min_quorum and wu.canonical_result_id is None:
            wu.need_validate = True

    def _validator_pass(self) -> None:
        for wu in list(self.db.workunits.values()):
            if wu.need_validate and wu.state is WorkunitState.ACTIVE:
                self._validate_wu(wu)

    def _validate_wu(self, wu: Workunit) -> None:
        wu.need_validate = False
        candidates = [
            r for r in self.db.results_for_wu(wu.id)
            if r.reported_success and r.validate_state is ValidateState.INIT
            and r.output is not None
        ]
        if wu.adaptive and wu.min_quorum == 1 and candidates:
            if not self._adaptive_accept(wu, candidates[0]):
                return  # escalated to the full quorum; revisit later
        groups: dict[str, list[Result]] = {}
        for r in candidates:
            groups.setdefault(r.output.digest, []).append(r)
        winner: list[Result] | None = None
        for digest, group in groups.items():
            if len(group) >= wu.min_quorum:
                winner = group
                break
        if winner is None:
            # No quorum yet.  If nothing is outstanding, ask for one more
            # replica (BOINC bumps target_nresults and lets the
            # transitioner create it).
            outstanding = any(
                r.state in (ResultState.UNSENT, ResultState.IN_PROGRESS)
                for r in self.db.results_for_wu(wu.id)
            )
            if not outstanding and wu.target_nresults < wu.max_total_results:
                wu.target_nresults += 1
                self._dirty_wus.add(wu.id)
                self.tracer.record(self.now, "validator.inconclusive",
                                   wu=wu.id)
            return
        canonical = min(winner, key=lambda r: r.id)
        self._finish_validation(wu, canonical, candidates)

    def _finish_validation(self, wu: Workunit, canonical: Result,
                           candidates: list[Result]) -> None:
        wu.canonical_result_id = canonical.id
        wu.state = WorkunitState.VALIDATED
        wu.validated_at = self.now
        for r in candidates:
            matches = r.output.digest == canonical.output.digest
            r.validate_state = ValidateState.VALID if matches else ValidateState.INVALID
            if matches and r.host_id is not None:
                self.db.hosts[r.host_id].validated_count += 1
        # Server-side abort: replicas that never left the server are now
        # redundant work — withdraw them (BOINC cancels unsent results).
        for r in self.db.results_for_wu(wu.id):
            if r.state is ResultState.UNSENT:
                r.state = ResultState.OVER
                r.outcome = ResultOutcome.NO_REPLY
                self.db._unsent.pop(r.id, None)
        if self.metrics is not None:
            self.metrics.counter("daemon.validator.validated_total").inc()
            self.metrics.histogram("daemon.validator.wu_latency_s").observe(
                self.now - wu.created_at)
        self.tracer.record(self.now, "validator.validated", wu=wu.id,
                           canonical=canonical.id, job=wu.mr_job,
                           kind=wu.mr_kind, index=wu.mr_index)

    def _adaptive_accept(self, wu: Workunit, res: Result) -> bool:
        """Adaptive path: accept a lone result, or escalate to the quorum.

        Returns True when the result was accepted as canonical.
        """
        host = self.db.hosts[res.host_id]
        trusted = host.validated_count >= self.config.adaptive_trust_threshold
        spot_check = False
        if self.rng is not None:
            spot_check = self.rng.random() < self.config.adaptive_spot_check_rate
        if trusted and not spot_check:
            self.tracer.record(self.now, "validator.adaptive_accept",
                               wu=wu.id, host=host.name,
                               reputation=host.validated_count)
            self._finish_validation(wu, res, [res])
            return True
        quorum = wu.adaptive_quorum or 2
        wu.min_quorum = quorum
        wu.target_nresults = max(wu.target_nresults, quorum)
        wu.adaptive = False  # now an ordinary quorum workunit
        self._dirty_wus.add(wu.id)
        self.tracer.record(self.now, "validator.adaptive_escalate",
                           wu=wu.id, host=host.name, spot_check=spot_check,
                           reputation=host.validated_count)
        return False

    def _assimilator_pass(self) -> None:
        # Snapshot: assimilation handlers may insert new workunits (the
        # JobTracker creates reduce WUs when the last map assimilates).
        for wu in list(self.db.workunits.values()):
            if wu.state is WorkunitState.VALIDATED:
                canonical = self.db.results[wu.canonical_result_id]
                if self.assimilate_handler is not None:
                    self.assimilate_handler(wu, canonical)
                wu.state = WorkunitState.ASSIMILATED
                wu.assimilated_at = self.now
                if self.metrics is not None:
                    self.metrics.counter(
                        "daemon.assimilator.assimilated_total").inc()
                self.tracer.record(self.now, "assimilator.done", wu=wu.id,
                                   job=wu.mr_job, kind=wu.mr_kind,
                                   index=wu.mr_index)

    # -- introspection ------------------------------------------------------------
    def valid_hosts_for_wu(self, wu_id: int) -> list[HostRecord]:
        """Hosts whose replica of *wu* validated (hold trustworthy output)."""
        out = []
        for r in self.db.results_for_wu(wu_id):
            if r.validate_state is ValidateState.VALID and r.host_id is not None:
                out.append(self.db.hosts[r.host_id])
        return out


class ProjectServer(SchedulerCore):
    """The simulated project server: :class:`SchedulerCore` on sim time.

    Adds the simulation transport around the shared state machine: the
    scheduler RPC gate (a :class:`SimSemaphore` modelling bounded RPC
    concurrency plus per-request processing delay), the
    :class:`~repro.boinc.dataserver.DataServer` over the flow network, the
    daemon polling processes, and the crash/stall fault hooks.
    """

    def __init__(self, sim: Simulator, net: Network, host: Host,
                 config: ServerConfig | None = None,
                 tracer: Tracer | None = None,
                 rng=None,
                 metrics: "MetricsRegistry | None" = None) -> None:
        """Stand up the server (database, daemons, RPC gate) on *host*."""
        super().__init__(config=config, tracer=tracer, rng=rng,
                         metrics=metrics)
        self.sim = sim
        self.net = net
        self.host = host
        self._clock = lambda: sim.now
        self.dataserver = DataServer(sim, net, host, tracer=self.tracer)
        self.publish_input = self.dataserver.publish
        self._rpc_slots = SimSemaphore(sim, self.config.rpc_capacity, name="sched")
        self._daemons_started = False
        self._daemon_procs: dict[str, _t.Any] = {}
        #: Fault injection: daemon name -> sim time until which its passes
        #: are skipped (the process stays alive, it just does no work —
        #: a hung MySQL query, not a dead daemon).
        self._stalled_until: dict[str, float] = {}
        self.crashes = 0

    # -- lifecycle ---------------------------------------------------------------
    def start_daemons(self) -> None:
        """Spawn feeder/transitioner/validator/assimilator polling loops."""
        if self._daemons_started:
            raise RuntimeError("daemons already started")
        self._daemons_started = True
        cfg = self.config
        for name, fn, period in (
            ("feeder", self._feeder_pass, cfg.feeder_period_s),
            ("transitioner", self._transitioner_pass, cfg.transitioner_period_s),
            ("validator", self._validator_pass, cfg.validator_period_s),
            ("assimilator", self._assimilator_pass, cfg.assimilator_period_s),
        ):
            self._daemon_procs[name] = self.sim.process(
                self._poll_loop(name, fn, period), name=name)

    def _poll_loop(self, name: str, fn: _t.Callable[[], None],
                   period: float) -> _t.Generator:
        while True:
            if self.sim.now >= self._stalled_until.get(name, 0.0):
                fn()
            yield period

    # -- fault hooks ----------------------------------------------------------
    def stall_daemon(self, name: str, duration: float) -> None:
        """Make daemon *name* skip its passes for *duration* seconds."""
        if name not in self._daemon_procs:
            raise KeyError(f"no such daemon {name!r}")
        self._stalled_until[name] = self.sim.now + duration
        self.tracer.record(self.sim.now, "server.daemon_stalled", daemon=name,
                           duration=duration)

    def crash(self) -> None:
        """Hard-stop the server: refuse RPCs, kill daemons, drop the feeder
        cache (shared memory is gone).  The database survives — BOINC state
        is durable in MySQL — so :meth:`restore` resumes where it left off.
        """
        if not self.available:
            return
        self.available = False
        self.dataserver.available = False
        self.crashes += 1
        for proc in self._daemon_procs.values():
            if proc.alive:
                proc.interrupt("server crash")
        self._daemon_procs.clear()
        self._stalled_until.clear()
        self._daemons_started = False
        self._feeder_visible = set()
        self.tracer.record(self.sim.now, "server.crash")

    def restore(self) -> None:
        """Bring a crashed server back: daemons restart, RPCs accepted."""
        if self.available:
            return
        self.available = True
        self.dataserver.available = True
        self.start_daemons()
        self.tracer.record(self.sim.now, "server.restore")

    # -- scheduler RPC (simulated transport) -----------------------------------
    def scheduler_rpc(self, request: SchedulerRequest) -> _t.Generator:
        """Process body handling one scheduler RPC; returns a SchedulerReply.

        Raises :class:`ServerUnavailable` when the server is down (crash
        fault) — the client retries with the paper's exponential backoff.
        """
        if not self.available:
            if self.metrics is not None:
                self.metrics.counter("sched.refused_total").inc()
            raise ServerUnavailable("scheduler is down")
        grant = self._rpc_slots.acquire()
        try:
            yield grant
            # A crash may land while this RPC is queued for a slot.
            if not self.available:
                raise ServerUnavailable("scheduler crashed mid-request")
            delay = self.config.rpc_process_s
            if self.rng is not None:
                delay = jittered(self.rng, delay, 0.2)
            yield self.sim.timeout(delay)
            return self._handle_rpc_now(request)
        finally:
            self._rpc_slots.settle(grant)
