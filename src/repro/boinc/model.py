"""BOINC data model: workunits, results, files, hosts.

Mirrors the relevant columns of BOINC's MySQL ``workunit`` and ``result``
tables (server release 6.11, the version the paper forked) closely enough
that the daemon logic reads like the original: the transitioner drives
workunit/result state transitions, the validator compares replicas and
picks a canonical result, the assimilator hands finished work to the
project.

A *workunit* (WU) is one unit of computation; BOINC replicates each WU into
``target_nresults`` *results* (the paper uses 2) and requires
``min_quorum`` identical outputs (the paper uses 2) to validate.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing as _t


class WorkunitState(enum.Enum):
    """Lifecycle of a workunit."""

    ACTIVE = "active"            # results outstanding or more to create
    VALIDATED = "validated"      # canonical result chosen
    ASSIMILATED = "assimilated"  # project has consumed the canonical output
    ERROR = "error"              # too many failures; given up


class ResultState(enum.Enum):
    """Server-side view of one result (replica)."""

    UNSENT = "unsent"
    IN_PROGRESS = "in_progress"
    OVER = "over"                # reported, errored, or timed out


class ResultOutcome(enum.Enum):
    """Final disposition of an OVER result."""

    SUCCESS = "success"
    CLIENT_ERROR = "client_error"
    NO_REPLY = "no_reply"        # missed its deadline


class ValidateState(enum.Enum):
    """Validator verdict on a reported result (quorum agreement)."""

    INIT = "init"
    VALID = "valid"
    INVALID = "invalid"


@dataclasses.dataclass(frozen=True, slots=True)
class FileRef:
    """Reference to a named file of a known size (bytes)."""

    name: str
    size: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file {self.name!r} has negative size")


@dataclasses.dataclass(slots=True)
class OutputData:
    """What a finished task produced: content digest + payload sizes.

    ``digest`` stands in for the real output bytes during validation —
    two results "match" iff their digests are equal, which is exactly
    BOINC's bitwise-identity check when, as in the paper, homogeneous
    redundancy makes outputs deterministic.
    """

    digest: str
    files: tuple[FileRef, ...] = ()

    @property
    def total_size(self) -> float:
        """Summed size of all output files in bytes."""
        return sum(f.size for f in self.files)


@dataclasses.dataclass(slots=True)
class Workunit:
    """One unit of computation, replicated into results."""

    id: int
    app_name: str
    input_files: tuple[FileRef, ...]
    flops: float                       # work content, in device-flops
    target_nresults: int = 2
    min_quorum: int = 2
    max_error_results: int = 6
    max_total_results: int = 10
    #: MapReduce annotations (the paper's ``mapreduce`` template tag).
    mr_job: str | None = None
    mr_kind: str | None = None         # "map" | "reduce"
    mr_index: int | None = None        # map index or reduce partition
    state: WorkunitState = WorkunitState.ACTIVE
    canonical_result_id: int | None = None
    #: Set by the transitioner when reported results may satisfy the quorum.
    need_validate: bool = False
    #: Adaptive replication (BOINC's trusted-host optimisation): created
    #: with a single replica; ``adaptive_quorum`` is the quorum to escalate
    #: to when the reporting host is untrusted or spot-checked.
    adaptive: bool = False
    adaptive_quorum: int | None = None
    created_at: float = 0.0
    validated_at: float | None = None
    assimilated_at: float | None = None
    error_reason: str | None = None

    def __post_init__(self) -> None:
        if self.min_quorum < 1:
            raise ValueError("min_quorum must be >= 1")
        if self.target_nresults < self.min_quorum:
            raise ValueError("target_nresults must be >= min_quorum")
        if self.flops < 0:
            raise ValueError("flops must be >= 0")


@dataclasses.dataclass(slots=True)
class Result:
    """One replica of a workunit, as tracked by the server."""

    id: int
    wu_id: int
    name: str
    state: ResultState = ResultState.UNSENT
    outcome: ResultOutcome | None = None
    validate_state: ValidateState = ValidateState.INIT
    host_id: int | None = None
    sent_at: float | None = None
    deadline: float | None = None
    received_at: float | None = None   # output upload finished (server knows data)
    reported_at: float | None = None   # scheduler RPC reported completion
    output: OutputData | None = None
    elapsed_s: float | None = None

    @property
    def reported_success(self) -> bool:
        """True when the result came back and succeeded."""
        return (self.state is ResultState.OVER
                and self.outcome is ResultOutcome.SUCCESS)


@dataclasses.dataclass(slots=True)
class HostRecord:
    """Server-side record of a volunteer host."""

    id: int
    name: str
    flops: float                      # effective device speed
    client_version: str = "6.13.0"
    supports_mr: bool = False         # BOINC-MR client?
    #: Reputation: how many of this host's results have validated.
    validated_count: int = 0
    #: Homogeneous-redundancy class (platform family, e.g. "x86-linux").
    hr_class: str = ""
    #: (address, port) other clients use for inter-client transfers.
    address: str = ""
    rpc_count: int = 0
    results_assigned: int = 0


class Database:
    """In-memory stand-in for the BOINC project database.

    Pure data + queries; all mutation policy lives in the daemons, as in
    real BOINC.  Index structures are maintained eagerly so scheduler-path
    queries stay O(matches) rather than O(table).
    """

    def __init__(self) -> None:
        """An empty in-memory project database."""
        self.workunits: dict[int, Workunit] = {}
        self.results: dict[int, Result] = {}
        self.hosts: dict[int, HostRecord] = {}
        self._wu_ids = itertools.count(1)
        self._result_ids = itertools.count(1)
        self._host_ids = itertools.count(1)
        self._results_by_wu: dict[int, list[int]] = {}
        self._unsent: dict[int, None] = {}  # ordered set of result ids

    # -- inserts ---------------------------------------------------------------
    def insert_workunit(self, wu: "Workunit | None" = None, /, **fields: _t.Any) -> Workunit:
        """Insert a workunit (allocates the id when built from *fields*)."""
        if wu is None:
            wu = Workunit(id=next(self._wu_ids), **fields)
        if wu.id in self.workunits:
            raise ValueError(f"duplicate workunit id {wu.id}")
        self.workunits[wu.id] = wu
        self._results_by_wu.setdefault(wu.id, [])
        return wu

    def new_wu_id(self) -> int:
        """Allocate the next workunit id."""
        return next(self._wu_ids)

    def insert_result(self, wu: Workunit, created_at: float = 0.0) -> Result:
        """Create one more replica of *wu* in UNSENT state."""
        rid = next(self._result_ids)
        seq = len(self._results_by_wu[wu.id])
        res = Result(id=rid, wu_id=wu.id, name=f"{wu.app_name}_{wu.id}_{seq}")
        self.results[rid] = res
        self._results_by_wu[wu.id].append(rid)
        self._unsent[rid] = None
        return res

    def insert_host(self, name: str, flops: float, supports_mr: bool = False,
                    client_version: str = "6.13.0") -> HostRecord:
        """Create and index a host row."""
        hid = next(self._host_ids)
        rec = HostRecord(id=hid, name=name, flops=flops,
                         supports_mr=supports_mr, client_version=client_version,
                         address=f"{name}:31416")
        self.hosts[hid] = rec
        return rec

    # -- state transitions used by daemons --------------------------------------
    def mark_sent(self, res: Result, host: HostRecord, now: float,
                  deadline: float) -> None:
        """Transition an UNSENT result to IN_PROGRESS on *host*."""
        if res.state is not ResultState.UNSENT:
            raise ValueError(f"result {res.name} is not unsent")
        res.state = ResultState.IN_PROGRESS
        res.host_id = host.id
        res.sent_at = now
        res.deadline = deadline
        self._unsent.pop(res.id, None)
        host.results_assigned += 1

    def requeue(self, res: Result) -> None:
        """Return an in-progress result to the unsent pool (lost client)."""
        res.state = ResultState.UNSENT
        res.host_id = None
        res.sent_at = None
        res.deadline = None
        self._unsent[res.id] = None

    # -- queries ------------------------------------------------------------------
    def results_for_wu(self, wu_id: int) -> list[Result]:
        """All result rows of one workunit."""
        return [self.results[rid] for rid in self._results_by_wu.get(wu_id, [])]

    def unsent_results(self) -> list[Result]:
        """UNSENT results in creation order (feeder scan order)."""
        return [self.results[rid] for rid in self._unsent]

    def hosts_with_result_of_wu(self, wu_id: int) -> set[int]:
        """Hosts that already hold (or held) a replica of this WU."""
        return {
            r.host_id for r in self.results_for_wu(wu_id) if r.host_id is not None
        }

    def workunits_by_job(self, job: str, kind: str | None = None) -> list[Workunit]:
        """Workunits of one job, optionally filtered by kind."""
        return [
            wu for wu in self.workunits.values()
            if wu.mr_job == job and (kind is None or wu.mr_kind == kind)
        ]

    def in_progress_results(self) -> list[Result]:
        """Every result currently out on a host."""
        return [r for r in self.results.values() if r.state is ResultState.IN_PROGRESS]

    def counts(self) -> dict[str, int]:
        """Coarse table sizes, for diagnostics and tests."""
        return {
            "workunits": len(self.workunits),
            "results": len(self.results),
            "hosts": len(self.hosts),
            "unsent": len(self._unsent),
        }
