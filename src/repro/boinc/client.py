"""The BOINC client: pull-model work fetch, execution, upload, report.

Everything is client-initiated, as in BOINC and BOINC-MR ("communication
always starts from the client, never from the server").  The client RPCs
the scheduler when its work buffer runs low or when it has finished tasks
to report, subject to the *exponential backoff* gate: every RPC that asked
for work and got none doubles the deferral (capped, 600 s in the paper's
experiments), and — crucially for the paper's Figure 4 — a task finishing
*during* a backoff window cannot be reported until the window expires.

Task lifecycle: download inputs → wait for a CPU → compute → hand outputs
to the output policy (upload to the server, or serve to peers for BOINC-MR
map tasks) → mark ready-to-report → piggyback the report on the next
scheduler RPC.

Input fetching and output handling are strategy objects so that
:mod:`repro.core` can plug in the BOINC-MR behaviours without this module
knowing about MapReduce.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..net import Host, Network, TransferEndpoint
from ..sim import Interrupted, Process, Simulator, Tracer, jittered
from ..net.transfer import SimSemaphore
from .model import FileRef, HostRecord, OutputData
from .server import Assignment, ProjectServer, ReportedResult, SchedulerRequest


@dataclasses.dataclass(slots=True)
class ClientConfig:
    """Client-side policy knobs (BOINC preferences + paper settings)."""

    ncpus: int = 1
    #: Low watermark: request more work when the estimated *remaining*
    #: queued work drops below this (BOINC's min work buffer).  Because
    #: this is typically larger than one task, clients poll the scheduler
    #: *while still computing* — the behaviour behind the paper's Fig. 4
    #: backoff pathology.
    work_buffer_min_s: float = 120.0
    #: High watermark: ask for (target - queued) seconds of work.
    work_buffer_target_s: float = 240.0
    #: Exponential backoff after a no-work reply: min, cap (paper: 600 s).
    backoff_min_s: float = 60.0
    backoff_max_s: float = 600.0
    #: Relative jitter applied to each backoff draw (BOINC randomises
    #: its deferrals; high jitter is what makes stragglers occasional
    #: rather than universal).
    backoff_jitter: float = 0.5
    #: §IV.C ablation: report finished tasks immediately, ignoring backoff.
    report_immediately: bool = False
    #: Relative jitter on task compute times (testbed hardware/IO noise;
    #: calibrated so per-phase variance matches the paper's spread).
    compute_jitter: float = 0.15
    #: Actual compute speed relative to the benchmark speed the server
    #: knows (BOINC estimates are routinely wrong for real applications;
    #: < 1 makes this host a genuine straggler the scheduler cannot see).
    speed_factor: float = 1.0
    #: Send output uploads as TCP-Nice-style background transfers that
    #: yield to foreground traffic (Section III.D future work).
    nice_uploads: bool = False
    #: Inter-client connection threshold (Section III.C).
    max_peer_upload_conns: int = 6
    max_peer_download_conns: int = 6
    #: Initial scheduler contact is staggered by up to this many seconds.
    initial_stagger_s: float = 5.0


class TaskState:
    DOWNLOADING = "downloading"
    WAITING_CPU = "waiting_cpu"
    COMPUTING = "computing"
    UPLOADING = "uploading"
    READY_TO_REPORT = "ready_to_report"
    REPORTED = "reported"
    FAILED = "failed"


@dataclasses.dataclass(slots=True)
class ClientTask:
    """A result instance as the client sees it."""

    assignment: Assignment
    state: str = TaskState.DOWNLOADING
    output: OutputData | None = None
    started_compute_at: float | None = None
    finished_compute_at: float | None = None
    error: str | None = None


class InputFetcher(_t.Protocol):
    """Strategy: acquire a task's input data (a process body)."""

    def fetch(self, client: "Client", task: ClientTask) -> _t.Generator: ...


class OutputPolicy(_t.Protocol):
    """Strategy: dispose of a task's output data (a process body)."""

    def handle(self, client: "Client", task: ClientTask) -> _t.Generator: ...


class Executor(_t.Protocol):
    """Strategy: the application binary — produce output for a task."""

    def execute(self, client: "Client", task: ClientTask) -> OutputData: ...


class ServerInputFetcher:
    """Default BOINC behaviour: download every input from the data server."""

    def fetch(self, client: "Client", task: ClientTask) -> _t.Generator:
        flows = []
        for ref in task.assignment.wu.input_files:
            flows.append(client.server.dataserver.download(ref.name, client.host))
        if flows:
            yield client.sim.all_of([f.done for f in flows])


class ServerUploadPolicy:
    """Default BOINC behaviour: upload every output to the data server."""

    def handle(self, client: "Client", task: ClientTask) -> _t.Generator:
        assert task.output is not None
        nice = client.config.nice_uploads
        flows = []
        for ref in task.output.files:
            flows.append(client.server.dataserver.upload(
                ref, client.host, background=nice))
        if flows:
            yield client.sim.all_of([f.done for f in flows])
        client.server.record_upload(task.assignment.result_id)


class GenericExecutor:
    """Deterministic placeholder app: digest depends only on the workunit."""

    def execute(self, client: "Client", task: ClientTask) -> OutputData:
        wu = task.assignment.wu
        out_size = sum(ref.size for ref in wu.input_files) * 0.1
        return OutputData(
            digest=f"wu:{wu.id}",
            files=(FileRef(name=f"{wu.app_name}_{wu.id}_out_{task.assignment.result_id}",
                           size=out_size),),
        )


class Client:
    """One volunteer's BOINC client."""

    def __init__(self, sim: Simulator, net: Network, server: ProjectServer,
                 host: Host, record: HostRecord,
                 config: ClientConfig | None = None,
                 rng: np.random.Generator | None = None,
                 tracer: Tracer | None = None,
                 input_fetcher: InputFetcher | None = None,
                 output_policy: OutputPolicy | None = None,
                 executor: Executor | None = None) -> None:
        self.sim = sim
        self.net = net
        self.server = server
        self.host = host
        self.record = record
        self.config = config or ClientConfig()
        self.rng = rng or np.random.default_rng(0)
        self.tracer = tracer if tracer is not None else server.tracer
        self.input_fetcher = input_fetcher or ServerInputFetcher()
        self.output_policy = output_policy or ServerUploadPolicy()
        self.executor = executor or GenericExecutor()
        self.name = host.name

        self.endpoint = TransferEndpoint(
            sim, host,
            max_upload_conns=self.config.max_peer_upload_conns,
            max_download_conns=self.config.max_peer_download_conns)
        self.tasks: list[ClientTask] = []
        self._ready: list[ClientTask] = []
        self._cpu = SimSemaphore(sim, self.config.ncpus, name=f"{self.name}.cpu")
        self._backoff_count = 0
        self._next_allowed_rpc = 0.0
        self._wake = sim.event(f"{self.name}.wake0")
        self._main_proc: Process | None = None
        self._task_procs: list[Process] = []
        self._stopped = False
        #: Shared metrics registry (the server's, when it has one).
        self.metrics = server.metrics
        #: Diagnostics.
        self.rpcs = 0
        self.backoffs = 0

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        if self._main_proc is not None:
            raise RuntimeError(f"client {self.name} already started")
        self._main_proc = self.sim.process(self._main(), name=f"client:{self.name}")

    def shutdown(self) -> None:
        """Take the client down (volunteer churn): kill main loop and tasks."""
        self._stopped = True
        if self._main_proc is not None and self._main_proc.alive:
            self._main_proc.interrupt("shutdown")
        for proc in self._task_procs:
            if proc.alive:
                proc.interrupt("shutdown")
        self.net.set_online(self.host, False)

    # -- main loop ------------------------------------------------------------------
    def _est_queued_s(self) -> float:
        """Estimated remaining compute seconds across queued/running tasks."""
        total = 0.0
        for t in self.tasks:
            if t.state in (TaskState.DOWNLOADING, TaskState.WAITING_CPU):
                total += t.assignment.est_runtime_s
            elif t.state == TaskState.COMPUTING:
                elapsed = self.sim.now - (t.started_compute_at or self.sim.now)
                total += max(0.0, t.assignment.est_runtime_s - elapsed)
        return total

    def _main(self) -> _t.Generator:
        # Desynchronise initial contact: real volunteers never start in
        # lockstep, and a deterministic stagger keeps runs reproducible.
        stagger = float(self.rng.uniform(0.0, self.config.initial_stagger_s))
        if stagger > 0:
            yield stagger
        try:
            while not self._stopped:
                want_work = self._est_queued_s() < self.config.work_buffer_min_s
                have_reports = bool(self._ready)
                urgent = have_reports and self.config.report_immediately
                now = self.sim.now
                if (want_work or have_reports) and (now >= self._next_allowed_rpc
                                                    or urgent):
                    yield from self._rpc_cycle(want_work)
                    continue
                self._wake = self.sim.event(f"{self.name}.wake")
                if want_work or have_reports:
                    delay = max(0.0, self._next_allowed_rpc - now)
                    yield self.sim.any_of([self._wake, self.sim.timeout(delay)])
                else:
                    yield self._wake
        except Interrupted:
            return

    def _notify(self) -> None:
        self._wake.succeed_if_pending()

    def _rpc_cycle(self, want_work: bool) -> _t.Generator:
        reports = [self._to_report(t) for t in self._ready]
        reporting, self._ready = self._ready, []
        work_req = 0.0
        if want_work:
            work_req = max(0.0, self.config.work_buffer_target_s
                           - self._est_queued_s())
        request = SchedulerRequest(
            host_id=self.record.id,
            work_req_s=work_req,
            reports=reports,
        )
        self.rpcs += 1
        self.tracer.record(self.sim.now, "client.rpc_start", host=self.name,
                           work_req=work_req, n_reports=len(reports))
        rtt = self.net.rtt(self.host, self.server.host)
        if rtt > 0:
            yield self.sim.timeout(rtt)
        reply = yield self.sim.process(
            self.server.scheduler_rpc(request), name=f"rpc:{self.name}")
        self.tracer.record(self.sim.now, "client.rpc_done", host=self.name,
                           n_assignments=len(reply.assignments),
                           no_work=reply.no_work)
        for task in reporting:
            task.state = TaskState.REPORTED
        for assignment in reply.assignments:
            task = ClientTask(assignment=assignment)
            self.tasks.append(task)
            proc = self.sim.process(self._run_task(task),
                                    name=f"task:{self.name}:{assignment.result_id}")
            self._task_procs.append(proc)
        if want_work and reply.no_work:
            self._backoff_count += 1
            self.backoffs += 1
            if self.metrics is not None:
                self.metrics.counter("client.backoff_total").inc()
            delay = self._backoff_delay()
            self._next_allowed_rpc = self.sim.now + delay
            self.tracer.record(self.sim.now, "client.backoff", host=self.name,
                               count=self._backoff_count, delay=delay)
        else:
            self._backoff_count = 0
            self._next_allowed_rpc = self.sim.now + reply.request_delay_s

    def _backoff_delay(self) -> float:
        cfg = self.config
        raw = cfg.backoff_min_s * (2.0 ** (self._backoff_count - 1))
        capped = min(cfg.backoff_max_s, raw)
        return jittered(self.rng, capped, cfg.backoff_jitter)

    def _to_report(self, task: ClientTask) -> ReportedResult:
        ok = task.error is None
        return ReportedResult(
            result_id=task.assignment.result_id,
            success=ok,
            output=task.output if ok else None,
            elapsed_s=(task.finished_compute_at or 0.0)
                      - (task.started_compute_at or 0.0),
        )

    # -- task lifecycle ------------------------------------------------------------
    def _run_task(self, task: ClientTask) -> _t.Generator:
        wu = task.assignment.wu
        fetched_at = self.sim.now
        try:
            task.state = TaskState.DOWNLOADING
            self.tracer.record(self.sim.now, "task.download_start",
                               host=self.name, result=task.assignment.result_id)
            yield from self.input_fetcher.fetch(self, task)

            task.state = TaskState.WAITING_CPU
            grant = self._cpu.acquire()
            yield grant
            try:
                task.state = TaskState.COMPUTING
                task.started_compute_at = self.sim.now
                runtime = wu.flops / (self.record.flops
                                       * self.config.speed_factor)
                runtime = jittered(self.rng, runtime, self.config.compute_jitter)
                self.tracer.record(self.sim.now, "task.compute_start",
                                   host=self.name,
                                   result=task.assignment.result_id,
                                   runtime=runtime)
                yield self.sim.timeout(runtime)
                task.finished_compute_at = self.sim.now
                task.output = self.executor.execute(self, task)
            finally:
                self._cpu.release()

            task.state = TaskState.UPLOADING
            yield from self.output_policy.handle(self, task)
            task.state = TaskState.READY_TO_REPORT
            self._ready.append(task)
            self.tracer.record(self.sim.now, "task.ready", host=self.name,
                               result=task.assignment.result_id, wu=wu.id)
            if self.metrics is not None:
                self.metrics.counter("client.tasks_completed_total").inc()
                self.metrics.histogram("client.task_turnaround_s").observe(
                    self.sim.now - fetched_at)
                if task.started_compute_at is not None:
                    self.metrics.histogram("client.task_compute_s").observe(
                        (task.finished_compute_at or self.sim.now)
                        - task.started_compute_at)
            self._notify()
        except Interrupted:
            task.state = TaskState.FAILED
            task.error = "client shutdown"
        except Exception as exc:  # noqa: BLE001 - report as task failure
            task.state = TaskState.FAILED
            task.error = str(exc)
            self._ready.append(task)
            if self.metrics is not None:
                self.metrics.counter("client.tasks_failed_total").inc()
            self.tracer.record(self.sim.now, "task.failed", host=self.name,
                               result=task.assignment.result_id, error=str(exc))
            self._notify()


def make_client(sim: Simulator, net: Network, server: ProjectServer,
                name: str, flops: float = 1.0,
                link_spec=None, nat=None, supports_mr: bool = False,
                config: ClientConfig | None = None,
                rng: np.random.Generator | None = None,
                **strategies: _t.Any) -> Client:
    """Convenience factory: create host, register with server, build client."""
    from ..net import EMULAB_LINK

    host = net.add_host(name, link_spec or EMULAB_LINK, nat=nat)
    record = server.register_host(name, flops, supports_mr=supports_mr)
    return Client(sim, net, server, host, record, config=config, rng=rng,
                  **strategies)
