"""The BOINC client: pull-model work fetch, execution, upload, report.

Everything is client-initiated, as in BOINC and BOINC-MR ("communication
always starts from the client, never from the server").  The client RPCs
the scheduler when its work buffer runs low or when it has finished tasks
to report, subject to the *exponential backoff* gate: every RPC that asked
for work and got none doubles the deferral (capped, 600 s in the paper's
experiments), and — crucially for the paper's Figure 4 — a task finishing
*during* a backoff window cannot be reported until the window expires.

Task lifecycle: download inputs → wait for a CPU → compute → hand outputs
to the output policy (upload to the server, or serve to peers for BOINC-MR
map tasks) → mark ready-to-report → piggyback the report on the next
scheduler RPC.

Input fetching and output handling are strategy objects so that
:mod:`repro.core` can plug in the BOINC-MR behaviours without this module
knowing about MapReduce.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..net import (
    FlowError,
    Host,
    HostOffline,
    Network,
    TransferEndpoint,
    TransferFailed,
)
from ..sim import Interrupted, Process, Simulator, Tracer, jittered
from ..net.transfer import SimSemaphore
from .dataserver import ChecksumMismatch, ServerUnavailable
from .model import FileRef, HostRecord, OutputData
from .server import Assignment, ProjectServer, ReportedResult, SchedulerRequest


@dataclasses.dataclass(slots=True)
class ClientConfig:
    """Client-side policy knobs (BOINC preferences + paper settings)."""

    ncpus: int = 1
    #: Low watermark: request more work when the estimated *remaining*
    #: queued work drops below this (BOINC's min work buffer).  Because
    #: this is typically larger than one task, clients poll the scheduler
    #: *while still computing* — the behaviour behind the paper's Fig. 4
    #: backoff pathology.
    work_buffer_min_s: float = 120.0
    #: High watermark: ask for (target - queued) seconds of work.
    work_buffer_target_s: float = 240.0
    #: Exponential backoff after a no-work reply: min, cap (paper: 600 s).
    backoff_min_s: float = 60.0
    backoff_max_s: float = 600.0
    #: Relative jitter applied to each backoff draw (BOINC randomises
    #: its deferrals; high jitter is what makes stragglers occasional
    #: rather than universal).
    backoff_jitter: float = 0.5
    #: §IV.C ablation: report finished tasks immediately, ignoring backoff.
    report_immediately: bool = False
    #: Relative jitter on task compute times (testbed hardware/IO noise;
    #: calibrated so per-phase variance matches the paper's spread).
    compute_jitter: float = 0.15
    #: Actual compute speed relative to the benchmark speed the server
    #: knows (BOINC estimates are routinely wrong for real applications;
    #: < 1 makes this host a genuine straggler the scheduler cannot see).
    speed_factor: float = 1.0
    #: Send output uploads as TCP-Nice-style background transfers that
    #: yield to foreground traffic (Section III.D future work).
    nice_uploads: bool = False
    #: Inter-client connection threshold (Section III.C).
    max_peer_upload_conns: int = 6
    max_peer_download_conns: int = 6
    #: Initial scheduler contact is staggered by up to this many seconds.
    initial_stagger_s: float = 5.0
    #: Bounded retry for data-server transfers (503s, outages, corrupt
    #: payloads).  The backoff between attempts reuses the paper's
    #: exponential shape on its own, shorter, scale — curl retries are
    #: minutes, scheduler deferrals are tens of minutes.
    transfer_retries: int = 6
    transfer_backoff_min_s: float = 15.0
    transfer_backoff_max_s: float = 300.0


class TaskState:
    """Lifecycle states of a task on the client, download to report."""

    DOWNLOADING = "downloading"
    WAITING_CPU = "waiting_cpu"
    COMPUTING = "computing"
    UPLOADING = "uploading"
    READY_TO_REPORT = "ready_to_report"
    REPORTED = "reported"
    FAILED = "failed"


@dataclasses.dataclass(slots=True)
class ClientTask:
    """A result instance as the client sees it."""

    assignment: Assignment
    state: str = TaskState.DOWNLOADING
    output: OutputData | None = None
    started_compute_at: float | None = None
    finished_compute_at: float | None = None
    error: str | None = None


class InputFetcher(_t.Protocol):
    """Strategy: acquire a task's input data (a process body)."""

    def fetch(self, client: "Client", task: ClientTask) -> _t.Generator: ...


class OutputPolicy(_t.Protocol):
    """Strategy: dispose of a task's output data (a process body)."""

    def handle(self, client: "Client", task: ClientTask) -> _t.Generator: ...


class Executor(_t.Protocol):
    """Strategy: the application binary — produce output for a task."""

    def execute(self, client: "Client", task: ClientTask) -> OutputData: ...


def _transfer_backoff(client: "Client", attempt: int) -> float:
    cfg = client.config
    raw = cfg.transfer_backoff_min_s * (2.0 ** (attempt - 1))
    return jittered(client.rng, min(cfg.transfer_backoff_max_s, raw),
                    cfg.backoff_jitter)


def download_with_retry(client: "Client", name: str) -> _t.Generator:
    """Process body: fetch *name* from the data server with bounded retry.

    Retries 503-style refusals (:class:`ServerUnavailable`), transfers cut
    by outages or partitions (:class:`FlowError`/:class:`HostOffline`), and
    corrupt payloads (:class:`ChecksumMismatch` — the checksum catches them
    and curl re-downloads).  :class:`FileMissing` is *not* retried: a file
    the server does not hold will not appear because we ask again.  Raises
    :class:`TransferFailed` when the retry budget is exhausted.
    """
    cfg = client.config
    last = "no attempts made"
    for attempt in range(1, cfg.transfer_retries + 1):
        flow = None
        try:
            flow = client.server.dataserver.download(name, client.host)
            yield flow.done
            if flow.corrupted:
                raise ChecksumMismatch(
                    f"{name!r} failed checksum validation after download")
            return flow
        except (ServerUnavailable, HostOffline, FlowError,
                ChecksumMismatch) as exc:
            last = str(exc)
            if client.metrics is not None:
                client.metrics.counter("client.download_retries_total").inc()
            client.tracer.record(client.sim.now, "client.download_retry",
                                 host=client.name, file=name, attempt=attempt,
                                 error=last)
            if attempt >= cfg.transfer_retries:
                break
        finally:
            # Interrupted (churn kill) can land on either yield: never
            # leave the flow consuming bandwidth unobserved.
            if flow is not None and not flow.finished:
                client.net.flownet.abort_flow(flow, reason="download cancelled")
        yield client.sim.timeout(_transfer_backoff(client, attempt))
    raise TransferFailed(
        f"download of {name!r} failed after {cfg.transfer_retries} "
        f"attempts: {last}")


def upload_with_retry(client: "Client", ref: FileRef,
                      background: bool = False) -> _t.Generator:
    """Process body: upload *ref* to the data server with bounded retry."""
    cfg = client.config
    last = "no attempts made"
    for attempt in range(1, cfg.transfer_retries + 1):
        flow = None
        try:
            flow = client.server.dataserver.upload(ref, client.host,
                                                   background=background)
            yield flow.done
            return flow
        except (ServerUnavailable, HostOffline, FlowError) as exc:
            last = str(exc)
            if client.metrics is not None:
                client.metrics.counter("client.upload_retries_total").inc()
            client.tracer.record(client.sim.now, "client.upload_retry",
                                 host=client.name, file=ref.name,
                                 attempt=attempt, error=last)
            if attempt >= cfg.transfer_retries:
                break
        finally:
            if flow is not None and not flow.finished:
                client.net.flownet.abort_flow(flow, reason="upload cancelled")
        yield client.sim.timeout(_transfer_backoff(client, attempt))
    raise TransferFailed(
        f"upload of {ref.name!r} failed after {cfg.transfer_retries} "
        f"attempts: {last}")


class ServerInputFetcher:
    """Default BOINC behaviour: download every input from the data server.

    Downloads run as parallel child processes (concurrent flows, each with
    its own retry loop); cancelling the task cascades to them so no flow
    or retry timer outlives the fetch.
    """

    def fetch(self, client: "Client", task: ClientTask) -> _t.Generator:
        """Download every input from the project data server, in parallel."""
        procs = [
            client.sim.process(download_with_retry(client, ref.name),
                               name=f"download:{client.name}:{ref.name}")
            for ref in task.assignment.wu.input_files
        ]
        if not procs:
            return
        try:
            yield client.sim.all_of(procs)
        finally:
            for proc in procs:
                if proc.alive:
                    proc.interrupt("input fetch cancelled")


class ServerUploadPolicy:
    """Default BOINC behaviour: upload every output to the data server."""

    def handle(self, client: "Client", task: ClientTask) -> _t.Generator:
        """Upload every output file to the project data server."""
        assert task.output is not None
        nice = client.config.nice_uploads
        procs = [
            client.sim.process(upload_with_retry(client, ref, background=nice),
                               name=f"upload:{client.name}:{ref.name}")
            for ref in task.output.files
        ]
        try:
            if procs:
                yield client.sim.all_of(procs)
        finally:
            for proc in procs:
                if proc.alive:
                    proc.interrupt("output upload cancelled")
        client.server.record_upload(task.assignment.result_id)


class GenericExecutor:
    """Deterministic placeholder app: digest depends only on the workunit."""

    def execute(self, client: "Client", task: ClientTask) -> OutputData:
        """Produce a generic output sized at 10% of the inputs."""
        wu = task.assignment.wu
        out_size = sum(ref.size for ref in wu.input_files) * 0.1
        digest = f"wu:{wu.id}"
        if getattr(client, "corrupt_results", False):
            # Byzantine fault: a digest no honest replica reproduces.
            digest = f"corrupt:{client.name}:{digest}"
        return OutputData(
            digest=digest,
            files=(FileRef(name=f"{wu.app_name}_{wu.id}_out_{task.assignment.result_id}",
                           size=out_size),),
        )


class Client:
    """One volunteer's BOINC client."""

    def __init__(self, sim: Simulator, net: Network, server: ProjectServer,
                 host: Host, record: HostRecord,
                 config: ClientConfig | None = None,
                 rng: np.random.Generator | None = None,
                 tracer: Tracer | None = None,
                 input_fetcher: InputFetcher | None = None,
                 output_policy: OutputPolicy | None = None,
                 executor: Executor | None = None) -> None:
        """Wire a client to its simulator, network, server and policies."""
        self.sim = sim
        self.net = net
        self.server = server
        self.host = host
        self.record = record
        self.config = config or ClientConfig()
        self.rng = rng or np.random.default_rng(0)
        self.tracer = tracer if tracer is not None else server.tracer
        self.input_fetcher = input_fetcher or ServerInputFetcher()
        self.output_policy = output_policy or ServerUploadPolicy()
        self.executor = executor or GenericExecutor()
        self.name = host.name

        self.endpoint = TransferEndpoint(
            sim, host,
            max_upload_conns=self.config.max_peer_upload_conns,
            max_download_conns=self.config.max_peer_download_conns)
        self.tasks: list[ClientTask] = []
        self._ready: list[ClientTask] = []
        self._cpu = SimSemaphore(sim, self.config.ncpus, name=f"{self.name}.cpu")
        self._backoff_count = 0
        self._next_allowed_rpc = 0.0
        #: Gate after a *failed* scheduler contact (server down, partition).
        #: Unlike ``_next_allowed_rpc``, even urgent reports respect it —
        #: there is no point hammering a server that refused us.
        self._comm_gate = 0.0
        self._rpc_failures = 0
        self._wake = sim.event(f"{self.name}.wake0")
        self._main_proc: Process | None = None
        self._task_procs: list[Process] = []
        self._stopped = False
        #: Fault injection: compute-time multiplier (> 1 = straggler).
        self.slowdown = 1.0
        #: Fault injection: every produced result digest is corrupted.
        self.corrupt_results = False
        #: Shared metrics registry (the server's, when it has one).
        self.metrics = server.metrics
        #: Diagnostics.
        self.rpcs = 0
        self.backoffs = 0
        self.rpc_retries = 0

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Launch the work-fetch/execute main loop (once)."""
        if self._main_proc is not None:
            raise RuntimeError(f"client {self.name} already started")
        self._main_proc = self.sim.process(self._main(), name=f"client:{self.name}")

    def shutdown(self) -> None:
        """Take the client down (volunteer churn): kill main loop and tasks."""
        self._stopped = True
        if self._main_proc is not None and self._main_proc.alive:
            self._main_proc.interrupt("shutdown")
        for proc in self._task_procs:
            if proc.alive:
                proc.interrupt("shutdown")
        self.net.set_online(self.host, False)

    # -- main loop ------------------------------------------------------------------
    def _est_queued_s(self) -> float:
        """Estimated remaining compute seconds across queued/running tasks."""
        total = 0.0
        for t in self.tasks:
            if t.state in (TaskState.DOWNLOADING, TaskState.WAITING_CPU):
                total += t.assignment.est_runtime_s
            elif t.state == TaskState.COMPUTING:
                elapsed = self.sim.now - (t.started_compute_at or self.sim.now)
                total += max(0.0, t.assignment.est_runtime_s - elapsed)
        return total

    def _main(self) -> _t.Generator:
        # Desynchronise initial contact: real volunteers never start in
        # lockstep, and a deterministic stagger keeps runs reproducible.
        stagger = float(self.rng.uniform(0.0, self.config.initial_stagger_s))
        if stagger > 0:
            yield stagger
        try:
            while not self._stopped:
                want_work = self._est_queued_s() < self.config.work_buffer_min_s
                have_reports = bool(self._ready)
                urgent = have_reports and self.config.report_immediately
                now = self.sim.now
                if (want_work or have_reports) and now >= self._comm_gate and (
                        now >= self._next_allowed_rpc or urgent):
                    yield from self._rpc_cycle(want_work)
                    continue
                self._wake = self.sim.event(f"{self.name}.wake")
                if want_work or have_reports:
                    wait_until = 0.0 if urgent else self._next_allowed_rpc
                    wait_until = max(wait_until, self._comm_gate)
                    delay = max(0.0, wait_until - now)
                    yield self.sim.any_of([self._wake, self.sim.timeout(delay)])
                else:
                    yield self._wake
        except Interrupted:
            return

    def _notify(self) -> None:
        self._wake.succeed_if_pending()

    def _rpc_cycle(self, want_work: bool) -> _t.Generator:
        reports = [self._to_report(t) for t in self._ready]
        reporting, self._ready = self._ready, []
        work_req = 0.0
        if want_work:
            work_req = max(0.0, self.config.work_buffer_target_s
                           - self._est_queued_s())
        request = SchedulerRequest(
            host_id=self.record.id,
            work_req_s=work_req,
            reports=reports,
        )
        self.rpcs += 1
        self.tracer.record(self.sim.now, "client.rpc_start", host=self.name,
                           work_req=work_req, n_reports=len(reports))
        try:
            if not self.host.online or not self.net.reachable(self.host,
                                                              self.server.host):
                raise ServerUnavailable(
                    f"project server unreachable from {self.name}")
            rtt = self.net.rtt(self.host, self.server.host)
            if rtt > 0:
                yield self.sim.timeout(rtt)
            reply = yield self.sim.process(
                self.server.scheduler_rpc(request), name=f"rpc:{self.name}")
        except ServerUnavailable as exc:
            # Lost contact (crash fault or partition).  Put the reports
            # back for the next attempt and retry on the paper's
            # exponential backoff + jitter shape — BOINC clients poll a
            # dead project forever; nothing is abandoned.
            self._ready = reporting + self._ready
            self._rpc_failures += 1
            self.rpc_retries += 1
            if self.metrics is not None:
                self.metrics.counter("client.rpc_retries_total").inc()
            delay = self._comm_backoff()
            self._comm_gate = self.sim.now + delay
            self.tracer.record(self.sim.now, "client.rpc_failed",
                               host=self.name, error=str(exc),
                               failures=self._rpc_failures, delay=delay)
            return
        self._rpc_failures = 0
        self._comm_gate = 0.0
        self.tracer.record(self.sim.now, "client.rpc_done", host=self.name,
                           n_assignments=len(reply.assignments),
                           no_work=reply.no_work)
        for task in reporting:
            task.state = TaskState.REPORTED
        for assignment in reply.assignments:
            task = ClientTask(assignment=assignment)
            self.tasks.append(task)
            proc = self.sim.process(self._run_task(task),
                                    name=f"task:{self.name}:{assignment.result_id}")
            self._task_procs.append(proc)
        if want_work and reply.no_work:
            self._backoff_count += 1
            self.backoffs += 1
            if self.metrics is not None:
                self.metrics.counter("client.backoff_total").inc()
            delay = self._backoff_delay()
            self._next_allowed_rpc = self.sim.now + delay
            self.tracer.record(self.sim.now, "client.backoff", host=self.name,
                               count=self._backoff_count, delay=delay)
        else:
            self._backoff_count = 0
            self._next_allowed_rpc = self.sim.now + reply.request_delay_s

    def _backoff_delay(self) -> float:
        cfg = self.config
        raw = cfg.backoff_min_s * (2.0 ** (self._backoff_count - 1))
        capped = min(cfg.backoff_max_s, raw)
        return jittered(self.rng, capped, cfg.backoff_jitter)

    def _comm_backoff(self) -> float:
        """Deferral after a failed contact: same shape, own counter."""
        cfg = self.config
        raw = cfg.backoff_min_s * (2.0 ** (self._rpc_failures - 1))
        capped = min(cfg.backoff_max_s, raw)
        return jittered(self.rng, capped, cfg.backoff_jitter)

    def _to_report(self, task: ClientTask) -> ReportedResult:
        ok = task.error is None
        return ReportedResult(
            result_id=task.assignment.result_id,
            success=ok,
            output=task.output if ok else None,
            elapsed_s=(task.finished_compute_at or 0.0)
                      - (task.started_compute_at or 0.0),
        )

    # -- task lifecycle ------------------------------------------------------------
    def _run_task(self, task: ClientTask) -> _t.Generator:
        wu = task.assignment.wu
        fetched_at = self.sim.now
        try:
            task.state = TaskState.DOWNLOADING
            self.tracer.record(self.sim.now, "task.download_start",
                               host=self.name, result=task.assignment.result_id)
            yield from self.input_fetcher.fetch(self, task)

            task.state = TaskState.WAITING_CPU
            grant = self._cpu.acquire()
            try:
                # The yield is inside the try: a churn kill landing while
                # we are still *queued* for the CPU must withdraw the
                # pending grant (settle), or the slot is leaked forever.
                yield grant
                task.state = TaskState.COMPUTING
                task.started_compute_at = self.sim.now
                runtime = wu.flops / (self.record.flops
                                       * self.config.speed_factor)
                runtime = jittered(self.rng, runtime, self.config.compute_jitter)
                runtime *= self.slowdown  # straggler fault, 1.0 when healthy
                self.tracer.record(self.sim.now, "task.compute_start",
                                   host=self.name,
                                   result=task.assignment.result_id,
                                   runtime=runtime)
                yield self.sim.timeout(runtime)
                task.finished_compute_at = self.sim.now
                task.output = self.executor.execute(self, task)
            finally:
                self._cpu.settle(grant)

            task.state = TaskState.UPLOADING
            yield from self.output_policy.handle(self, task)
            task.state = TaskState.READY_TO_REPORT
            self._ready.append(task)
            self.tracer.record(self.sim.now, "task.ready", host=self.name,
                               result=task.assignment.result_id, wu=wu.id)
            if self.metrics is not None:
                self.metrics.counter("client.tasks_completed_total").inc()
                self.metrics.histogram("client.task_turnaround_s").observe(
                    self.sim.now - fetched_at)
                if task.started_compute_at is not None:
                    self.metrics.histogram("client.task_compute_s").observe(
                        (task.finished_compute_at or self.sim.now)
                        - task.started_compute_at)
            self._notify()
        except Interrupted:
            task.state = TaskState.FAILED
            task.error = "client shutdown"
        except Exception as exc:  # noqa: BLE001 - report as task failure
            task.state = TaskState.FAILED
            task.error = str(exc)
            self._ready.append(task)
            if self.metrics is not None:
                self.metrics.counter("client.tasks_failed_total").inc()
            self.tracer.record(self.sim.now, "task.failed", host=self.name,
                               result=task.assignment.result_id, error=str(exc))
            self._notify()


def make_client(sim: Simulator, net: Network, server: ProjectServer,
                name: str, flops: float = 1.0,
                link_spec=None, nat=None, supports_mr: bool = False,
                config: ClientConfig | None = None,
                rng: np.random.Generator | None = None,
                **strategies: _t.Any) -> Client:
    """Convenience factory: create host, register with server, build client."""
    from ..net import EMULAB_LINK

    host = net.add_host(name, link_spec or EMULAB_LINK, nat=nat)
    record = server.register_host(name, flops, supports_mr=supports_mr)
    return Client(sim, net, server, host, record, config=config, rng=rng,
                  **strategies)
