"""Project data server: the HTTP file store clients download from/upload to.

BOINC input files live on the project's data servers and every transfer is
client-initiated HTTP (curl).  Here a :class:`DataServer` is a network host
holding a catalogue of named files; downloads and uploads are flows through
the shared server access link, which is exactly what makes the via-server
path a bottleneck compared to inter-client transfers (the paper's central
bandwidth argument).

Fault injection (:mod:`repro.faults`) degrades the service through three
knobs: ``available`` (503-style refusals the client retries with the
paper's exponential backoff + jitter), ``slow_factor`` (per-transfer rate
caps modelling an overloaded server), and ``corrupt_rate`` (served payloads
that fail the client's checksum validation, forcing a re-download).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..net import Flow, Host, Network
from ..sim import Simulator, Tracer
from .model import FileRef


class FileMissing(KeyError):
    """A client asked for a file the data server does not hold."""


class ServerUnavailable(RuntimeError):
    """503-style refusal: the service is down or shedding load; retry later."""

    def __init__(self, what: str, retry_after_s: float = 0.0) -> None:
        """Server refused *what*; retry no sooner than *retry_after_s*."""
        super().__init__(what)
        self.retry_after_s = retry_after_s


class ChecksumMismatch(RuntimeError):
    """A downloaded file failed checksum validation (corrupt transfer)."""


class FileCatalogue:
    """Named-file catalogue + availability knob, shared by every transport.

    The transport-agnostic half of a data server: which files exist, the
    served/received byte accounting, and the 503-style availability flag.
    :class:`DataServer` adds simulated flow transfers on top;
    :class:`repro.gateway.files.BlobStore` adds real bytes served over
    live HTTP.  Both therefore refuse, account, and catalogue identically.
    """

    def __init__(self) -> None:
        """An empty catalogue, available, with zeroed accounting."""
        self.files: dict[str, FileRef] = {}
        self.bytes_served = 0.0
        self.bytes_received = 0.0
        #: Fault injection: False makes every request a 503-style refusal.
        self.available = True
        #: Diagnostics.
        self.refusals = 0

    # -- catalogue ------------------------------------------------------------
    def publish(self, ref: FileRef) -> None:
        """Make *ref* available for download (idempotent re-publish allowed)."""
        self.files[ref.name] = ref

    def has(self, name: str) -> bool:
        """True when *name* is published."""
        return name in self.files

    def unpublish(self, name: str) -> None:
        """Remove *name* from the store (idempotent)."""
        self.files.pop(name, None)


class DataServer(FileCatalogue):
    """File catalogue + simulated transfer endpoints on a server host."""

    def __init__(self, sim: Simulator, net: Network, host: Host,
                 tracer: Tracer | None = None) -> None:
        """An empty file store served from *host* over *net*."""
        super().__init__()
        self.sim = sim
        self.net = net
        self.host = host
        self.tracer = tracer
        #: Fault injection: < 1 caps each transfer to this fraction of the
        #: server access-link capacity (overload / throttling).
        self.slow_factor = 1.0
        #: Fault injection: probability a served download arrives corrupt
        #: (``corrupt_rng`` draws the dice; rate 1 needs no rng).
        self.corrupt_rate = 0.0
        self.corrupt_rng: np.random.Generator | None = None
        self.corrupt_serves = 0

    # -- fault hooks ----------------------------------------------------------
    def _refuse(self, op: str, name: str, peer: Host) -> None:
        self.refusals += 1
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "dataserver.refused", op=op,
                               file=name, host=peer.name)
        raise ServerUnavailable(f"data server refused {op} of {name!r}")

    def _rate_cap(self) -> float | None:
        if self.slow_factor >= 1.0:
            return None
        return max(self.slow_factor, 1e-6) * self.host.uplink.capacity

    def _maybe_corrupt(self, flow: Flow, name: str, to: Host) -> None:
        if self.corrupt_rate <= 0:
            return
        hit = (self.corrupt_rate >= 1.0
               or (self.corrupt_rng is not None
                   and self.corrupt_rng.random() < self.corrupt_rate))
        if hit:
            flow.corrupted = True
            self.corrupt_serves += 1
            if self.tracer is not None:
                self.tracer.record(self.sim.now, "dataserver.corrupt_serve",
                                   file=name, to=to.name)

    # -- transfers ------------------------------------------------------------
    def download(self, name: str, to: Host) -> Flow:
        """Start an HTTP download of file *name* to host *to*."""
        if not self.available:
            self._refuse("download", name, to)
        ref = self.files.get(name)
        if ref is None:
            raise FileMissing(name)
        flow = self.net.transfer(self.host, to, ref.size,
                                 label=f"http:{name}->{to.name}",
                                 max_rate=self._rate_cap())
        self._maybe_corrupt(flow, name, to)
        self.bytes_served += ref.size
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "dataserver.download",
                               file=name, to=to.name, size=ref.size)
        return flow

    def upload(self, ref: FileRef, frm: Host,
               on_done: _t.Callable[[], None] | None = None,
               background: bool = False) -> Flow:
        """Start an HTTP upload of *ref* from host *frm*.

        The file enters the catalogue when the flow completes (a partially
        uploaded file is not served).  ``background=True`` sends it as a
        TCP-Nice-style transfer that only uses spare bandwidth (Section
        III.D: "optimizes bandwidth consumption by proactively detecting
        congestion ... optimized to support background transfers").
        """
        if not self.available:
            self._refuse("upload", ref.name, frm)
        flow = self.net.transfer(frm, self.host, ref.size,
                                 label=f"http:{frm.name}->{ref.name}",
                                 background=background,
                                 max_rate=self._rate_cap())

        def _complete(ev) -> None:
            if ev.exception is not None:
                return  # aborted upload leaves no file behind
            self.publish(ref)
            self.bytes_received += ref.size
            if self.tracer is not None:
                self.tracer.record(self.sim.now, "dataserver.upload",
                                   file=ref.name, frm=frm.name, size=ref.size)
            if on_done is not None:
                on_done()

        flow.done.add_callback(_complete)
        return flow
