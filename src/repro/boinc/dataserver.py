"""Project data server: the HTTP file store clients download from/upload to.

BOINC input files live on the project's data servers and every transfer is
client-initiated HTTP (curl).  Here a :class:`DataServer` is a network host
holding a catalogue of named files; downloads and uploads are flows through
the shared server access link, which is exactly what makes the via-server
path a bottleneck compared to inter-client transfers (the paper's central
bandwidth argument).
"""

from __future__ import annotations

import typing as _t

from ..net import Flow, Host, Network
from ..sim import Simulator, Tracer
from .model import FileRef


class FileMissing(KeyError):
    """A client asked for a file the data server does not hold."""


class DataServer:
    """File catalogue + transfer endpoints on a server host."""

    def __init__(self, sim: Simulator, net: Network, host: Host,
                 tracer: Tracer | None = None) -> None:
        self.sim = sim
        self.net = net
        self.host = host
        self.tracer = tracer
        self.files: dict[str, FileRef] = {}
        self.bytes_served = 0.0
        self.bytes_received = 0.0

    # -- catalogue ------------------------------------------------------------
    def publish(self, ref: FileRef) -> None:
        """Make *ref* available for download (idempotent re-publish allowed)."""
        self.files[ref.name] = ref

    def has(self, name: str) -> bool:
        return name in self.files

    def unpublish(self, name: str) -> None:
        self.files.pop(name, None)

    # -- transfers ------------------------------------------------------------
    def download(self, name: str, to: Host) -> Flow:
        """Start an HTTP download of file *name* to host *to*."""
        ref = self.files.get(name)
        if ref is None:
            raise FileMissing(name)
        flow = self.net.transfer(self.host, to, ref.size,
                                 label=f"http:{name}->{to.name}")
        self.bytes_served += ref.size
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "dataserver.download",
                               file=name, to=to.name, size=ref.size)
        return flow

    def upload(self, ref: FileRef, frm: Host,
               on_done: _t.Callable[[], None] | None = None,
               background: bool = False) -> Flow:
        """Start an HTTP upload of *ref* from host *frm*.

        The file enters the catalogue when the flow completes (a partially
        uploaded file is not served).  ``background=True`` sends it as a
        TCP-Nice-style transfer that only uses spare bandwidth (Section
        III.D: "optimizes bandwidth consumption by proactively detecting
        congestion ... optimized to support background transfers").
        """
        flow = self.net.transfer(frm, self.host, ref.size,
                                 label=f"http:{frm.name}->{ref.name}",
                                 background=background)

        def _complete(ev) -> None:
            if ev.exception is not None:
                return  # aborted upload leaves no file behind
            self.publish(ref)
            self.bytes_received += ref.size
            if self.tracer is not None:
                self.tracer.record(self.sim.now, "dataserver.upload",
                                   file=ref.name, frm=frm.name, size=ref.size)
            if on_done is not None:
                on_done()

        flow.done.add_callback(_complete)
        return flow
