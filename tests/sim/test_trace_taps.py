"""Tests for Tracer.tap semantics, the per-kind index, and interval drains."""

import pytest

from repro.sim import IntervalAccumulator, Tracer


class TestTapOrdering:
    def test_taps_called_in_registration_order(self):
        tracer = Tracer()
        calls = []
        tracer.tap(lambda rec: calls.append(("first", rec.kind)))
        tracer.tap(lambda rec: calls.append(("second", rec.kind)))
        tracer.record(1.0, "a")
        assert calls == [("first", "a"), ("second", "a")]

    def test_tap_sees_record_already_stored(self):
        tracer = Tracer()
        seen = []
        tracer.tap(lambda rec: seen.append(len(tracer.records)))
        tracer.record(1.0, "a")
        assert seen == [1]  # stored before the tap runs

    def test_tap_called_for_dropped_records(self):
        tracer = Tracer(keep=lambda kind: False)
        seen = []
        tracer.tap(lambda rec: seen.append(rec.kind))
        tracer.record(1.0, "a")
        assert seen == ["a"] and tracer.records == []

    def test_tap_exception_propagates_and_skips_later_taps(self):
        tracer = Tracer()
        later = []
        tracer.tap(lambda rec: (_ for _ in ()).throw(RuntimeError("tap boom")))
        tracer.tap(lambda rec: later.append(rec))
        with pytest.raises(RuntimeError, match="tap boom"):
            tracer.record(1.0, "a")
        assert later == []
        # The record itself was kept and counted before the tap ran.
        assert len(tracer.records) == 1 and tracer.counts["a"] == 1

    def test_untap_removes_observer(self):
        tracer = Tracer()
        seen = []
        fn = seen.append
        tracer.tap(fn)
        tracer.record(1.0, "a")
        tracer.untap(fn)
        tracer.untap(fn)  # no-op on a missing tap
        tracer.record(2.0, "a")
        assert len(seen) == 1


class TestPerKindIndex:
    def test_select_by_kind_matches_full_scan(self):
        tracer = Tracer()
        for i in range(50):
            tracer.record(float(i), "even" if i % 2 == 0 else "odd", i=i)
        fast = tracer.select("even")
        slow = [r for r in tracer.records if r.kind == "even"]
        assert fast == slow

    def test_field_filters_still_apply(self):
        tracer = Tracer()
        tracer.record(1.0, "a", host="x")
        tracer.record(2.0, "a", host="y")
        assert [r.time for r in tracer.select("a", host="y")] == [2.0]

    def test_unknown_kind_is_empty(self):
        assert Tracer().select("nope") == []

    def test_index_respects_keep_predicate(self):
        tracer = Tracer(keep=lambda kind: kind == "keepme")
        tracer.record(1.0, "keepme")
        tracer.record(2.0, "dropme")
        assert len(tracer.select("keepme")) == 1
        assert tracer.select("dropme") == []
        assert tracer.counts["dropme"] == 1

    def test_first_last_times_use_index(self):
        tracer = Tracer()
        tracer.record(1.0, "k", n=1)
        tracer.record(2.0, "k", n=2)
        assert tracer.first("k").time == 1.0
        assert tracer.last("k")["n"] == 2
        assert tracer.times("k") == [1.0, 2.0]


class TestIntervalDrain:
    def test_open_items_in_opening_order(self):
        acc = IntervalAccumulator()
        acc.open("b", 1.0)
        acc.open("a", 2.0)
        assert acc.open_items() == [("b", 1.0), ("a", 2.0)]

    def test_close_all_drains_and_records(self):
        acc = IntervalAccumulator()
        acc.open("x", 1.0)
        acc.open("y", 3.0)
        drained = acc.close_all(10.0)
        assert drained == [("x", 1.0, 10.0), ("y", 3.0, 10.0)]
        assert acc.open_count == 0
        assert acc.closed[-2:] == drained

    def test_close_all_clamps_instead_of_going_backwards(self):
        acc = IntervalAccumulator()
        acc.open("late", 5.0)
        assert acc.close_all(2.0) == [("late", 5.0, 5.0)]

    def test_close_all_empty_is_noop(self):
        assert IntervalAccumulator().close_all(1.0) == []

    def test_normal_close_unaffected(self):
        acc = IntervalAccumulator()
        acc.open("x", 1.0)
        assert acc.close("x", 4.0) == 3.0
        assert acc.close_all(9.0) == []
