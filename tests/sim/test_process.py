"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupted, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_process_yields_delays(sim):
    log = []

    def body():
        log.append(sim.now)
        yield 3.0
        log.append(sim.now)
        yield 2.0
        log.append(sim.now)

    sim.process(body())
    sim.run()
    assert log == [0.0, 3.0, 5.0]


def test_process_return_value_becomes_event_value(sim):
    def body():
        yield 1.0
        return "result"

    proc = sim.process(body())
    sim.run()
    assert proc.value == "result"


def test_process_waits_on_event_and_receives_value(sim):
    ev = sim.event()
    got = []

    def body():
        got.append((yield ev))

    sim.process(body())
    sim.schedule(4.0, ev.trigger, "payload")
    sim.run()
    assert got == ["payload"]


def test_process_waits_on_process(sim):
    def child():
        yield 5.0
        return 99

    def parent():
        value = yield sim.process(child())
        return value + 1

    proc = sim.process(parent())
    sim.run()
    assert proc.value == 100


def test_yield_none_resumes_same_instant(sim):
    times = []

    def body():
        times.append(sim.now)
        yield None
        times.append(sim.now)

    sim.schedule(2.0, lambda: sim.process(body()))
    sim.run()
    assert times == [2.0, 2.0]


def test_non_generator_rejected(sim):
    with pytest.raises(TypeError, match="generator"):
        sim.process(lambda: None)


def test_yielding_garbage_fails_process(sim):
    def body():
        yield "nonsense"

    proc = sim.process(body())
    with pytest.raises(TypeError, match="yielded"):
        sim.run()
    assert proc.triggered and not proc.ok


def test_unobserved_exception_propagates(sim):
    def body():
        yield 1.0
        raise ValueError("model bug")

    sim.process(body())
    with pytest.raises(ValueError, match="model bug"):
        sim.run()


def test_observed_exception_delivered_to_waiter(sim):
    def child():
        yield 1.0
        raise ValueError("child died")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return f"caught: {exc}"

    proc = sim.process(parent())
    sim.run()
    assert proc.value == "caught: child died"


def test_failed_event_raises_inside_process(sim):
    ev = sim.event()

    def body():
        try:
            yield ev
        except RuntimeError:
            return "handled"

    proc = sim.process(body())
    sim.schedule(1.0, ev.fail, RuntimeError("io error"))
    sim.run()
    assert proc.value == "handled"


def test_interrupt_raises_interrupted(sim):
    def body():
        try:
            yield 100.0
        except Interrupted as exc:
            return ("interrupted", exc.cause, sim.now)

    proc = sim.process(body())
    sim.schedule(5.0, proc.interrupt, "user shutdown")
    sim.run()
    assert proc.value == ("interrupted", "user shutdown", 5.0)


def test_interrupt_unhandled_fails_process(sim):
    def body():
        yield 100.0

    def parent():
        try:
            yield proc
        except Interrupted:
            return "saw interrupt"

    proc = sim.process(body())
    par = sim.process(parent())
    sim.schedule(1.0, proc.interrupt)
    sim.run()
    assert par.value == "saw interrupt"


def test_interrupt_after_completion_is_noop(sim):
    def body():
        yield 1.0
        return "done"

    proc = sim.process(body())
    sim.schedule(5.0, proc.interrupt)
    sim.run()
    assert proc.value == "done"


def test_stale_event_does_not_resume_interrupted_process(sim):
    """After an interrupt, the original event firing must not re-enter the body."""
    ev = sim.event()
    resumed = []

    def body():
        try:
            yield ev
            resumed.append("event path")
        except Interrupted:
            yield 10.0  # still alive; stale ev wakeup must not resume us early
            resumed.append("interrupt path")

    proc = sim.process(body())
    sim.schedule(1.0, proc.interrupt)
    sim.schedule(2.0, ev.trigger, "late")
    sim.run()
    assert resumed == ["interrupt path"]
    assert sim.now == 11.0


def test_anyof_inside_process_returns_winning_event(sim):
    data_ready = sim.event("data")

    def body():
        timeout = sim.timeout(10.0)
        winner = yield sim.any_of([data_ready, timeout])
        return "data" if winner is data_ready else "timeout"

    proc = sim.process(body())
    sim.schedule(3.0, data_ready.trigger)
    sim.run()
    assert proc.value == "data"


def test_anyof_timeout_branch(sim):
    data_ready = sim.event("data")

    def body():
        timeout = sim.timeout(10.0)
        winner = yield sim.any_of([data_ready, timeout])
        return "data" if winner is data_ready else "timeout"

    proc = sim.process(body())
    sim.run()
    assert proc.value == "timeout"
    assert sim.now == 10.0


def test_two_processes_interleave_deterministically(sim):
    log = []

    def worker(name, period):
        for _ in range(3):
            yield period
            log.append((sim.now, name))

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 3.0))
    sim.run()
    # At t=6 both fire; b's timeout was created earlier (t=3 vs t=4), so FIFO
    # tie-breaking runs b first — deterministic across runs.
    assert log == [
        (2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a"), (9.0, "b"),
    ]


def test_process_waiting_on_itself_fails(sim):
    holder = {}

    def body():
        yield holder["proc"]

    holder["proc"] = sim.process(body())
    with pytest.raises(RuntimeError, match="waited on itself"):
        sim.run()
