"""Unit tests for Event / Timeout / AllOf / AnyOf."""

import pytest

from repro.sim import AllOf, AnyOf, Event, EventAlreadyTriggered, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_event_starts_pending(sim):
    ev = sim.event("x")
    assert not ev.triggered
    assert not ev.ok


def test_trigger_sets_value(sim):
    ev = sim.event()
    ev.trigger(42)
    assert ev.triggered and ev.ok
    assert ev.value == 42


def test_value_before_trigger_raises(sim):
    with pytest.raises(RuntimeError):
        sim.event().value


def test_double_trigger_rejected(sim):
    ev = sim.event()
    ev.trigger()
    with pytest.raises(EventAlreadyTriggered):
        ev.trigger()


def test_fail_then_trigger_rejected(sim):
    ev = sim.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(EventAlreadyTriggered):
        ev.trigger()


def test_fail_requires_exception_instance(sim):
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_failed_event_value_raises_original(sim):
    ev = sim.event()
    ev.fail(ValueError("boom"))
    assert not ev.ok
    with pytest.raises(ValueError, match="boom"):
        ev.value


def test_succeed_if_pending(sim):
    ev = sim.event()
    assert ev.succeed_if_pending(1) is True
    assert ev.succeed_if_pending(2) is False
    assert ev.value == 1


def test_callback_runs_through_scheduler(sim):
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.trigger("hello")
    assert seen == []  # not synchronous
    sim.run()
    assert seen == ["hello"]


def test_callback_added_after_trigger_still_runs(sim):
    ev = sim.event()
    ev.trigger(7)
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == [7]


def test_timeout_fires_at_delay(sim):
    t = sim.timeout(5.0, value="done")
    sim.run()
    assert sim.now == 5.0
    assert t.value == "done"


def test_timeout_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_zero_delay_ok(sim):
    t = sim.timeout(0.0)
    sim.run()
    assert t.triggered
    assert sim.now == 0.0


def test_allof_collects_values_in_order(sim):
    a, b, c = sim.event(), sim.event(), sim.event()
    cond = sim.all_of([a, b, c])
    sim.schedule(3.0, c.trigger, "C")
    sim.schedule(1.0, a.trigger, "A")
    sim.schedule(2.0, b.trigger, "B")
    sim.run()
    assert cond.triggered
    assert cond.value == ["A", "B", "C"]


def test_allof_waits_for_all(sim):
    a, b = sim.event(), sim.event()
    cond = sim.all_of([a, b])
    sim.schedule(1.0, a.trigger)
    sim.run()
    assert not cond.triggered


def test_allof_fails_on_child_failure(sim):
    a, b = sim.event(), sim.event()
    cond = sim.all_of([a, b])
    sim.schedule(1.0, a.fail, RuntimeError("x"))
    sim.run()
    assert cond.triggered and not cond.ok


def test_allof_empty_rejected(sim):
    with pytest.raises(ValueError):
        sim.all_of([])


def test_anyof_fires_on_first_and_identifies_winner(sim):
    a, b = sim.event("a"), sim.event("b")
    cond = sim.any_of([a, b])
    sim.schedule(2.0, b.trigger, "B")
    sim.schedule(5.0, a.trigger, "A")
    sim.run()
    assert cond.value is b
    assert cond.value.value == "B"


def test_anyof_ignores_later_children(sim):
    a, b = sim.event(), sim.event()
    cond = sim.any_of([a, b])
    sim.schedule(1.0, a.trigger, 1)
    sim.schedule(2.0, b.trigger, 2)
    sim.run()
    assert cond.value is a


def test_anyof_with_pretriggered_child(sim):
    a = sim.event()
    a.trigger("early")
    b = sim.event()
    cond = sim.any_of([a, b])
    sim.run()
    assert cond.triggered
    assert cond.value is a


def test_condition_over_timeouts_acts_as_race(sim):
    fast = sim.timeout(1.0, value="fast")
    slow = sim.timeout(10.0, value="slow")
    cond = sim.any_of([fast, slow])
    sim.run(until_event=cond)
    assert cond.value is fast
    assert sim.now == 1.0
