"""Unit tests for RNG streams and the tracer."""

import pytest

from repro.sim import IntervalAccumulator, RngRegistry, Tracer
from repro.sim.rng import jittered


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("x").random(10).tolist()
        b = RngRegistry(42).stream("x").random(10).tolist()
        assert a == b

    def test_different_names_independent(self):
        reg = RngRegistry(42)
        a = reg.stream("a").random(10).tolist()
        b = reg.stream("b").random(10).tolist()
        assert a != b

    def test_creation_order_irrelevant(self):
        r1 = RngRegistry(7)
        r1.stream("first")
        x1 = r1.stream("second").random(5).tolist()
        r2 = RngRegistry(7)
        x2 = r2.stream("second").random(5).tolist()
        assert x1 == x2

    def test_stream_is_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("s") is reg.stream("s")

    def test_stream_state_advances(self):
        reg = RngRegistry(0)
        a = reg.stream("s").random()
        b = reg.stream("s").random()
        assert a != b

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(5).tolist()
        b = RngRegistry(2).stream("x").random(5).tolist()
        assert a != b

    def test_fork_deterministic(self):
        a = RngRegistry(3).fork(5).stream("x").random(5).tolist()
        b = RngRegistry(3).fork(5).stream("x").random(5).tolist()
        assert a == b

    def test_fork_differs_from_parent(self):
        base = RngRegistry(3)
        assert base.fork(1).stream("x").random(5).tolist() != base.stream("x").random(5).tolist()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("42")


class TestJittered:
    def test_zero_jitter_exact(self):
        rng = RngRegistry(0).stream("j")
        assert jittered(rng, 10.0, 0.0) == 10.0

    def test_jitter_within_bounds(self):
        rng = RngRegistry(0).stream("j")
        for _ in range(200):
            v = jittered(rng, 10.0, 0.2)
            assert 8.0 <= v <= 12.0

    def test_invalid_jitter_rejected(self):
        rng = RngRegistry(0).stream("j")
        with pytest.raises(ValueError):
            jittered(rng, 1.0, -0.1)
        with pytest.raises(ValueError):
            jittered(rng, 1.0, 1.0)


class TestTracer:
    def test_record_and_select(self):
        tr = Tracer()
        tr.record(1.0, "rpc", host="h1")
        tr.record(2.0, "rpc", host="h2")
        tr.record(3.0, "upload", host="h1")
        assert len(tr.select("rpc")) == 2
        assert tr.select("rpc", host="h1")[0].time == 1.0

    def test_select_missing_field_no_match(self):
        tr = Tracer()
        tr.record(1.0, "rpc")
        assert tr.select("rpc", host="h1") == []

    def test_select_field_none_matches_explicit_none(self):
        tr = Tracer()
        tr.record(1.0, "rpc", host=None)
        assert len(tr.select("rpc", host=None)) == 1

    def test_first_and_last(self):
        tr = Tracer()
        tr.record(1.0, "x", k=1)
        tr.record(5.0, "x", k=2)
        assert tr.first("x").get("k") == 1
        assert tr.last("x").get("k") == 2
        assert tr.first("nothing") is None

    def test_times(self):
        tr = Tracer()
        for t in (1.0, 4.0, 9.0):
            tr.record(t, "tick")
        assert tr.times("tick") == [1.0, 4.0, 9.0]

    def test_counts_maintained_even_when_filtered(self):
        tr = Tracer(keep=lambda kind: kind != "noisy")
        tr.record(1.0, "noisy")
        tr.record(2.0, "keep")
        assert len(tr.records) == 1
        assert tr.counts["noisy"] == 1

    def test_tap_sees_filtered_records(self):
        seen = []
        tr = Tracer(keep=lambda kind: False)
        tr.tap(lambda rec: seen.append(rec.kind))
        tr.record(1.0, "a")
        assert seen == ["a"]
        assert len(tr.records) == 0

    def test_record_getitem(self):
        tr = Tracer()
        tr.record(1.0, "x", foo="bar")
        assert tr.records[0]["foo"] == "bar"
        assert tr.records[0].get("nope", 0) == 0


class TestIntervalAccumulator:
    def test_open_close_duration(self):
        acc = IntervalAccumulator()
        acc.open("task1", 10.0)
        assert acc.close("task1", 25.0) == 15.0
        assert acc.durations() == [15.0]

    def test_double_open_rejected(self):
        acc = IntervalAccumulator()
        acc.open("t", 0.0)
        with pytest.raises(ValueError):
            acc.open("t", 1.0)

    def test_close_unopened_rejected(self):
        with pytest.raises(ValueError):
            IntervalAccumulator().close("t", 1.0)

    def test_close_before_open_rejected(self):
        acc = IntervalAccumulator()
        acc.open("t", 10.0)
        with pytest.raises(ValueError):
            acc.close("t", 5.0)

    def test_reopen_after_close(self):
        acc = IntervalAccumulator()
        acc.open("t", 0.0)
        acc.close("t", 1.0)
        acc.open("t", 2.0)
        acc.close("t", 5.0)
        assert acc.durations() == [1.0, 3.0]

    def test_open_count(self):
        acc = IntervalAccumulator()
        acc.open("a", 0.0)
        acc.open("b", 0.0)
        assert acc.open_count == 2
        acc.close("a", 1.0)
        assert acc.open_count == 1
