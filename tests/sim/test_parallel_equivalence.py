"""Sequential-equivalence oracle for the parallel engine.

The tier-1 contract from the parallel-DES design: for any seed and any
logical-process count, the partitioned engine must execute the exact same
event sequence as the sequential engine — verified here byte-for-byte on
the exported chrome trace and JSONL event log, plus the engine-level
scalars (dispatch count, final clock, peak queue depth).

A hypothesis property additionally pins per-host RNG isolation: the
draws a client's own ``numpy`` stream produces are a function of
``(seed, host name)`` only, never of how hosts were sharded across LPs.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoincMRConfig, MapReduceJobSpec, VolunteerCloud
from repro.core.system import CloudSpec
from repro.obs import chrome_trace_json, trace_to_jsonl

#: LP counts every scenario must reproduce exactly.
LP_SWEEP = (1, 2, 4)


def _run_cloud(seed, engine="sequential", sim_workers=1, n_volunteers=6):
    spec = CloudSpec(seed=seed, engine=engine, sim_workers=sim_workers,
                     mr_config=BoincMRConfig())
    cloud = VolunteerCloud(spec)
    cloud.add_volunteers(n_volunteers, mr=True)
    cloud.attach_observability(spans=True, probes=False, profile=False)
    cloud.run_job(MapReduceJobSpec("wc", n_maps=6, n_reducers=2,
                                   input_size=60e6))
    cloud.finish_observability()
    return cloud


def _fingerprint(cloud):
    return {
        "chrome": chrome_trace_json(cloud.span_builder),
        "jsonl": trace_to_jsonl(cloud.tracer),
        "dispatches": cloud.sim.dispatch_count,
        "now": cloud.sim.now,
        "peak_pending": cloud.sim.peak_pending,
    }


class TestByteIdenticalTraces:
    def test_parallel_matches_sequential_at_every_lp_count(self):
        baseline = _fingerprint(_run_cloud(seed=3))
        assert baseline["dispatches"] > 0
        assert json.loads(baseline["chrome"])["traceEvents"]
        for workers in LP_SWEEP:
            got = _fingerprint(_run_cloud(seed=3, engine="parallel",
                                          sim_workers=workers))
            assert got == baseline, f"diverged at sim_workers={workers}"

    def test_other_seed_differs_but_stays_equivalent(self):
        # Guards against a vacuously-passing oracle (e.g. empty traces).
        base3 = _fingerprint(_run_cloud(seed=3))
        base7 = _fingerprint(_run_cloud(seed=7))
        assert base3["jsonl"] != base7["jsonl"]
        got = _fingerprint(_run_cloud(seed=7, engine="parallel",
                                      sim_workers=4))
        assert got == base7

    def test_parallel_engine_reports_window_structure(self):
        cloud = _run_cloud(seed=3, engine="parallel", sim_workers=4)
        sim = cloud.sim
        assert sim.window_count > 0
        assert sim.window_events_total == sim.dispatch_count
        assert 0.0 < sim.lookahead < float("inf")


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_per_host_rng_isolated_from_partitioning(seed):
    """Per-host RNG draws are identical across partition counts 1/2/4."""
    draws = []
    for workers in LP_SWEEP:
        spec = CloudSpec(seed=seed, engine="parallel", sim_workers=workers,
                         mr_config=BoincMRConfig())
        cloud = VolunteerCloud(spec)
        cloud.add_volunteers(4, mr=True)
        cloud.start()
        cloud.sim.run(until=30.0)
        draws.append([(c.host.name, tuple(c.rng.random(3)))
                      for c in cloud.clients])
    assert draws[0] == draws[1] == draws[2]
