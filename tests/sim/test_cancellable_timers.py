"""Cancellable timers and event-queue hygiene (TimerHandle)."""

import pytest

from repro.sim import Simulator, TimerHandle


class TestScheduleCancellable:
    def test_fires_like_plain_schedule(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_cancellable(5.0, fired.append, "x")
        assert isinstance(handle, TimerHandle)
        sim.run()
        assert fired == ["x"]
        assert sim.now == pytest.approx(5.0)

    def test_cancel_prevents_dispatch(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_cancellable(5.0, fired.append, "x")
        assert handle.cancel()
        sim.run()
        assert fired == []
        # A cancelled-only queue never advances the clock.
        assert sim.now == pytest.approx(0.0)

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule_cancellable(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        handle = sim.schedule_cancellable(1.0, lambda: None)
        sim.run()
        assert handle.cancel() is False

    def test_cancelled_timer_does_not_block_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule_cancellable(1.0, order.append, "dead").cancel()
        sim.schedule(2.0, order.append, "live")
        sim.run()
        assert order == ["live"]
        assert sim.now == pytest.approx(2.0)


class TestQueueAccounting:
    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule_cancellable(float(i + 1), lambda: None)
                   for i in range(5)]
        assert sim.pending() == 5
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending() == 3

    def test_peak_pending_high_water_mark(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(float(i), lambda: None)
        assert sim.peak_pending >= 7
        sim.run()
        # The mark survives the drain.
        assert sim.peak_pending >= 7

    def test_cancelled_heads_are_pruned(self):
        """Mass-cancelled timers must not linger at the heap front."""
        sim = Simulator()
        handles = [sim.schedule_cancellable(1.0, lambda: None)
                   for _ in range(100)]
        for h in handles:
            h.cancel()
        marker = []
        sim.schedule(2.0, marker.append, True)
        sim.step()
        assert marker == [True]

    def test_determinism_with_cancellations(self):
        """Cancel churn must not perturb dispatch order of survivors."""
        def run(cancel):
            sim = Simulator()
            order = []
            hs = [sim.schedule_cancellable(1.0, order.append, i)
                  for i in range(10)]
            if cancel:
                for i in (1, 4, 7):
                    hs[i].cancel()
            sim.run()
            return order

        survivors = [i for i in range(10) if i not in (1, 4, 7)]
        assert run(cancel=True) == survivors
        assert [i for i in run(cancel=False) if i not in (1, 4, 7)] == survivors


class TestLazyPruning:
    """Regression tests for the lazy-heap-pruning blind spot.

    Before opportunistic compaction, mass cancellation (connection-retry
    timers, speculative-execution kills) left tombstones in the heap until
    the clock happened to sweep past them — ``pending()`` stayed correct
    but memory and push/pop costs grew unboundedly far in the future.
    """

    def test_pending_correct_with_many_cancelled(self):
        sim = Simulator()
        live = [sim.schedule_cancellable(1e9 + i, lambda: None)
                for i in range(3)]
        dead = [sim.schedule_cancellable(5e8 + i, lambda: None)
                for i in range(2000)]
        assert sim.pending() == 2003
        for h in dead:
            h.cancel()
        assert sim.pending() == 3
        assert all(h.active for h in live)

    def test_peak_pending_unaffected_by_compaction(self):
        sim = Simulator()
        handles = [sim.schedule_cancellable(float(i + 1), lambda: None)
                   for i in range(2000)]
        assert sim.peak_pending == 2000
        for h in handles:
            h.cancel()
        # Compaction shrinks the queue but never rewrites the high-water
        # mark; pending() drops to the true live count.
        assert sim.peak_pending == 2000
        assert sim.pending() == 0

    def test_compaction_bounds_heap_memory(self):
        """Cancelled tombstones are swept once they dominate the heap."""
        sim = Simulator()
        keeper = sim.schedule_cancellable(1e9, lambda: None)
        for _ in range(2000):
            sim.schedule_cancellable(1.0, lambda: None).cancel()
        # Without compaction the queue would hold 2001 entries.
        assert len(sim._queue) < 1200
        assert sim.pending() == 1
        assert keeper.active

    def test_compaction_preserves_survivor_order(self):
        sim = Simulator()
        order = []
        for i in range(20):
            sim.schedule_cancellable(float(100 + i), order.append, i)
        for _ in range(2000):
            sim.schedule_cancellable(1.0, lambda: None).cancel()
        sim.run()
        assert order == list(range(20))

    def test_small_churn_stays_lazy(self):
        """Below the threshold, cancel() must not pay a compaction sweep."""
        sim = Simulator()
        for _ in range(100):
            sim.schedule_cancellable(1.0, lambda: None).cancel()
        # Tombstones are still present (pruned lazily at pop time).
        assert len(sim._queue) == 100
        assert sim.pending() == 0
