"""Unit tests for the LP-partitioned parallel engine (repro.sim.parallel)."""

import pytest

from repro.sim import (
    ParallelSimulator,
    Partitioner,
    SimulationError,
    Simulator,
)


class TestPartitioner:
    def test_none_maps_to_server_lp(self):
        part = Partitioner(4)
        assert part.assign(None) == 0

    def test_round_robin_over_worker_lps(self):
        part = Partitioner(3)  # LP 0 reserved; workers are 1 and 2
        assert [part.assign(f"h{i}") for i in range(5)] == [1, 2, 1, 2, 1]

    def test_assignment_is_stable(self):
        part = Partitioner(4)
        first = part.assign("alpha")
        for _ in range(3):
            part.assign("beta")
            assert part.assign("alpha") == first

    def test_single_lp_takes_everything(self):
        part = Partitioner(1)
        assert part.assign("x") == 0 and part.assign(None) == 0

    def test_rejects_zero_lps(self):
        with pytest.raises(ValueError):
            Partitioner(0)


class TestConstruction:
    def test_defaults(self):
        sim = ParallelSimulator(n_lps=4)
        assert sim.lp_count == 4
        assert sim.pending() == 0

    def test_rejects_negative_lookahead(self):
        with pytest.raises(ValueError):
            ParallelSimulator(n_lps=2, lookahead=-1.0)

    def test_rejects_mismatched_partitioner(self):
        with pytest.raises(ValueError):
            ParallelSimulator(n_lps=2, partitioner=Partitioner(3))

    def test_shrink_lookahead_only_lowers(self):
        sim = ParallelSimulator(n_lps=2, lookahead=0.5)
        assert sim.shrink_lookahead(0.9) == 0.5
        assert sim.shrink_lookahead(0.1) == 0.1
        with pytest.raises(ValueError):
            sim.shrink_lookahead(-0.1)


class TestRouting:
    def test_partition_scope_routes_scheduling(self):
        sim = ParallelSimulator(n_lps=3)
        with sim.partition("h0"):
            sim.schedule(1.0, lambda: None)
        target = sim.lps[sim.partitioner.assign("h0")]
        assert target.index != 0
        assert len(target.heap) == 1
        assert not sim.lps[0].heap

    def test_executing_lp_inherited_by_new_entries(self):
        sim = ParallelSimulator(n_lps=3)
        hit = []

        def chained():
            hit.append(sim.now)

        def first():
            sim.schedule(1.0, chained)

        with sim.partition("h0"):
            sim.schedule(1.0, first)
        sim.run()
        lp = sim.lps[sim.partitioner.assign("h0")]
        assert lp.executed == 2 and hit == [2.0]

    def test_event_waiter_resumes_in_home_lp(self):
        sim = ParallelSimulator(n_lps=3, lookahead=1.0)
        log = []

        with sim.partition("h0"):
            ev = sim.event("wakeup")

            def waiter():
                got = yield ev
                log.append(got)

            sim.process(waiter())
        with sim.partition(None):
            # A bare lambda has no home LP, so it executes in LP 0; the
            # trigger inside it then schedules the waiter's resume.
            sim.schedule(5.0, lambda: ev.trigger(42))
        sim.run()
        assert log == [42]
        home = sim.lps[sim.partitioner.assign("h0")]
        # The trigger ran in LP 0; the resume was a cross-partition delivery
        # into the waiter's LP, under the lookahead (zero-delay wakeup).
        assert home.cross_in >= 1
        assert home.below_lookahead >= 1
        assert sim.cross_deliveries() >= 1

    def test_factories_stamp_home_lp(self):
        sim = ParallelSimulator(n_lps=2)
        with sim.partition("h0"):
            assert sim.event().lp is sim.lps[1]
            assert sim.timeout(1.0).lp is sim.lps[1]
            assert sim.all_of([sim.event()]).lp is sim.lps[1]
            assert sim.any_of([sim.event()]).lp is sim.lps[1]
        assert sim.event().lp is sim.lps[0]


class TestExecutionSemantics:
    def _interleaved(self, sim, use_partition):
        order = []
        for i in range(12):
            delay = (i * 7) % 5 + 0.5
            if use_partition:
                with sim.partition(f"h{i % 4}"):
                    sim.schedule(delay, order.append, (delay, i))
            else:
                sim.schedule(delay, order.append, (delay, i))
        sim.run()
        return order

    def test_merge_order_matches_sequential(self):
        baseline = self._interleaved(Simulator(), False)
        for n in (1, 2, 4):
            got = self._interleaved(
                ParallelSimulator(n_lps=n, lookahead=0.25), True)
            assert got == baseline

    def test_run_until_advances_clock(self):
        sim = ParallelSimulator(n_lps=2)
        with sim.partition("h0"):
            sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_event_stops(self):
        sim = ParallelSimulator(n_lps=2, lookahead=10.0)
        ev = sim.event()
        with sim.partition("h0"):
            sim.schedule(1.0, ev.trigger)
            sim.schedule(5.0, lambda: None)
        sim.run(until_event=ev)
        # Stops once the event has fired; the 5.0 entry stays queued.
        assert sim.now < 5.0 and sim.pending() == 1

    def test_stop_halts_mid_window(self):
        sim = ParallelSimulator(n_lps=2, lookahead=100.0)
        ran = []
        with sim.partition("h0"):
            sim.schedule(1.0, lambda: (ran.append("a"), sim.stop()))
            sim.schedule(2.0, ran.append, "b")
        sim.run()
        assert ran == ["a"] and sim.pending() == 1

    def test_max_steps_raises(self):
        sim = ParallelSimulator(n_lps=2)

        def respawn():
            sim.schedule(1.0, respawn)

        sim.schedule(1.0, respawn)
        with pytest.raises(SimulationError, match="max_steps"):
            sim.run(max_steps=50)

    def test_reentrant_run_rejected(self):
        sim = ParallelSimulator(n_lps=2)
        errors = []

        def inner():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, inner)
        sim.run()
        assert len(errors) == 1

    def test_step_and_peek(self):
        sim = ParallelSimulator(n_lps=2)
        with sim.partition("h0"):
            sim.schedule(2.0, lambda: None)
        with sim.partition(None):
            sim.schedule(1.0, lambda: None)
        assert sim.peek() == 1.0
        assert sim.step() is True
        assert sim.now == 1.0
        assert sim.step() is True and sim.step() is False
        assert sim.peek() == pytest.approx(float("inf"))


class TestAccounting:
    def test_pending_and_peak_across_lps(self):
        sim = ParallelSimulator(n_lps=3)
        handles = []
        for i in range(6):
            with sim.partition(f"h{i % 2}"):
                handles.append(sim.schedule_cancellable(float(i + 1),
                                                        lambda: None))
        assert sim.pending() == 6 and sim.peak_pending == 6
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending() == 4
        sim.run()
        assert sim.pending() == 0
        assert sim.dispatch_count == 4
        assert sim.peak_pending == 6

    def test_window_statistics_populated(self):
        sim = ParallelSimulator(n_lps=2, lookahead=0.5)
        for i in range(8):
            with sim.partition(f"h{i}"):
                sim.schedule(float(i) * 0.25, lambda: None)
        sim.run()
        assert sim.window_count >= 1
        assert sim.window_events_total == 8
        assert sim.mean_window_events() > 0
        rows = sim.lp_stats()
        assert [r["lp"] for r in rows] == [0, 1]
        assert sum(r["executed"] for r in rows) == 8
        for row in rows:
            assert {"pending", "cross_in", "below_lookahead", "lag_mean",
                    "lag_max"} <= row.keys()

    def test_per_lp_compaction_bounds_heap(self):
        sim = ParallelSimulator(n_lps=2)
        with sim.partition("h0"):
            live = sim.schedule_cancellable(1e6, lambda: None)
            for _ in range(1200):
                sim.schedule_cancellable(1.0, lambda: None).cancel()
        lp = sim.lps[1]
        assert len(lp.heap) < 1200
        assert sim.pending() == 1
        assert live.active
