"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=100.0).now == 100.0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_callbacks_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_same_time_callbacks_run_fifo():
    sim = Simulator()
    seen = []
    for label in "abcde":
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == list("abcde")


def test_priority_overrides_fifo_at_same_instant():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "normal")
    sim.schedule(1.0, seen.append, "high", priority=PRIORITY_HIGH)
    sim.schedule(1.0, seen.append, "low", priority=PRIORITY_LOW)
    sim.run()
    assert seen == ["high", "normal", "low"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(math.nan, lambda: None)


def test_at_schedules_absolute_time():
    sim = Simulator()
    seen = []
    sim.at(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]


def test_at_in_the_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.at(5.0, lambda: None)


def test_call_soon_runs_at_current_instant():
    sim = Simulator()
    seen = []

    def outer():
        sim.call_soon(lambda: seen.append(sim.now))

    sim.schedule(2.0, outer)
    sim.run()
    assert seen == [2.0]


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    sim.schedule(100.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0
    assert sim.pending() == 1


def test_run_until_past_queue_drain_still_advances_clock():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=50.0)
    assert sim.now == 50.0


def test_run_until_event():
    sim = Simulator()
    ev = sim.event()
    sim.schedule(3.0, ev.trigger)
    sim.schedule(9.0, lambda: None)
    sim.run(until_event=ev)
    assert sim.now == 3.0
    assert ev.triggered


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, seen.append, "late")
    sim.run()
    assert seen == []
    assert sim.pending() == 1


def test_max_steps_detects_livelock():
    sim = Simulator()

    def respawn():
        sim.call_soon(respawn)

    sim.call_soon(respawn)
    with pytest.raises(SimulationError, match="max_steps"):
        sim.run(max_steps=100)


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() == math.inf
    sim.schedule(4.0, lambda: None)
    assert sim.peek() == 4.0


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_dispatch_count_increments():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.dispatch_count == 5


def test_reentrant_run_rejected():
    sim = Simulator()

    def inner():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, inner)
    sim.run()


def test_scheduling_during_run_is_honoured():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(5.0, lambda: seen.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 6.0
