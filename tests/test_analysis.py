"""Unit tests for trace analysis and table/figure rendering."""

import pytest

from repro.analysis import (
    backoff_delays,
    format_cell,
    job_metrics,
    render_series,
    render_table,
    render_timeline,
    report_lags,
    task_intervals,
)
from repro.sim import Tracer


def synth_trace():
    """Hand-built trace: 2 hosts, 2 maps (replication 1), 1 reduce."""
    tr = Tracer()
    # host A: map result 1 assigned t=0, reported t=100
    tr.record(0.0, "sched.assign", host="A", result=1, wu=1, job="j",
              kind="map", index=0)
    tr.record(100.0, "sched.report", host="A", result=1, wu=1, success=True,
              job="j", kind="map", index=0)
    # host B: map result 2 assigned t=0, reported t=400 (straggler)
    tr.record(0.0, "sched.assign", host="B", result=2, wu=2, job="j",
              kind="map", index=1)
    tr.record(400.0, "sched.report", host="B", result=2, wu=2, success=True,
              job="j", kind="map", index=1)
    # reduce on host A: assigned 450, reported 600
    tr.record(450.0, "sched.assign", host="A", result=3, wu=3, job="j",
              kind="reduce", index=0)
    tr.record(600.0, "sched.report", host="A", result=3, wu=3, success=True,
              job="j", kind="reduce", index=0)
    # ready events for report-lag analysis
    tr.record(90.0, "task.ready", host="A", result=1, wu=1)
    tr.record(150.0, "task.ready", host="B", result=2, wu=2)
    tr.record(590.0, "task.ready", host="A", result=3, wu=3)
    return tr


class TestTaskIntervals:
    def test_join(self):
        ivs = task_intervals(synth_trace(), "j")
        assert len(ivs) == 3
        by_result = {iv.result_id: iv for iv in ivs}
        assert by_result[1].duration == 100.0
        assert by_result[2].duration == 400.0
        assert by_result[2].host == "B"

    def test_failed_reports_excluded(self):
        tr = synth_trace()
        tr.record(10.0, "sched.assign", host="A", result=9, wu=9, job="j",
                  kind="map", index=5)
        tr.record(20.0, "sched.report", host="A", result=9, wu=9,
                  success=False, job="j", kind="map", index=5)
        assert len(task_intervals(tr, "j")) == 3

    def test_other_jobs_excluded(self):
        tr = synth_trace()
        tr.record(0.0, "sched.assign", host="A", result=8, wu=8, job="other",
                  kind="map", index=0)
        tr.record(5.0, "sched.report", host="A", result=8, wu=8, success=True,
                  job="other", kind="map", index=0)
        assert len(task_intervals(tr, "j")) == 3


class TestJobMetrics:
    def test_means_and_discard(self):
        m = job_metrics(synth_trace(), "j")
        assert m.map_stats.mean == pytest.approx(250.0)
        # B is the slowest node in the map phase; discard its results.
        assert m.map_stats.slowest_host == "B"
        assert m.map_stats.mean_discard_slowest == pytest.approx(100.0)
        assert m.reduce_stats.mean == pytest.approx(150.0)

    def test_total(self):
        m = job_metrics(synth_trace(), "j")
        assert m.total == pytest.approx(600.0)

    def test_transition_gap(self):
        m = job_metrics(synth_trace(), "j")
        assert m.transition_gap == pytest.approx(50.0)  # 450 - 400

    def test_incomplete_trace_rejected(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="incomplete"):
            job_metrics(tr, "j")

    def test_span(self):
        m = job_metrics(synth_trace(), "j")
        assert m.map_stats.span == pytest.approx(400.0)


class TestReportLags:
    def test_lags(self):
        lags = dict_of(report_lags(synth_trace(), "j"))
        assert lags["B"] == pytest.approx(250.0)  # ready 150, reported 400

    def test_backoff_delays_empty(self):
        assert backoff_delays(synth_trace()) == []

    def test_backoff_delays_filtered(self):
        tr = synth_trace()
        tr.record(1.0, "client.backoff", host="A", count=1, delay=60.0)
        tr.record(2.0, "client.backoff", host="B", count=1, delay=120.0)
        assert backoff_delays(tr) == [60.0, 120.0]
        assert backoff_delays(tr, host="B") == [120.0]


def dict_of(pairs):
    out = {}
    for host, lag in pairs:
        out[host] = max(lag, out.get(host, 0.0))
    return out


class TestRenderers:
    def test_format_cell_collapses_when_close(self):
        assert format_cell(100.0, 95.0) == "100"
        assert format_cell(700.0, 400.0) == "700 [400]"

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_timeline(self):
        text = render_timeline([("x", 0.0, 10.0), ("y", 5.0, 20.0)], width=20)
        assert "#" in text
        assert text.count("|") >= 4

    def test_render_timeline_empty(self):
        assert render_timeline([]) == "(no events)"

    def test_render_series(self):
        text = render_series([("a", 1.0), ("b", 2.0)], value_label="s")
        assert "a" in text and "2.0 s" in text

    def test_render_series_empty(self):
        assert render_series([]) == "(no data)"
