"""Tests for the descriptive statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import improvement, percentile, straggler_index, summarise


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 0) == 7.0

    def test_median_even(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_extremes(self):
        vals = [5.0, 1.0, 9.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_bounded_by_extremes(self, values, q):
        p = percentile(values, q)
        assert min(values) - 1e-9 <= p <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=2, max_size=30))
    def test_monotone_in_q(self, values):
        ps = [percentile(values, q) for q in (0, 25, 50, 75, 100)]
        assert ps == sorted(ps)


class TestSummarise:
    def test_fields(self):
        s = summarise([1.0, 2.0, 3.0, 4.0, 100.0])
        assert s.n == 5
        assert s.mean == pytest.approx(22.0)
        assert s.minimum == 1.0 and s.maximum == 100.0
        assert s.p50 == 3.0

    def test_text(self):
        text = summarise([1.0, 2.0]).text(unit="ms")
        assert "n=2" in text and "ms" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise([])


class TestStragglerIndex:
    def test_even_sample(self):
        assert straggler_index([5.0, 5.0, 5.0]) == 1.0

    def test_straggler(self):
        assert straggler_index([10.0, 10.0, 10.0, 60.0]) == pytest.approx(6.0)

    def test_nonpositive_median_rejected(self):
        with pytest.raises(ValueError):
            straggler_index([0.0, 0.0])


class TestImprovement:
    def test_positive(self):
        assert improvement(100.0, 80.0) == pytest.approx(0.2)

    def test_regression_negative(self):
        assert improvement(100.0, 120.0) == pytest.approx(-0.2)

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            improvement(0.0, 1.0)
