"""Unit tests for deterministic fault application and undo."""

import pytest

from repro.core import VolunteerCloud
from repro.faults import FaultInjector, FaultSpec


def tiny_cloud(seed=1, n=4):
    cloud = VolunteerCloud(seed=seed)
    cloud.add_volunteers(n, mr=True)
    cloud.start()
    return cloud


def inject(cloud, *specs, run_until=None):
    injector = FaultInjector(cloud, list(specs)).arm()
    if run_until is not None:
        cloud.sim.run(until=run_until)
    return injector


class TestScheduling:
    def test_begin_and_end_on_sim_time(self):
        cloud = tiny_cloud()
        victim = cloud.clients[0]
        inj = inject(cloud, FaultSpec(kind="link_flap", at=10.0,
                                      duration=5.0, target=victim.name))
        cloud.sim.run(until=12.0)
        assert not victim.host.online
        assert inj.active == 1
        cloud.sim.run(until=20.0)
        assert victim.host.online
        assert inj.active == 0
        assert inj.events == [{"fault": "f0", "kind": "link_flap",
                               "target": victim.name, "begin": 10.0,
                               "end": 15.0}]

    def test_arm_is_idempotent(self):
        cloud = tiny_cloud()
        inj = FaultInjector(cloud, [FaultSpec(kind="straggler", at=1.0,
                                              duration=2.0, target="all")])
        inj.arm().arm()
        cloud.sim.run(until=5.0)
        assert len(inj.events) == 1

    def test_tracer_records_emitted(self):
        cloud = tiny_cloud()
        inject(cloud, FaultSpec(kind="server_crash", at=1.0, duration=2.0),
               run_until=5.0)
        assert len(cloud.tracer.select("fault.begin")) == 1
        assert len(cloud.tracer.select("fault.end")) == 1

    def test_metrics_emitted(self):
        cloud = tiny_cloud()
        inject(cloud, FaultSpec(kind="server_crash", at=1.0, duration=2.0),
               run_until=5.0)
        assert cloud.metrics.counter("faults.injected_total").value == 1


class TestTargetSelection:
    def test_random_picks_are_seeded(self):
        picks = []
        for _ in range(2):
            cloud = tiny_cloud(seed=7, n=8)
            inj = inject(cloud, FaultSpec(kind="byzantine", at=1.0,
                                          duration=2.0, target="random:3"),
                         run_until=2.0)
            picks.append(inj.events[0]["target"])
        assert picks[0] == picks[1]
        assert len(picks[0].split(",")) == 3

    def test_all_targets_every_client(self):
        cloud = tiny_cloud(n=3)
        inject(cloud, FaultSpec(kind="straggler", at=1.0, duration=100.0,
                                target="all", params={"factor": 2.0}),
               run_until=2.0)
        assert all(c.slowdown == 2.0 for c in cloud.clients)

    def test_exact_name(self):
        cloud = tiny_cloud()
        victim = cloud.clients[2]
        inject(cloud, FaultSpec(kind="byzantine", at=1.0, duration=100.0,
                                target=victim.name), run_until=2.0)
        assert victim.corrupt_results
        assert not cloud.clients[0].corrupt_results

    def test_unknown_target_raises(self):
        cloud = tiny_cloud()
        inj = FaultInjector(cloud, [FaultSpec(kind="byzantine", at=1.0,
                                              duration=2.0, target="ghost")])
        inj.arm()
        with pytest.raises(ValueError, match="matches no client"):
            cloud.sim.run(until=2.0)


class TestHostFaults:
    def test_bandwidth_scales_and_restores(self):
        cloud = tiny_cloud()
        victim = cloud.clients[0]
        before = victim.host.uplink.capacity
        inject(cloud, FaultSpec(kind="bandwidth", at=1.0, duration=10.0,
                                target=victim.name, params={"factor": 0.5}))
        cloud.sim.run(until=2.0)
        assert victim.host.uplink.capacity == pytest.approx(0.5 * before)
        cloud.sim.run(until=20.0)
        assert victim.host.uplink.capacity == pytest.approx(before)

    def test_straggler_slowdown_restored(self):
        cloud = tiny_cloud()
        victim = cloud.clients[1]
        inject(cloud, FaultSpec(kind="straggler", at=1.0, duration=10.0,
                                target=victim.name, params={"factor": 6.0}))
        cloud.sim.run(until=2.0)
        assert victim.slowdown == 6.0
        cloud.sim.run(until=20.0)
        assert victim.slowdown == 1.0

    def test_straggler_factor_below_one_rejected(self):
        cloud = tiny_cloud()
        inject(cloud, FaultSpec(kind="straggler", at=1.0, duration=2.0,
                                target="random", params={"factor": 0.5}))
        with pytest.raises(ValueError, match=">= 1"):
            cloud.sim.run(until=2.0)

    def test_peer_corrupt_sets_endpoint_flag(self):
        cloud = tiny_cloud()
        victim = cloud.clients[0]
        inject(cloud, FaultSpec(kind="peer_corrupt", at=1.0, duration=10.0,
                                target=victim.name))
        cloud.sim.run(until=2.0)
        assert victim.endpoint.corrupt_serves
        cloud.sim.run(until=20.0)
        assert not victim.endpoint.corrupt_serves

    def test_link_flap_undo_spares_churned_host(self):
        """A flap ending after churn took the host must not resurrect it."""
        cloud = tiny_cloud()
        victim = cloud.clients[0]
        inject(cloud, FaultSpec(kind="link_flap", at=1.0, duration=10.0,
                                target=victim.name))
        cloud.sim.run(until=2.0)
        victim._paused = True  # churn controller took it mid-flap
        cloud.sim.run(until=20.0)
        assert not victim.host.online


class TestSingletonFaults:
    def test_partition_isolates_and_heals(self):
        cloud = tiny_cloud(n=4)
        inject(cloud, FaultSpec(kind="partition", at=1.0, duration=10.0,
                                params={"isolate": 2}))
        cloud.sim.run(until=2.0)
        islanders = [c for c in cloud.clients
                     if not cloud.net.reachable(c.host, cloud.server_host)]
        assert len(islanders) == 2
        assert cloud.net.reachable(islanders[0].host, islanders[1].host)
        cloud.sim.run(until=20.0)
        assert all(cloud.net.reachable(c.host, cloud.server_host)
                   for c in cloud.clients)

    def test_dataserver_outage_flips_availability(self):
        cloud = tiny_cloud()
        inject(cloud, FaultSpec(kind="dataserver_outage", at=1.0,
                                duration=10.0))
        cloud.sim.run(until=2.0)
        assert not cloud.server.dataserver.available
        cloud.sim.run(until=20.0)
        assert cloud.server.dataserver.available

    def test_outage_undo_defers_to_server_crash(self):
        """The outage's undo must not re-enable a crashed server's disk."""
        cloud = tiny_cloud()
        inject(cloud,
               FaultSpec(kind="dataserver_outage", at=1.0, duration=10.0),
               FaultSpec(kind="server_crash", at=5.0, duration=30.0))
        cloud.sim.run(until=12.0)  # outage undone while the crash holds
        assert not cloud.server.dataserver.available
        cloud.sim.run(until=40.0)
        assert cloud.server.dataserver.available

    def test_dataserver_slow_factor_restored(self):
        cloud = tiny_cloud()
        inject(cloud, FaultSpec(kind="dataserver_slow", at=1.0, duration=10.0,
                                params={"factor": 0.25}))
        cloud.sim.run(until=2.0)
        assert cloud.server.dataserver.slow_factor == 0.25
        cloud.sim.run(until=20.0)
        assert cloud.server.dataserver.slow_factor == 1.0

    def test_transfer_corrupt_rate_window(self):
        cloud = tiny_cloud()
        inject(cloud, FaultSpec(kind="transfer_corrupt", at=1.0,
                                duration=10.0, params={"rate": 1.0}))
        cloud.sim.run(until=2.0)
        assert cloud.server.dataserver.corrupt_rate == 1.0
        cloud.sim.run(until=20.0)
        assert cloud.server.dataserver.corrupt_rate == 0.0

    def test_daemon_stall_and_recovery(self):
        cloud = tiny_cloud()
        inject(cloud, FaultSpec(kind="daemon_stall", at=1.0, duration=10.0,
                                params={"daemon": "transitioner"}))
        cloud.sim.run(until=2.0)
        assert cloud.server._stalled_until.get("transitioner", 0.0) > 2.0
        cloud.sim.run(until=20.0)
        assert "transitioner" not in cloud.server._stalled_until

    def test_server_crash_and_restore(self):
        cloud = tiny_cloud()
        inject(cloud, FaultSpec(kind="server_crash", at=1.0, duration=10.0))
        cloud.sim.run(until=2.0)
        assert not cloud.server.available
        assert not cloud.server.dataserver.available
        assert cloud.server.crashes == 1
        cloud.sim.run(until=20.0)
        assert cloud.server.available
        assert cloud.server.dataserver.available
