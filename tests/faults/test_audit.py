"""Unit tests for the RunAuditor's end-state invariant checks."""

import pytest

from repro.boinc.model import ResultState, WorkunitState
from repro.core import MapReduceJobSpec, VolunteerCloud
from repro.faults import RunAuditor


def finished_cloud(seed=1, spans=False):
    cloud = VolunteerCloud(seed=seed)
    cloud.add_volunteers(6, mr=True)
    if spans:
        cloud.attach_observability(spans=True, probes=False)
    job = cloud.run_job(MapReduceJobSpec(
        "wc", n_maps=6, n_reducers=2, input_size=60e6))
    return cloud, job


class TestCleanRun:
    def test_audit_is_green(self):
        cloud, job = finished_cloud()
        report = cloud.audit(job)
        assert report.ok, report.render()
        assert report.checks["workunit"] > 0
        assert report.checks["result"] > 0
        assert report.checks["semaphore"] > 0

    def test_drain_reports_quiescence(self):
        cloud, job = finished_cloud()
        auditor = RunAuditor(cloud)
        auditor.settle()
        assert auditor.drain() is True

    def test_report_render_and_dict(self):
        cloud, job = finished_cloud()
        report = cloud.audit(job)
        assert "OK" in report.render()
        d = report.to_dict()
        assert d["ok"] is True and d["violations"] == []


class TestViolationDetection:
    def test_leaked_cpu_slot_detected(self):
        cloud, job = finished_cloud()
        cloud.clients[0]._cpu.acquire()  # slot held with no live process
        report = cloud.audit(job, settle=False)
        assert any(v.check == "semaphore" and "leaked" in v.detail
                   for v in report.violations)

    def test_broken_semaphore_accounting_detected(self):
        cloud, job = finished_cloud()
        cloud.clients[0]._cpu.granted_total += 1
        report = cloud.audit(job, settle=False)
        assert any(v.check == "semaphore" and "accounting" in v.detail
                   for v in report.violations)

    def test_leaked_flow_detected(self):
        cloud, job = finished_cloud()
        cloud.net.transfer(cloud.clients[0].host, cloud.clients[1].host, 1e12)
        report = cloud.audit(job, settle=False)
        assert any(v.check == "flow" for v in report.violations)

    def test_lost_result_detected(self):
        cloud, job = finished_cloud()
        res = next(iter(cloud.server.db.results.values()))
        res.state = ResultState.IN_PROGRESS
        res.deadline = 0.0  # long past; the transitioner never noticed
        report = cloud.audit(job, settle=False)
        assert any(v.check == "result" and "lost" in v.detail
                   for v in report.violations)

    def test_stale_unsent_queue_detected(self):
        cloud, job = finished_cloud()
        res = next(iter(cloud.server.db.results.values()))
        assert res.state is ResultState.OVER
        cloud.server.db._unsent[res.id] = None
        report = cloud.audit(job, settle=False)
        assert any(v.check == "result" and "stale" in v.detail
                   for v in report.violations)

    def test_errored_workunit_needs_diagnosis(self):
        cloud, job = finished_cloud()
        wu = next(iter(cloud.server.db.workunits.values()))
        wu.state = WorkunitState.ERROR
        wu.error_reason = None
        report = cloud.audit(job, settle=False)
        assert any(v.check == "workunit" and "diagnosis" in v.detail
                   for v in report.violations)

    def test_stranded_workunit_detected(self):
        cloud, job = finished_cloud()
        wu = next(iter(cloud.server.db.workunits.values()))
        wu.state = WorkunitState.ACTIVE  # but all its results are OVER
        report = cloud.audit(job, settle=False)
        assert any(v.check == "workunit" and "no path to completion" in v.detail
                   for v in report.violations)

    def test_open_span_for_dead_result_detected(self):
        class StubBuilder:
            def open_result_ids(self):
                return [999_999]

        cloud, job = finished_cloud()
        cloud.span_builder = StubBuilder()
        report = cloud.audit(job, settle=False)
        assert any(v.check == "span" and "gone" in v.detail
                   for v in report.violations)

    def test_unfinished_job_flagged(self):
        cloud = VolunteerCloud(seed=1)
        cloud.add_volunteers(6, mr=True)
        job = cloud.submit(MapReduceJobSpec(
            "wc", n_maps=6, n_reducers=2, input_size=60e6))
        cloud.sim.run(until=5.0)  # nowhere near done
        report = RunAuditor(cloud).audit(job)
        assert any(v.check == "job" and "not terminal" in v.detail
                   for v in report.violations)
        assert not report.ok
