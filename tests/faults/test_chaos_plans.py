"""End-to-end chaos runs: every bundled plan must be recovered from.

These are the acceptance tests of the fault-injection subsystem: a small
deployment runs a word-count job while a plan injects its faults, and the
RunAuditor must come back green — the job finished (or failed with a
diagnosis), nothing leaked, every result accounted for.  A final test
pins the determinism contract: same seed + same plan → byte-identical
chrome trace.
"""

import pytest

from repro.core import MapReduceJobSpec, VolunteerCloud
from repro.faults import BUILTIN_PLANS
from repro.obs import chrome_trace_json


def chaos_run(plan, seed):
    cloud = VolunteerCloud(seed=seed)
    cloud.add_volunteers(12, mr=True)
    cloud.attach_observability(spans=True, probes=False)
    injector = cloud.apply_faults(plan)
    job = cloud.submit(MapReduceJobSpec(
        "wc", n_maps=12, n_reducers=3, input_size=0.5e9))
    diagnosis = None
    try:
        cloud.run_until(job.done)
    except Exception as exc:  # noqa: BLE001 — a diagnosed failure is acceptable
        diagnosis = str(exc)
    report = cloud.audit(job)
    cloud.finish_observability()
    return cloud, job, injector, report, diagnosis


@pytest.mark.parametrize("plan", sorted(BUILTIN_PLANS))
@pytest.mark.parametrize("seed", [1, 2])
def test_bundled_plan_recovers(plan, seed):
    cloud, job, injector, report, diagnosis = chaos_run(plan, seed)
    # Terminal: finished, or failed loudly with a diagnosis.
    assert job.done.triggered
    if diagnosis is not None:
        assert str(job.done.exception)  # the diagnosis is carried
    # Faults actually fired before the run ended.
    assert injector.events, "plan injected nothing"
    # And the end state is clean: nothing leaked, nothing lost.
    assert report.ok, report.render()


def test_same_seed_same_plan_is_byte_identical():
    first = chaos_run("kitchen-sink", seed=3)
    second = chaos_run("kitchen-sink", seed=3)
    assert chrome_trace_json(first[0].span_builder) == \
        chrome_trace_json(second[0].span_builder)


def test_different_seed_differs():
    a = chaos_run("bad-volunteers", seed=1)
    b = chaos_run("bad-volunteers", seed=2)
    assert chrome_trace_json(a[0].span_builder) != \
        chrome_trace_json(b[0].span_builder)


def test_faults_are_visible_in_the_trace():
    cloud, *_ = chaos_run("kitchen-sink", seed=1)
    trace = chrome_trace_json(cloud.span_builder)
    assert '"fault:server_crash:server"' in trace
    assert '"fault:dataserver_outage:dataserver"' in trace


def test_recovery_machinery_engaged():
    """The dataserver plan must actually force client download retries."""
    cloud, *_ = chaos_run("dataserver-degraded", seed=1)
    assert len(cloud.tracer.select("client.download_retry")) > 0


def test_fault_stream_does_not_perturb_the_model():
    """Arming a plan must not change which rng draws the model sees.

    A fault-free run and an armed run share every model stream; only the
    dedicated "faults" stream differs.  Compare a model-driven quantity
    that no fault touches before its first draw: the first map dispatch.
    """
    def first_dispatch(armed):
        cloud = VolunteerCloud(seed=11)
        cloud.add_volunteers(12, mr=True)
        if armed:
            cloud.apply_faults("kitchen-sink")
        job = cloud.submit(MapReduceJobSpec(
            "wc", n_maps=12, n_reducers=3, input_size=0.5e9))
        cloud.sim.run(until=50.0)  # before the first fault at t=60
        recs = cloud.tracer.select("sched.assign")
        return [(r.time, r.get("host"), r.get("result")) for r in recs]

    plain, armed = first_dispatch(False), first_dispatch(True)
    assert plain and plain == armed
