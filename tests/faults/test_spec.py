"""Unit tests for FaultSpec and the chaos-plan loading machinery."""

import pytest

from repro.faults import (
    BUILTIN_PLANS,
    FAULT_KINDS,
    ChaosPlan,
    FaultSpec,
    load_plan,
    resolve_plan,
)


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec(kind="link_flap", at=10.0, duration=5.0,
                         target="random:2")
        assert spec.kind == "link_flap"
        assert spec.at == 10.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="meteor_strike", at=0.0, duration=1.0)

    def test_negative_at_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="link_flap", at=-1.0, duration=1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="link_flap", at=0.0, duration=0.0)

    def test_from_dict_extras_become_params(self):
        spec = FaultSpec.from_dict({"kind": "straggler", "at": 5.0,
                                    "duration": 10.0, "factor": 6.0})
        assert spec.params == {"factor": 6.0}

    def test_roundtrip(self):
        spec = FaultSpec.from_dict({"kind": "bandwidth", "at": 1.0,
                                    "duration": 2.0, "target": "all",
                                    "factor": 0.5})
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestChaosPlan:
    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="no faults"):
            ChaosPlan(name="void", description="", faults=())

    def test_builtins_are_well_formed(self):
        assert len(BUILTIN_PLANS) >= 5
        for name, plan in BUILTIN_PLANS.items():
            assert plan.name == name
            assert plan.description
            for spec in plan.faults:
                assert spec.kind in FAULT_KINDS

    def test_builtins_cover_every_fault_kind(self):
        used = {spec.kind for plan in BUILTIN_PLANS.values()
                for spec in plan.faults}
        assert used == FAULT_KINDS

    def test_resolve_builtin(self):
        assert resolve_plan("kitchen-sink") is BUILTIN_PLANS["kitchen-sink"]

    def test_resolve_unknown_lists_builtins(self):
        with pytest.raises(ValueError, match="kitchen-sink"):
            resolve_plan("no-such-plan")


class TestTomlLoading:
    TOML = """\
name = "custom"
description = "a test plan"

[[fault]]
kind = "dataserver_outage"
at = 60.0
duration = 120.0

[[fault]]
kind = "straggler"
at = 100.0
duration = 300.0
target = "random:2"
factor = 6.0
"""

    def test_load_plan(self, tmp_path):
        p = tmp_path / "plan.toml"
        p.write_text(self.TOML)
        plan = load_plan(p)
        assert plan.name == "custom"
        assert len(plan.faults) == 2
        assert plan.faults[1].params == {"factor": 6.0}

    def test_resolve_path(self, tmp_path):
        p = tmp_path / "plan.toml"
        p.write_text(self.TOML)
        assert resolve_plan(str(p)).name == "custom"

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.toml"
        p.write_text("name = 'x'\n")
        with pytest.raises(ValueError, match="no .*fault"):
            load_plan(p)

    def test_bad_kind_in_file_rejected(self, tmp_path):
        p = tmp_path / "bad.toml"
        p.write_text("[[fault]]\nkind = 'gremlins'\nat = 1.0\nduration = 1.0\n")
        with pytest.raises(ValueError, match="kind"):
            load_plan(p)
