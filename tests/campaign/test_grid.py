"""Tests for campaign cells, grids, content-hash keys, and TOML loading."""

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignGrid,
    canonical_json,
    cell_key,
    grid_from_toml,
)
from repro.sim import derive_seed


class TestCampaignCell:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            CampaignCell(kind="frobnicate", seed=1)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            CampaignCell(kind="sleep", seed=-1)

    def test_spec_roundtrip(self):
        cell = CampaignCell(kind="scenario", seed=3,
                            params={"n_nodes": 6, "n_maps": 6,
                                    "n_reducers": 2},
                            faults="flaky-network", group="g")
        again = CampaignCell.from_spec(cell.spec())
        assert again == cell
        assert again.key == cell.key

    def test_label_mentions_group_seed_faults(self):
        cell = CampaignCell(kind="churn", seed=7, group="churn",
                            faults="split-brain")
        label = cell.label()
        assert "churn" in label and "seed=7" in label
        assert "split-brain" in label


class TestCellKey:
    def test_param_order_irrelevant(self):
        a = CampaignCell(kind="sleep", seed=1,
                         params={"a": 1, "duration_s": 0.1})
        b = CampaignCell(kind="sleep", seed=1,
                         params={"duration_s": 0.1, "a": 1})
        assert a.key == b.key

    def test_group_does_not_change_identity(self):
        # The group is an aggregation label, not part of what ran.
        a = CampaignCell(kind="sleep", seed=1, group="x")
        b = CampaignCell(kind="sleep", seed=1, group="y")
        assert a.key == b.key

    def test_seed_params_faults_do_change_identity(self):
        base = CampaignCell(kind="sleep", seed=1)
        assert base.key != CampaignCell(kind="sleep", seed=2).key
        assert base.key != CampaignCell(kind="sleep", seed=1,
                                        params={"duration_s": 9}).key
        assert base.key != CampaignCell(kind="sleep", seed=1,
                                        faults="kitchen-sink").key

    def test_stable_across_processes(self):
        # A fixed spec must hash identically forever (the resume contract).
        cell = CampaignCell(kind="scenario", seed=1,
                            params={"n_nodes": 6, "n_maps": 6,
                                    "n_reducers": 2, "mr_clients": True,
                                    "input_size": 60e6})
        assert cell.key == "0c78ced8e5206001"

    def test_accepts_raw_spec_dict(self):
        cell = CampaignCell(kind="sleep", seed=4)
        assert cell_key(cell.spec()) == cell.key


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestCampaignGrid:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no cells"):
            CampaignGrid(name="empty", cells=())

    def test_duplicate_cells_rejected(self):
        cell = CampaignCell(kind="sleep", seed=1)
        with pytest.raises(ValueError, match="duplicate"):
            CampaignGrid(name="dup", cells=(cell, cell))

    def test_len_and_iter(self):
        cells = tuple(CampaignCell(kind="sleep", seed=s) for s in range(3))
        grid = CampaignGrid(name="g", cells=cells)
        assert len(grid) == 3
        assert list(grid) == list(cells)


class TestTomlGrid:
    def test_load_and_fan_out(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            'name = "custom"\n'
            'description = "two kinds"\n'
            '[[cell]]\n'
            'kind = "sleep"\n'
            'seeds = [1, 2, 3]\n'
            'group = "naps"\n'
            'params = { duration_s = 0.01 }\n'
            '[[cell]]\n'
            'kind = "churn"\n'
            'seed = 9\n')
        grid = grid_from_toml(path)
        assert grid.name == "custom"
        assert len(grid) == 4
        assert [c.seed for c in grid] == [1, 2, 3, 9]
        assert grid.cells[0].params["duration_s"] == 0.01
        assert grid.cells[0].group == "naps"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.toml"
        path.write_text('name = "nothing"\n')
        with pytest.raises(ValueError, match="no .*cell"):
            grid_from_toml(path)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "churn", 0) == derive_seed(1, "churn", 0)

    def test_labels_separate_streams(self):
        seen = {derive_seed(1, "churn", i) for i in range(100)}
        assert len(seen) == 100

    def test_base_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_non_negative_and_bounded(self):
        for s in range(20):
            derived = derive_seed(s, "label", s)
            assert 0 <= derived < 2 ** 63

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(-1, "x")
