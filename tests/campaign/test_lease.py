"""Unit tests for the lease state machine (no sockets, no clocks)."""

import pytest

from repro.campaign import CampaignCell, LeaseTable
from repro.campaign.lease import DONE, FAILED, LEASED, PENDING


def _cells(n: int) -> list[CampaignCell]:
    return [CampaignCell(kind="sleep", seed=i) for i in range(n)]


def _table(n: int = 3, **kwargs) -> LeaseTable:
    return LeaseTable(_cells(n), **kwargs)


class TestGrantAndComplete:
    def test_grant_walks_the_queue_in_order(self):
        table = _table(3)
        keys = [table.grant("w0", now=0.0).key for _ in range(3)]
        assert keys == list(table.cells)
        assert table.grant("w0", now=0.0) is None  # queue dry, no stealing

    def test_deadline_derived_from_lease_s(self):
        table = _table(1, lease_s=10.0)
        lease = table.grant("w0", now=5.0)
        assert lease.deadline == pytest.approx(15.0)

    def test_no_lease_s_means_no_deadline(self):
        assert _table(1).grant("w0", now=0.0).deadline is None

    def test_first_result_wins_and_completes(self):
        table = _table(1)
        key = table.grant("w0", now=0.0).key
        assert table.report_ok("w0", key, now=1.0) is True
        assert table.cells[key].status == DONE
        assert table.done

    def test_duplicate_result_rejected_and_counted(self):
        table = _table(1)
        key = table.grant("w0", now=0.0).key
        assert table.report_ok("w0", key, now=1.0)
        assert table.report_ok("w0", key, now=2.0) is False
        assert table.counters.duplicates == 1

    def test_result_from_reclaimed_lease_still_accepted(self):
        # The work IS done even though the table gave up on the worker.
        table = _table(1, lease_s=1.0)
        key = table.grant("w0", now=0.0).key
        table.expire(now=5.0)  # lease reclaimed, cell requeued
        assert table.cells[key].status == PENDING
        assert table.report_ok("w0", key, now=6.0) is True
        assert table.cells[key].status == DONE

    def test_done_when_all_terminal(self):
        table = _table(2, retries=0)
        k0 = table.grant("w0", now=0.0).key
        k1 = table.grant("w0", now=0.0).key
        table.report_ok("w0", k0, now=1.0)
        assert not table.done
        assert table.report_error("w0", k1, now=1.0) == "failed"
        assert table.done


class TestRetryAccounting:
    def test_error_requeues_until_budget_spent(self):
        table = _table(1, retries=2)
        key = table.grant("w0", now=0.0).key
        assert table.report_error("w0", key, now=1.0) == "retry"
        assert table.cells[key].status == PENDING
        table.grant("w1", now=2.0)
        assert table.report_error("w1", key, now=3.0) == "retry"
        table.grant("w2", now=4.0)
        assert table.report_error("w2", key, now=5.0) == "failed"
        assert table.cells[key].status == FAILED
        assert table.counters.reclaimed == 2

    def test_attempt_number_rides_the_lease(self):
        table = _table(1, retries=3)
        lease = table.grant("w0", now=0.0)
        assert lease.attempt == 0
        assert table.report_error("w0", lease.key, now=1.0) == "retry"
        assert table.grant("w1", now=2.0).attempt == 1

    def test_unknown_key_error_ignored(self):
        table = _table(1)
        assert table.report_error("w0", "nope", now=0.0) == "ignored"


class TestExpiry:
    def test_expire_reclaims_and_requeues(self):
        table = _table(1, lease_s=2.0, retries=1)
        key = table.grant("w0", now=0.0).key
        expired = table.expire(now=3.0)
        assert [l.key for l in expired] == [key]
        assert table.cells[key].status == PENDING
        assert table.counters.expired == 1
        assert table.counters.reclaimed == 1
        # the loser learns via its next heartbeat
        assert key in table.touch("w0", now=3.5)

    def test_expire_respects_deadline(self):
        table = _table(1, lease_s=10.0)
        table.grant("w0", now=0.0)
        assert table.expire(now=5.0) == []

    def test_expiry_exhausting_budget_quarantines(self):
        table = _table(1, lease_s=1.0, retries=0)
        key = table.grant("w0", now=0.0).key
        table.expire(now=2.0)
        assert table.cells[key].status == FAILED


class TestWorkerFailure:
    def test_dead_worker_detected_by_heartbeat_age(self):
        table = _table(1)
        table.register("w0", now=0.0)
        table.register("w1", now=9.5)
        assert table.dead_workers(now=10.0, liveness_s=1.5) == ["w0"]

    def test_fail_worker_reclaims_all_leases(self):
        table = _table(3, retries=1)
        for _ in range(3):
            table.grant("w0", now=0.0)
        quarantined = table.fail_worker("w0", now=1.0)
        assert quarantined == []  # first loss of each; retry budget left
        assert table.count(PENDING) == 3
        assert table.counters.workers_failed == 1
        assert table.counters.reclaimed == 3
        assert table.live_workers() == []

    def test_fail_worker_quarantines_when_budget_spent(self):
        table = _table(1, retries=0)
        key = table.grant("w0", now=0.0).key
        assert table.fail_worker("w0", now=1.0) == [key]
        assert table.cells[key].status == FAILED

    def test_fail_worker_idempotent(self):
        table = _table(1)
        table.grant("w0", now=0.0)
        table.fail_worker("w0", now=1.0)
        assert table.fail_worker("w0", now=2.0) == []
        assert table.counters.workers_failed == 1

    def test_dead_worker_can_reregister(self):
        table = _table(1)
        table.register("w0", now=0.0)
        table.fail_worker("w0", now=1.0)
        table.register("w0", now=2.0)
        assert table.live_workers() == ["w0"]


class TestStealing:
    def test_steal_duplicates_longest_held_lease(self):
        table = _table(2, steal_after_s=1.0)
        old = table.grant("w0", now=0.0).key
        table.grant("w1", now=4.0)
        lease = table.grant("w2", now=10.0)
        assert lease is not None and lease.stolen and lease.key == old
        assert table.counters.stolen == 1
        assert table.cells[old].status == LEASED

    def test_steal_waits_for_age_threshold(self):
        table = _table(1, steal_after_s=5.0)
        table.grant("w0", now=0.0)
        assert table.grant("w1", now=3.0) is None
        assert table.grant("w1", now=5.0) is not None

    def test_steal_disabled_by_default(self):
        table = _table(1)
        table.grant("w0", now=0.0)
        assert table.grant("w1", now=100.0) is None

    def test_max_leases_caps_duplicates(self):
        table = _table(1, steal_after_s=1.0, max_leases=2)
        table.grant("w0", now=0.0)
        assert table.grant("w1", now=5.0) is not None
        assert table.grant("w2", now=50.0) is None

    def test_worker_never_steals_its_own_cell(self):
        table = _table(1, steal_after_s=1.0)
        table.grant("w0", now=0.0)
        assert table.grant("w0", now=10.0) is None

    def test_first_result_revokes_the_loser(self):
        table = _table(1, steal_after_s=1.0)
        key = table.grant("w0", now=0.0).key
        table.grant("w1", now=5.0)
        assert table.report_ok("w1", key, now=6.0) is True
        assert key in table.touch("w0", now=6.5)
        assert table.report_ok("w0", key, now=7.0) is False

    def test_losing_a_duplicate_does_not_requeue(self):
        # The other lease is still in flight; no retry is charged.
        table = _table(1, lease_s=6.0, steal_after_s=1.0, retries=0)
        key = table.grant("w0", now=0.0).key
        table.grant("w1", now=5.0)       # duplicate, deadline 11.0
        table.expire(now=6.5)            # w0's original lease expires
        assert table.cells[key].status == LEASED
        assert table.cells[key].attempts == 0
        assert table.report_ok("w1", key, now=7.0) is True


class TestResume:
    def test_mark_done_skips_completed_cells(self):
        table = _table(3)
        keys = list(table.cells)
        assert table.mark_done(keys[:2]) == 2
        assert table.grant("w0", now=0.0).key == keys[2]
        assert table.grant("w0", now=0.0) is None

    def test_mark_done_ignores_unknown_keys(self):
        assert _table(1).mark_done(["nope"]) == 0


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            _table(1, retries=-1)

    def test_zero_max_leases_rejected(self):
        with pytest.raises(ValueError, match="max_leases"):
            _table(1, max_leases=0)

    def test_duplicate_cells_rejected(self):
        cell = CampaignCell(kind="sleep", seed=1)
        with pytest.raises(ValueError, match="duplicate"):
            LeaseTable([cell, cell])
