"""Property tests for multi-writer result-store merging.

The distributed campaign's crash model: several workers append to
per-worker shards, any of them may be SIGKILLed mid-append (leaving a
torn trailing line), records may be duplicated across shards (steals,
reclaimed-then-completed leases), and the same key may carry both
failed attempts and a final success.  :func:`merge_stores` must fold
any such pile back into one store whose ``load()`` view is exactly the
ok-beats-failed / last-record-wins resolution.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CellRecord, ResultStore, diff_stores, merge_stores


def _record(key: str, ok: bool, value: int) -> CellRecord:
    return CellRecord(
        key=key, spec={"kind": "sleep", "seed": 0, "params": {},
                       "faults": None, "group": "g"},
        status="ok" if ok else "failed",
        result={"value": value} if ok else None,
        meta={"wall_s": 0.1, "attempts": 1,
              **({} if ok else {"error": "boom"})})


# One shard-event: (key index, shard index, succeeded?).  Values are
# assigned sequentially so every record is distinguishable and "which
# record won" is decidable.
_events = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 3), st.booleans()),
    min_size=1, max_size=40)


def _write_shards(tmp_path, events, torn=()):
    shards = [ResultStore(tmp_path / f"shard-{i}.jsonl") for i in range(4)]
    for seq, (key_i, shard_i, ok) in enumerate(events):
        shards[shard_i].append(_record(f"k{key_i}", ok, seq))
    for shard_i in torn:
        shards[shard_i].path.parent.mkdir(exist_ok=True)
        with shards[shard_i].path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "torn", "spec"')  # killed mid-append
    return shards


def _expected(events):
    """Reference fold: ok beats failed, later-encountered wins otherwise.

    Iteration order matches the merge's: shard by shard, records in
    file (= event) order within each shard.
    """
    best = {}
    for shard_i in range(4):
        for seq, (key_i, si, ok) in enumerate(events):
            if si != shard_i:
                continue
            key = f"k{key_i}"
            current = best.get(key)
            if current is None or ok or not current[0]:
                best[key] = (ok, seq)
    return best


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(events=_events)
    def test_merge_matches_reference_fold(self, tmp_path_factory, events):
        tmp_path = tmp_path_factory.mktemp("merge")
        shards = _write_shards(tmp_path, events)
        merged = merge_stores(tmp_path / "out.jsonl", shards)
        expected = _expected(events)
        assert set(merged) == set(expected)
        for key, (ok, seq) in expected.items():
            assert merged[key].ok == ok
            if ok:
                assert merged[key].result == {"value": seq}

    @settings(max_examples=60, deadline=None)
    @given(events=_events,
           torn=st.sets(st.integers(0, 3), max_size=4))
    def test_torn_tails_never_change_the_outcome(self, tmp_path_factory,
                                                 events, torn):
        tmp_path = tmp_path_factory.mktemp("merge")
        clean = merge_stores(
            tmp_path / "clean.jsonl", _write_shards(tmp_path, events))
        torn_merge = merge_stores(
            tmp_path / "torn.jsonl",
            _write_shards(tmp_path / "t", events, torn=torn))
        assert set(clean) == set(torn_merge)
        assert diff_stores(tmp_path / "clean.jsonl",
                           tmp_path / "torn.jsonl") == []

    @settings(max_examples=60, deadline=None)
    @given(events=_events)
    def test_merged_store_roundtrips_through_load(self, tmp_path_factory,
                                                  events):
        # Writing the merged store and loading it back must resolve to
        # the same mapping merge_stores returned (the audit-trail failed
        # records it emits must lose last-record-wins).
        tmp_path = tmp_path_factory.mktemp("merge")
        merged = merge_stores(
            tmp_path / "out.jsonl", _write_shards(tmp_path, events))
        loaded = ResultStore(tmp_path / "out.jsonl").load()
        assert set(loaded) == set(merged)
        for key, record in merged.items():
            assert loaded[key].status == record.status
            assert loaded[key].result == record.result


class TestMergeRefusals:
    def test_refuses_to_merge_into_a_shard(self, tmp_path):
        shard = ResultStore(tmp_path / "shard.jsonl")
        shard.append(_record("k0", True, 1))
        with pytest.raises(ValueError, match="itself"):
            merge_stores(tmp_path / "shard.jsonl", [shard])

    def test_mid_file_corruption_refused(self, tmp_path):
        shard = ResultStore(tmp_path / "shard.jsonl")
        shard.path.write_text("garbage not json\n")
        shard.append(_record("k0", True, 1))
        with pytest.raises(ValueError, match="corrupt campaign store"):
            merge_stores(tmp_path / "out.jsonl", [shard])

    def test_missing_shard_is_empty_not_an_error(self, tmp_path):
        merged = merge_stores(tmp_path / "out.jsonl",
                              [tmp_path / "never-written.jsonl"])
        assert merged == {}

    def test_failed_audit_record_precedes_the_success(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        b = ResultStore(tmp_path / "b.jsonl")
        a.append(_record("k0", False, 0))    # killed worker's attempt
        b.append(_record("k0", True, 1))     # the retry that landed
        merge_stores(tmp_path / "out.jsonl", [b, a])  # order must not matter
        records = ResultStore(tmp_path / "out.jsonl").records()
        assert [r.status for r in records] == ["failed", "ok"]
        assert ResultStore(tmp_path / "out.jsonl").load()["k0"].ok
