"""Tests for the campaign runner: determinism, resume, timeout, quarantine."""

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignGrid,
    CampaignRunner,
    ResultStore,
    canonical_json,
    execute_cell,
)
from repro.obs import MetricsRegistry


def small_grid(n_seeds: int = 3) -> CampaignGrid:
    cells = tuple(
        CampaignCell(kind="scenario", seed=seed,
                     params={"n_nodes": 6, "n_maps": 6, "n_reducers": 2,
                             "mr_clients": True, "input_size": 60e6},
                     group="small")
        for seed in range(1, n_seeds + 1))
    return CampaignGrid(name="small", cells=cells)


def payloads(store: ResultStore) -> dict[str, str]:
    return {k: canonical_json(r.result) for k, r in store.load().items()}


class TestDeterminism:
    def test_pooled_payloads_byte_identical_to_sequential(self, tmp_path):
        grid = small_grid()
        seq = ResultStore(tmp_path / "seq.jsonl")
        par = ResultStore(tmp_path / "par.jsonl")
        assert CampaignRunner(grid, seq, workers=0).run().ok
        assert CampaignRunner(grid, par, workers=2).run().ok
        assert payloads(seq) == payloads(par)

    def test_payload_matches_direct_execute(self, tmp_path):
        grid = small_grid(n_seeds=1)
        store = ResultStore(tmp_path / "s.jsonl")
        CampaignRunner(grid, store, workers=2).run()
        direct = execute_cell(grid.cells[0].spec())
        stored = store.load()[grid.cells[0].key].result
        assert canonical_json(direct) == canonical_json(stored)

    def test_payload_is_deterministic_fields(self, tmp_path):
        # Nondeterministic bookkeeping lives in meta, not the payload.
        grid = small_grid(n_seeds=1)
        store = ResultStore(tmp_path / "s.jsonl")
        CampaignRunner(grid, store, workers=1).run()
        record = store.load()[grid.cells[0].key]
        assert "wall_s" in record.meta and "attempts" in record.meta
        assert "wall_s" not in record.result
        assert record.result["total"] > 0


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        grid = small_grid()
        store = ResultStore(tmp_path / "s.jsonl")
        first = CampaignRunner(grid, store, workers=2).run()
        assert first.ran == len(grid)
        resumed = CampaignRunner(grid, store, workers=2, resume=True).run()
        assert resumed.ran == 0
        assert resumed.skipped == len(grid)

    def test_partial_store_runs_only_remainder(self, tmp_path):
        grid = small_grid()
        store = ResultStore(tmp_path / "s.jsonl")
        CampaignRunner(CampaignGrid(name="half", cells=grid.cells[:1]),
                       store, workers=1).run()
        resumed = CampaignRunner(grid, store, workers=1, resume=True).run()
        assert resumed.skipped == 1
        assert resumed.ran == len(grid) - 1
        assert set(payloads(store)) == {c.key for c in grid}

    def test_without_resume_store_is_restarted(self, tmp_path):
        grid = small_grid(n_seeds=1)
        store = ResultStore(tmp_path / "s.jsonl")
        CampaignRunner(grid, store, workers=1).run()
        again = CampaignRunner(grid, store, workers=1).run()
        assert again.ran == 1 and again.skipped == 0
        assert len(store.load()) == 1

    def test_failed_cells_are_retried_on_resume(self, tmp_path):
        grid = CampaignGrid(
            name="g", cells=(CampaignCell(kind="sleep", seed=1,
                                          params={"duration_s": 0.01}),))
        store = ResultStore(tmp_path / "s.jsonl")
        from repro.campaign import CellRecord
        store.append(CellRecord(key=grid.cells[0].key,
                                spec=grid.cells[0].spec(), status="failed",
                                result=None, meta={"error": "earlier crash"}))
        resumed = CampaignRunner(grid, store, workers=0, resume=True).run()
        assert resumed.ran == 1 and resumed.skipped == 0
        assert store.load()[grid.cells[0].key].ok


class TestFailureHandling:
    def test_bad_cell_quarantined_with_error(self, tmp_path):
        grid = CampaignGrid(
            name="bad",
            cells=(CampaignCell(kind="scenario", seed=1,
                                params={"n_nodes": 1}),))  # missing shape
        store = ResultStore(tmp_path / "s.jsonl")
        report = CampaignRunner(grid, store, workers=1, retries=0).run()
        assert report.failed == 1 and not report.ok
        record = store.load()[grid.cells[0].key]
        assert record.status == "failed"
        assert "TypeError" in record.meta["error"]
        assert "quarantined" in report.render()

    def test_inline_mode_quarantines_too(self, tmp_path):
        grid = CampaignGrid(
            name="bad",
            cells=(CampaignCell(kind="scenario", seed=1,
                                params={"n_nodes": 1}),))
        report = CampaignRunner(grid, ResultStore(tmp_path / "s.jsonl"),
                                workers=0, retries=1).run()
        assert report.failed == 1

    def test_timeout_terminates_and_quarantines(self, tmp_path):
        grid = CampaignGrid(
            name="slow",
            cells=(CampaignCell(kind="sleep", seed=1,
                                params={"duration_s": 30.0}),
                   CampaignCell(kind="sleep", seed=2,
                                params={"duration_s": 0.01})))
        store = ResultStore(tmp_path / "s.jsonl")
        report = CampaignRunner(grid, store, workers=2, timeout_s=0.3,
                                retries=0).run()
        assert report.failed == 1 and report.ran == 1
        failed = store.load()[grid.cells[0].key]
        assert "wall-clock budget" in failed.meta["error"]

    def test_timeout_leaves_no_zombie_or_leaked_pipe(self, tmp_path):
        # Regression for the _reap timeout path: the timed-out child
        # must be terminated AND joined (no zombie to wait on later)
        # and its pipe closed (no fd leak across a long campaign).
        import multiprocessing

        grid = CampaignGrid(
            name="slow",
            cells=(CampaignCell(kind="sleep", seed=1,
                                params={"duration_s": 30.0}),))
        report = CampaignRunner(grid, ResultStore(tmp_path / "s.jsonl"),
                                workers=1, timeout_s=0.3, retries=0).run()
        assert report.failed == 1
        # active_children() reaps zombies as a side effect; after a
        # correct shutdown there is nothing left to reap or join.
        assert multiprocessing.active_children() == []

    def test_retries_counted(self, tmp_path):
        grid = CampaignGrid(
            name="slow",
            cells=(CampaignCell(kind="sleep", seed=1,
                                params={"duration_s": 30.0}),))
        metrics = MetricsRegistry()
        report = CampaignRunner(grid, ResultStore(tmp_path / "s.jsonl"),
                                workers=1, timeout_s=0.2, retries=2,
                                metrics=metrics).run()
        assert report.failed == 1
        assert metrics.counter("campaign.cells.retries").value == 2
        failed_meta = ResultStore(tmp_path / "s.jsonl").load()[
            grid.cells[0].key].meta
        assert failed_meta["attempts"] == 3


class TestProgressAndMetrics:
    def test_metrics_registry_counts(self, tmp_path):
        grid = small_grid()
        metrics = MetricsRegistry()
        CampaignRunner(grid, ResultStore(tmp_path / "s.jsonl"), workers=2,
                       metrics=metrics).run()
        assert metrics.counter("campaign.cells.completed").value == len(grid)
        assert metrics.counter("campaign.cells.quarantined").value == 0
        assert metrics.gauge("campaign.in_flight").value == 0
        hist = metrics.histogram("campaign.cell_wall_s")
        assert hist.count == len(grid)

    def test_echo_reports_every_cell(self, tmp_path):
        grid = small_grid()
        lines: list[str] = []
        CampaignRunner(grid, ResultStore(tmp_path / "s.jsonl"), workers=2,
                       echo=lines.append).run()
        assert len([ln for ln in lines if " ok " in f" {ln} "
                    or "] ok" in ln]) == len(grid)
        assert any(f"/{len(grid)}]" in ln for ln in lines)

    def test_invalid_construction(self, tmp_path):
        grid = small_grid(n_seeds=1)
        store = ResultStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError):
            CampaignRunner(grid, store, workers=-1)
        with pytest.raises(ValueError):
            CampaignRunner(grid, store, retries=-1)
