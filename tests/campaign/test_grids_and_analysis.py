"""Tests for the builtin experiment grids and campaign aggregation."""

import pytest

from repro.analysis import (
    aggregate_records,
    aggregate_store,
    render_campaign_table,
)
from repro.campaign import (
    CampaignCell,
    CampaignGrid,
    CampaignRunner,
    CellRecord,
    ResultStore,
)
from repro.experiments import (
    GRID_BUILDERS,
    PAPER_TABLE1,
    churn_grid,
    replication_grid,
    resolve_grid,
    scale_out_grid,
    table1_grid,
)


class TestBuiltinGrids:
    def test_table1_covers_every_row_and_seed(self):
        grid = table1_grid(seeds=(1, 2))
        assert len(grid) == len(PAPER_TABLE1) * 2
        groups = {c.group for c in grid}
        assert groups == {row.label for row in PAPER_TABLE1}

    def test_table1_faults_armed_on_every_cell(self):
        grid = table1_grid(seeds=(1,), faults="flaky-network")
        assert all(c.faults == "flaky-network" for c in grid)

    def test_churn_grid_derives_distinct_seeds(self):
        grid = churn_grid(seeds=(1, 2), replicates=3)
        assert len(grid) == 6
        assert len({c.seed for c in grid}) == 6

    def test_replication_grid_shape(self):
        grid = replication_grid(seeds=(1,))
        assert {c.group for c in grid} == {"repl1q1", "repl2q2", "repl3q2"}
        assert all(c.params["byzantine_rate"] == 0.2 for c in grid)

    def test_scale_out_grid_shape(self):
        grid = scale_out_grid(sizes=(100,), allocators=("incremental",))
        assert len(grid) == 1
        assert grid.cells[0].params == {"n_nodes": 100,
                                        "allocator": "incremental"}

    def test_registry_builders_all_construct(self):
        for name, builder in GRID_BUILDERS.items():
            grid = builder()
            assert len(grid) > 0, name


class TestResolveGrid:
    def test_builtin_by_name_with_seed_override(self):
        grid = resolve_grid("table1", seeds=(5,))
        assert len(grid) == len(PAPER_TABLE1)
        assert all(c.seed == 5 for c in grid)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown grid"):
            resolve_grid("nope")

    def test_faults_on_non_table1_rejected(self):
        with pytest.raises(ValueError, match="--faults"):
            resolve_grid("churn", faults="kitchen-sink")

    def test_toml_path(self, tmp_path):
        path = tmp_path / "g.toml"
        path.write_text('name = "t"\n[[cell]]\nkind = "sleep"\nseed = 1\n')
        assert len(resolve_grid(str(path))) == 1


def _ok(key: str, group: str, kind: str, payload: dict) -> CellRecord:
    return CellRecord(key=key, spec={"kind": kind, "seed": 1, "params": {},
                                     "faults": None, "group": group},
                      status="ok", result=payload, meta={})


class TestAggregation:
    def test_groups_and_summaries(self):
        records = [
            _ok("a1", "rowA", "table1", {"total": 100.0, "map_mean": 40.0}),
            _ok("a2", "rowA", "table1", {"total": 200.0, "map_mean": 60.0}),
            _ok("b1", "rowB", "table1", {"total": 50.0, "map_mean": 25.0}),
        ]
        stats = aggregate_records(records)
        by_group = {s.group: s for s in stats}
        assert by_group["rowA"].n == 2
        assert by_group["rowA"].summary.mean == pytest.approx(150.0)
        assert by_group["rowA"].field_means["map_mean"] == pytest.approx(50.0)
        assert by_group["rowB"].summary.maximum == pytest.approx(50.0)

    def test_failed_cells_counted_not_averaged(self):
        records = [
            _ok("a1", "rowA", "table1", {"total": 100.0}),
            CellRecord(key="a2", spec={"kind": "table1", "seed": 2,
                                       "params": {}, "faults": None,
                                       "group": "rowA"},
                       status="failed", result=None, meta={"error": "x"}),
        ]
        stats = aggregate_records(records)
        assert stats[0].n == 1 and stats[0].failed == 1

    def test_scale_out_uses_makespan_metric(self):
        records = [_ok("s1", "scale100", "scale_out",
                       {"makespan_s": 1234.0, "events": 10})]
        stats = aggregate_records(records)
        assert stats[0].summary.mean == pytest.approx(1234.0)

    def test_render_table_contains_groups(self):
        records = [_ok("a1", "rowA", "table1", {"total": 100.0})]
        text = render_campaign_table(aggregate_records(records))
        assert "rowA" in text and "mean" in text

    def test_render_empty(self):
        assert "no completed cells" in render_campaign_table([])

    def test_aggregate_store_roundtrip(self, tmp_path):
        grid = CampaignGrid(
            name="g",
            cells=tuple(CampaignCell(kind="sleep", seed=s,
                                     params={"duration_s": 0.01},
                                     group="naps") for s in range(3)))
        out = tmp_path / "s.jsonl"
        CampaignRunner(grid, ResultStore(out), workers=0).run()
        stats = aggregate_store(str(out))
        assert stats[0].group == "naps" and stats[0].n == 3
