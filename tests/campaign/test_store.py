"""Tests for the resumable JSONL result store."""

import pytest

from repro.campaign import CellRecord, ResultStore


def _record(key: str, status: str = "ok", total: float = 1.0) -> CellRecord:
    return CellRecord(key=key, spec={"kind": "sleep", "seed": 0,
                                     "params": {}, "faults": None,
                                     "group": "g"},
                      status=status,
                      result={"total": total} if status == "ok" else None,
                      meta={"wall_s": 0.1, "attempts": 1})


class TestResultStore:
    def test_append_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(_record("aaa"))
        store.append(_record("bbb"))
        loaded = store.load()
        assert set(loaded) == {"aaa", "bbb"}
        assert loaded["aaa"].ok
        assert loaded["aaa"].result == {"total": 1.0}

    def test_missing_file_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "missing.jsonl").load() == {}

    def test_last_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(_record("aaa", status="failed"))
        store.append(_record("aaa", status="ok", total=42.0))
        loaded = store.load()
        assert loaded["aaa"].ok
        assert loaded["aaa"].result["total"] == 42.0

    def test_completed_keys_excludes_failures(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(_record("good"))
        store.append(_record("bad", status="failed"))
        assert store.completed_keys() == {"good"}

    def test_truncated_final_line_tolerated(self, tmp_path):
        # The crash-mid-write case: resume must not lose earlier records.
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(_record("aaa"))
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "bbb", "spec": {')  # interrupted write
        loaded = store.load()
        assert set(loaded) == {"aaa"}

    def test_corruption_elsewhere_raises(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.path.write_text("not json at all\n")
        store.append(_record("aaa"))
        with pytest.raises(ValueError, match="corrupt campaign store"):
            store.load()

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(_record("aaa"))
        store.clear()
        assert store.load() == {}
        store.clear()  # idempotent on a missing file

    def test_len(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        assert len(store) == 0
        store.append(_record("aaa"))
        store.append(_record("bbb"))
        assert len(store) == 2
