"""Integration tests for the distributed campaign control plane.

These spawn real worker processes against a real TCP coordinator, so
they are the slowest campaign tests; the grids stay tiny and the
heartbeat short to keep each under a few seconds.
"""

import json

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignCoordinator,
    CampaignGrid,
    CampaignWorker,
    ResultStore,
    diff_stores,
    merge_stores,
    run_campaign,
)


def _sleep_grid(n: int, duration_s: float = 0.05,
                name: str = "g") -> CampaignGrid:
    return CampaignGrid(name=name, cells=tuple(
        CampaignCell(kind="sleep", seed=i, params={"duration_s": duration_s})
        for i in range(n)))


class TestCoordinatorBasics:
    def test_spawned_workers_complete_every_cell(self, tmp_path):
        grid = _sleep_grid(6)
        store = ResultStore(tmp_path / "out.jsonl")
        report = CampaignCoordinator(
            grid, store, spawn=2, heartbeat_s=0.2).run()
        assert report.ok and report.ran == 6 and report.failed == 0
        loaded = store.load()
        assert len(loaded) == 6 and all(r.ok for r in loaded.values())
        # provenance rides in meta, not in the deterministic payload
        assert all("worker" in r.meta for r in loaded.values())

    def test_external_worker_against_unspawned_coordinator(self, tmp_path):
        import threading

        grid = _sleep_grid(3)
        coordinator = CampaignCoordinator(
            grid, ResultStore(tmp_path / "out.jsonl"),
            spawn=0, heartbeat_s=0.2)
        reports = []
        thread = threading.Thread(
            target=lambda: reports.append(coordinator.run()), daemon=True)
        thread.start()
        # wait for the server socket to come up (port stays 0 until bind)
        for _ in range(200):
            if coordinator.port:
                break
            import time
            time.sleep(0.01)
        completed = CampaignWorker("127.0.0.1", coordinator.port,
                                   worker_id="ext0").run()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert completed == 3 and reports[0].ok

    def test_resume_skips_completed_cells(self, tmp_path):
        grid = _sleep_grid(4)
        store = ResultStore(tmp_path / "out.jsonl")
        first = CampaignCoordinator(
            grid, store, spawn=2, heartbeat_s=0.2).run()
        assert first.ran == 4
        second = CampaignCoordinator(
            grid, store, spawn=2, heartbeat_s=0.2, resume=True).run()
        assert second.ran == 0 and second.skipped == 4 and second.ok

    def test_distributed_equals_sequential(self, tmp_path):
        grid = _sleep_grid(5)
        CampaignCoordinator(grid, ResultStore(tmp_path / "dist.jsonl"),
                            spawn=2, heartbeat_s=0.2).run()
        run_campaign(grid, str(tmp_path / "seq.jsonl"), workers=0)
        assert diff_stores(tmp_path / "dist.jsonl",
                           tmp_path / "seq.jsonl") == []

    def test_summary_shape(self, tmp_path):
        grid = _sleep_grid(2)
        coordinator = CampaignCoordinator(
            grid, ResultStore(tmp_path / "out.jsonl"),
            spawn=1, heartbeat_s=0.2)
        coordinator.run()
        summary = coordinator.summary()
        json.dumps(summary)  # must be JSON-able (the CI artifact)
        assert summary["completed"] == 2
        assert summary["leases"]["granted"] >= 2
        assert summary["quarantined"] == []

    def test_validation(self, tmp_path):
        grid = _sleep_grid(1)
        store = ResultStore(tmp_path / "out.jsonl")
        with pytest.raises(ValueError, match="spawn"):
            CampaignCoordinator(grid, store, spawn=-1)
        with pytest.raises(ValueError, match="heartbeat_s"):
            CampaignCoordinator(grid, store, heartbeat_s=0.0)


class TestFailureRecovery:
    def test_sigkilled_workers_mid_cell_every_cell_completes(self, tmp_path):
        """The issue's acceptance invariant: 3 workers, kills mid-cell,
        campaign still completes every cell and the merged per-key
        payloads equal a sequential run."""
        grid = _sleep_grid(9, duration_s=0.4, name="chaos")
        store = ResultStore(tmp_path / "dist.jsonl")
        coordinator = CampaignCoordinator(
            grid, store, spawn=3, heartbeat_s=0.2, retries=3,
            chaos_kills=2, chaos_interval_s=0.4,
            shard_dir=tmp_path / "shards")
        report = coordinator.run()
        assert report.failed == 0 and report.ran == 9
        summary = coordinator.summary()
        assert summary["chaos_kills"] == 2
        assert summary["workers_failed"] >= 2
        assert summary["leases"]["reclaimed"] >= 1
        assert report.reclaimed == summary["leases"]["reclaimed"]
        run_campaign(grid, str(tmp_path / "seq.jsonl"), workers=0)
        # coordinator's authoritative store matches sequential ...
        assert diff_stores(tmp_path / "dist.jsonl",
                           tmp_path / "seq.jsonl") == []
        # ... and so do the merged per-worker shards
        shards = sorted((tmp_path / "shards").glob("*.jsonl"))
        assert len(shards) >= 3
        merge_stores(tmp_path / "merged.jsonl", shards)
        assert diff_stores(tmp_path / "merged.jsonl",
                           tmp_path / "seq.jsonl") == []

    def test_quarantine_after_retry_budget(self, tmp_path):
        # duration_s must be numeric-coercible; a poisoned param makes
        # the cell fail deterministically on every attempt.
        grid = CampaignGrid(name="bad", cells=(
            CampaignCell(kind="sleep", seed=0,
                         params={"duration_s": "not-a-number"}),))
        store = ResultStore(tmp_path / "out.jsonl")
        report = CampaignCoordinator(
            grid, store, spawn=1, heartbeat_s=0.2, retries=1).run()
        assert not report.ok and report.failed == 1
        record = next(iter(store.load().values()))
        assert record.status == "failed"
        assert "error" in record.meta

    def test_lease_timeout_reclaims_hung_cell(self, tmp_path):
        # One slow cell with a tight lease: the lease expires, the cell
        # retries, and eventually exhausts its budget.
        grid = _sleep_grid(1, duration_s=30.0)
        store = ResultStore(tmp_path / "out.jsonl")
        report = CampaignCoordinator(
            grid, store, spawn=1, heartbeat_s=0.1, timeout_s=0.3,
            retries=1, wall_limit_s=15.0).run()
        assert not report.ok and report.failed == 1
        assert report.reclaimed >= 1


class TestWorkStealing:
    def test_straggler_cell_is_stolen_and_first_result_wins(self, tmp_path):
        # 1 long cell + several short ones on 2 workers: once the queue
        # drains, the idle worker must steal the straggler's cell.
        cells = [CampaignCell(kind="sleep", seed=0,
                              params={"duration_s": 1.2})]
        cells += [CampaignCell(kind="sleep", seed=i,
                               params={"duration_s": 0.05})
                  for i in range(1, 4)]
        grid = CampaignGrid(name="steal", cells=tuple(cells))
        store = ResultStore(tmp_path / "out.jsonl")
        coordinator = CampaignCoordinator(
            grid, store, spawn=2, heartbeat_s=0.1, steal_after_s=0.3)
        report = coordinator.run()
        assert report.ok and report.ran == 4
        assert coordinator.summary()["leases"]["stolen"] >= 1
        assert report.stolen >= 1
        # first result won; the duplicate was dropped, not double-stored
        assert len(store.load()) == 4
