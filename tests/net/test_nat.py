"""Unit tests for NAT modelling and the traversal ladder."""

import numpy as np
import pytest

from repro.net import (
    PUBLIC,
    ConnectivityPolicy,
    NatBox,
    NatType,
    TraversalConfig,
    TraversalMethod,
    sample_nat_population,
)


def policy(seed=0, **cfg):
    return ConnectivityPolicy(TraversalConfig(**cfg), rng=np.random.default_rng(seed))


SYM = NatBox(nat_type=NatType.SYMMETRIC)
CONE = NatBox(nat_type=NatType.FULL_CONE)
PORT = NatBox(nat_type=NatType.PORT_RESTRICTED)


class TestNatBox:
    def test_public_accepts_inbound(self):
        assert PUBLIC.accepts_inbound()

    def test_default_natbox_blocks_inbound(self):
        assert not NatBox(nat_type=NatType.FULL_CONE).accepts_inbound()

    def test_firewall_blocks_inbound(self):
        assert not NatBox(nat_type=NatType.FIREWALL).accepts_inbound()


class TestLadder:
    def test_direct_when_server_public(self):
        out = policy().establish(client_nat=SYM, server_nat=PUBLIC)
        assert out.ok and out.method is TraversalMethod.DIRECT
        assert not out.relayed

    def test_reversal_when_client_public_server_natted(self):
        out = policy().establish(client_nat=PUBLIC, server_nat=CONE)
        assert out.method is TraversalMethod.REVERSAL

    def test_hole_punch_between_cone_nats(self):
        # cone-cone punch success is 0.85 by default; with many seeds it
        # should essentially always pick HOLE_PUNCH at least once.
        methods = {policy(seed=s).establish(CONE, CONE).method for s in range(30)}
        assert TraversalMethod.HOLE_PUNCH in methods

    def test_symmetric_pair_falls_to_relay(self):
        out = policy(seed=1).establish(SYM, SYM)
        assert out.method is TraversalMethod.RELAY
        assert out.relayed

    def test_relay_disabled_can_fail(self):
        p = policy(seed=1, enable_relay=False, enable_hole_punch=False,
                   enable_reversal=False)
        out = p.establish(SYM, SYM)
        assert not out.ok and out.method is None

    def test_setup_delay_accumulates_down_ladder(self):
        p = policy(seed=1)
        direct = p.establish(SYM, PUBLIC)
        relay = p.establish(SYM, SYM)
        assert relay.setup_delay > direct.setup_delay

    def test_none_nat_treated_as_public(self):
        out = policy().establish(None, None)
        assert out.method is TraversalMethod.DIRECT

    def test_method_counts(self):
        p = policy()
        p.establish(SYM, PUBLIC)
        p.establish(SYM, PUBLIC)
        p.establish(SYM, SYM)
        counts = p.method_counts()
        assert counts["direct"] == 2
        assert counts["relay"] == 1

    def test_deterministic_under_seed(self):
        a = [policy(seed=7).establish(PORT, PORT).method for _ in range(1)]
        b = [policy(seed=7).establish(PORT, PORT).method for _ in range(1)]
        assert a == b


class TestPopulation:
    def test_default_population_size_and_mix(self):
        rng = np.random.default_rng(0)
        pop = sample_nat_population(rng, 1000)
        assert len(pop) == 1000
        public = sum(1 for b in pop if b.accepts_inbound())
        assert 130 < public < 270  # ~20% public

    def test_custom_mix(self):
        rng = np.random.default_rng(0)
        pop = sample_nat_population(rng, 50, mix={NatType.SYMMETRIC: 1.0})
        assert all(b.nat_type is NatType.SYMMETRIC for b in pop)

    def test_mix_must_sum_to_one(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_nat_population(rng, 10, mix={NatType.NONE: 0.4})

    def test_negative_probability_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_nat_population(
                rng, 10, mix={NatType.NONE: 1.5, NatType.SYMMETRIC: -0.5})

    def test_deterministic(self):
        a = sample_nat_population(np.random.default_rng(3), 20)
        b = sample_nat_population(np.random.default_rng(3), 20)
        assert [x.nat_type for x in a] == [x.nat_type for x in b]
