"""Equivalence and accounting tests for the pluggable rate allocators.

The incremental (component-partitioned) allocator must be observationally
equivalent to the reference full-recompute allocator: same rates on the
same active flow set, same completion behaviour, same link accounting.
These tests drive both implementations through randomized flow sets and
churn sequences (hypothesis) and pin the O(1) ``utilisation()`` sums
against a brute-force recount.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    ALLOCATORS,
    FlowNetwork,
    FullAllocator,
    IncrementalAllocator,
    Link,
    RateAllocator,
    maxmin_rates,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Strategy / constructor API
# ---------------------------------------------------------------------------

class TestAllocatorAPI:
    def test_registry_names(self):
        assert set(ALLOCATORS) == {"full", "incremental"}

    def test_default_is_incremental(self):
        net = FlowNetwork(Simulator())
        assert isinstance(net.allocator, IncrementalAllocator)
        assert net.allocator.name == "incremental"

    def test_string_selects_strategy(self):
        net = FlowNetwork(Simulator(), allocator="full")
        assert isinstance(net.allocator, FullAllocator)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown allocator"):
            FlowNetwork(Simulator(), allocator="magic")

    def test_instance_passthrough(self):
        alloc = FullAllocator()
        net = FlowNetwork(Simulator(), allocator=alloc)
        assert net.allocator is alloc

    def test_protocol_runtime_checkable(self):
        assert isinstance(FullAllocator(), RateAllocator)
        assert isinstance(IncrementalAllocator(), RateAllocator)

    def test_component_count(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        l1, l2 = Link("l1", 800), Link("l2", 800)
        net.start_flow("a", [l1], 1e6)
        net.start_flow("b", [l2], 1e6)
        assert net.allocator.component_count() == 2
        net.start_flow("c", [l1, l2], 1e6)  # bridges the two
        assert net.allocator.component_count() == 1


# ---------------------------------------------------------------------------
# Randomized equivalence: incremental vs full, no time passing
# ---------------------------------------------------------------------------

flow_spec = st.tuples(
    st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=3,
             unique=True),                                   # link indices
    st.floats(min_value=1.0, max_value=1e6),                 # size (bytes)
    st.booleans(),                                           # background
    st.one_of(st.none(), st.floats(min_value=1.0, max_value=1e4)),  # cap
)

churn_script = st.tuples(
    st.lists(st.floats(min_value=100.0, max_value=1e5),     # capacities B/s
             min_size=5, max_size=5),
    st.lists(flow_spec, min_size=1, max_size=16),
    st.lists(st.integers(min_value=0, max_value=15),        # abort order
             max_size=8, unique=True),
)


def _build(allocator, caps, specs):
    sim = Simulator()
    net = FlowNetwork(sim, allocator=allocator)
    links = [Link(f"l{i}", cap * 8.0) for i, cap in enumerate(caps)]
    flows = []
    for i, (linkidx, size, background, max_rate) in enumerate(specs):
        flows.append(net.start_flow(
            f"f{i}", [links[j] for j in linkidx], size,
            background=background, max_rate=max_rate))
    return sim, net, links, flows


def _assert_rates_match(flows_a, flows_b):
    for fa, fb in zip(flows_a, flows_b):
        assert fa.rate == pytest.approx(fb.rate, rel=1e-9, abs=1e-9), \
            (fa.name, fa.rate, fb.rate)


@settings(max_examples=60, deadline=None)
@given(churn_script)
def test_incremental_matches_full_under_churn(script):
    """Same rates after every start and abort, with no time passing."""
    caps, specs, aborts = script
    _, net_inc, _, flows_inc = _build("incremental", caps, specs)
    _, net_full, _, flows_full = _build("full", caps, specs)
    _assert_rates_match(flows_inc, flows_full)
    for idx in aborts:
        if idx >= len(specs):
            continue
        net_inc.abort_flow(flows_inc[idx])
        net_full.abort_flow(flows_full[idx])
        _assert_rates_match(flows_inc, flows_full)


@settings(max_examples=60, deadline=None)
@given(churn_script)
def test_incremental_matches_maxmin_reference(script):
    """Foreground rates agree with a direct ``maxmin_rates`` evaluation."""
    caps, specs, _ = script
    _, net, _, flows = _build("incremental", caps, specs)
    foreground = [f for f in flows if not f.background and not f.finished]
    reference = maxmin_rates(foreground)
    for f in foreground:
        assert f.rate == pytest.approx(reference[f], rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(churn_script)
def test_incremental_matches_full_to_completion(script):
    """Both allocators deliver every byte and agree on completion times."""
    caps, specs, aborts = script
    sim_i, net_i, _, flows_i = _build("incremental", caps, specs)
    sim_f, net_f, _, flows_f = _build("full", caps, specs)
    for idx in aborts:
        if idx < len(specs):
            net_i.abort_flow(flows_i[idx])
            net_f.abort_flow(flows_f[idx])
    sim_i.run()
    sim_f.run()
    assert net_i.flows_completed == net_f.flows_completed
    assert net_i.flows_aborted == net_f.flows_aborted
    assert net_i.bytes_delivered == pytest.approx(
        net_f.bytes_delivered, rel=1e-9)
    for fi, ff in zip(flows_i, flows_f):
        assert fi.finished == ff.finished
        if fi.finished_at is not None:
            # Epsilon-simultaneous completions may resolve in a different
            # batch across strategies; allow the epsilon/rate slack.
            assert fi.finished_at == pytest.approx(
                ff.finished_at, rel=1e-6, abs=1e-2)


# ---------------------------------------------------------------------------
# O(1) utilisation accounting stays exact across abort/complete
# ---------------------------------------------------------------------------

def _brute_utilisation(net, link):
    used = sum(f.rate for f in net.active if link in f.links)
    return used / link.capacity


@pytest.mark.parametrize("allocator", ["incremental", "full"])
def test_utilisation_tracks_churn(allocator):
    sim = Simulator()
    net = FlowNetwork(sim, allocator=allocator)
    links = [Link(f"l{i}", 8e6) for i in range(3)]  # 1 MB/s each

    def check():
        for link in links:
            assert net.utilisation(link) == pytest.approx(
                _brute_utilisation(net, link), rel=1e-9, abs=1e-12)

    flows = []
    for i in range(12):
        flows.append(net.start_flow(
            f"f{i}", [links[i % 3], links[(i + 1) % 3]],
            2e5 * (1 + i % 4), background=(i % 5 == 0)))
        check()
    net.abort_flow(flows[2])
    check()
    sim.run(until=0.3)           # partial progress
    check()
    net.abort_flow(flows[7])
    check()
    sim.run(until_event=flows[1].done)   # at least one completion
    check()
    sim.run()                    # drain everything
    for link in links:
        assert net.utilisation(link) == pytest.approx(0.0, abs=1e-12)


@pytest.mark.parametrize("allocator", ["incremental", "full"])
def test_utilisation_no_drift_after_many_cycles(allocator):
    """Per-link used-rate sums must not accumulate float residue."""
    sim = Simulator()
    net = FlowNetwork(sim, allocator=allocator)
    link = Link("l", 8e5)  # 100 kB/s
    for cycle in range(30):
        f1 = net.start_flow(f"a{cycle}", [link], 1e4 / 3)
        f2 = net.start_flow(f"b{cycle}", [link], 1e4 / 7)
        if cycle % 3 == 0:
            net.abort_flow(f1)
        sim.run()
        assert f2.finished
    assert net.utilisation(link) == pytest.approx(0.0, abs=1e-9)
    assert net.active_count == 0
    assert net.allocator.component_count() == 0


def test_recompute_refreshes_rates_after_capacity_change():
    """`recompute()` is the one public entry point for external changes."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = Link("l", 8e6)
    flow = net.start_flow("f", [link], 1e9)
    assert flow.rate == pytest.approx(1e6)
    link.capacity /= 2          # e.g. a fault injector degrading the link
    net.recompute()
    assert flow.rate == pytest.approx(5e5)
    assert net.utilisation(link) == pytest.approx(1.0)
