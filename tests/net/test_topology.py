"""Unit tests for hosts and the Network facade."""

import pytest

from repro.net import (
    ADSL_LINK,
    EMULAB_LINK,
    SERVER_LINK,
    HostOffline,
    LinkSpec,
    NatBox,
    NatType,
    Network,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim)


class TestLinkSpec:
    def test_defaults_valid(self):
        spec = LinkSpec()
        assert spec.down_bps > 0 and spec.up_bps > 0

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(down_bps=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(latency_s=-1)

    def test_profiles_are_asymmetric_where_expected(self):
        assert ADSL_LINK.up_bps < ADSL_LINK.down_bps
        assert EMULAB_LINK.up_bps == EMULAB_LINK.down_bps


class TestHosts:
    def test_add_host(self, net):
        h = net.add_host("a")
        assert net.host("a") is h
        assert h.online

    def test_duplicate_name_rejected(self, net):
        net.add_host("a")
        with pytest.raises(ValueError):
            net.add_host("a")

    def test_behind_nat(self, net):
        pub = net.add_host("pub")
        natted = net.add_host("natted", nat=NatBox(nat_type=NatType.SYMMETRIC))
        assert not pub.behind_nat
        assert natted.behind_nat

    def test_link_names_include_host(self, net):
        h = net.add_host("worker1")
        assert "worker1" in h.uplink.name
        assert "worker1" in h.downlink.name


class TestTransfers:
    def test_symmetric_lan_transfer_time(self, sim, net):
        a = net.add_host("a", EMULAB_LINK)
        b = net.add_host("b", EMULAB_LINK)
        flow = net.transfer(a, b, 12.5e6)  # one second at 100 Mbit
        sim.run(until_event=flow.done)
        assert sim.now == pytest.approx(1.0)

    def test_uplink_binds_for_adsl_sender(self, sim, net):
        a = net.add_host("a", ADSL_LINK)  # 1 Mbit up = 125 kB/s
        b = net.add_host("b", EMULAB_LINK)
        flow = net.transfer(a, b, 125e3)
        sim.run(until_event=flow.done)
        assert sim.now == pytest.approx(1.0)

    def test_server_fanout_shares_server_uplink(self, sim, net):
        server = net.add_host("server", EMULAB_LINK)  # 12.5 MB/s up
        clients = [net.add_host(f"c{i}", EMULAB_LINK) for i in range(5)]
        flows = [net.transfer(server, c, 12.5e6) for c in clients]
        # All five downloads share the server's uplink.
        for f in flows:
            assert f.rate == pytest.approx(2.5e6)
        sim.run()
        assert sim.now == pytest.approx(5.0)

    def test_p2p_avoids_server_bottleneck(self, sim, net):
        # The paper's core bandwidth argument: disjoint peer pairs transfer
        # in parallel at full access speed instead of queuing on the server.
        hosts = [net.add_host(f"h{i}", EMULAB_LINK) for i in range(10)]
        flows = [net.transfer(hosts[i], hosts[i + 5], 12.5e6) for i in range(5)]
        sim.run()
        assert sim.now == pytest.approx(1.0)
        assert all(f.finished for f in flows)

    def test_offline_source_rejected(self, sim, net):
        a = net.add_host("a")
        b = net.add_host("b")
        net.set_online(a, False)
        with pytest.raises(HostOffline):
            net.transfer(a, b, 100)

    def test_offline_destination_rejected(self, sim, net):
        a = net.add_host("a")
        b = net.add_host("b")
        net.set_online(b, False)
        with pytest.raises(HostOffline):
            net.transfer(a, b, 100)

    def test_going_offline_aborts_flows(self, sim, net):
        a = net.add_host("a")
        b = net.add_host("b")
        c = net.add_host("c")
        f_ab = net.transfer(a, b, 1e9)
        f_cb = net.transfer(c, b, 1e9)
        f_ca = net.transfer(c, a, 1e9)
        net.set_online(b, False)
        assert f_ab.aborted and f_cb.aborted
        assert not f_ca.aborted

    def test_coming_back_online(self, sim, net):
        a = net.add_host("a")
        b = net.add_host("b")
        net.set_online(a, False)
        net.set_online(a, True)
        flow = net.transfer(a, b, 100)
        sim.run(until_event=flow.done)
        assert flow.finished

    def test_latency_and_rtt(self, net):
        a = net.add_host("a", LinkSpec(latency_s=0.010))
        b = net.add_host("b", LinkSpec(latency_s=0.030))
        assert net.latency(a, b) == pytest.approx(0.040)
        assert net.rtt(a, b) == pytest.approx(0.080)

    def test_extra_links_constrain(self, sim, net):
        from repro.net import Link

        a = net.add_host("a", EMULAB_LINK)
        b = net.add_host("b", EMULAB_LINK)
        trunk = Link("trunk", 10e6)  # 1.25 MB/s shared trunk
        flow = net.transfer(a, b, 1.25e6, extra_links=[trunk])
        sim.run(until_event=flow.done)
        assert sim.now == pytest.approx(1.0)

    def test_transfer_and_wait_returns_done_event(self, sim, net):
        a = net.add_host("a")
        b = net.add_host("b")
        ev = net.transfer_and_wait(a, b, 125e3)
        sim.run(until_event=ev)
        assert ev.triggered

    def test_server_link_profile_fast(self, sim, net):
        s = net.add_host("s", SERVER_LINK)
        c = net.add_host("c", EMULAB_LINK)
        flow = net.transfer(s, c, 12.5e6)
        sim.run(until_event=flow.done)
        assert sim.now == pytest.approx(1.0)  # client downlink binds
