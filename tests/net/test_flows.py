"""Unit tests for the flow-level bandwidth model."""

import math

import pytest

from repro.net import FlowError, FlowNetwork, Link, maxmin_rates
from repro.sim import Simulator


def mbit(x):
    return x * 1e6  # bits per second


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture(params=["incremental", "full"])
def net(sim, request):
    """Every behavioural test in this file runs under both allocators."""
    return FlowNetwork(sim, allocator=request.param)


class TestLink:
    def test_capacity_converted_to_bytes(self):
        link = Link("l", mbit(100))
        assert link.capacity == pytest.approx(12.5e6)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link("l", 0)


class TestSingleFlow:
    def test_transfer_time_is_size_over_capacity(self, sim, net):
        link = Link("l", mbit(100))  # 12.5 MB/s
        flow = net.start_flow("f", [link], 12.5e6)
        sim.run(until_event=flow.done)
        assert sim.now == pytest.approx(1.0)
        assert flow.finished_at == pytest.approx(1.0)

    def test_zero_size_completes_immediately(self, sim, net):
        link = Link("l", mbit(100))
        flow = net.start_flow("f", [link], 0)
        assert flow.finished
        assert net.flows_completed == 1

    def test_negative_size_rejected(self, sim, net):
        with pytest.raises(ValueError):
            net.start_flow("f", [Link("l", 1e6)], -5)

    def test_flow_requires_links(self, sim, net):
        with pytest.raises(ValueError):
            net.start_flow("f", [], 100)

    def test_max_rate_cap_slows_flow(self, sim, net):
        link = Link("l", mbit(100))
        flow = net.start_flow("f", [link], 1e6, max_rate=1e5)  # 100 kB/s
        sim.run(until_event=flow.done)
        assert sim.now == pytest.approx(10.0)

    def test_min_of_links_binds(self, sim, net):
        fast = Link("fast", mbit(100))
        slow = Link("slow", mbit(10))  # 1.25 MB/s
        flow = net.start_flow("f", [fast, slow], 1.25e6)
        sim.run(until_event=flow.done)
        assert sim.now == pytest.approx(1.0)


class TestSharing:
    def test_two_flows_share_link_equally(self, sim, net):
        link = Link("l", mbit(100))  # 12.5 MB/s
        f1 = net.start_flow("f1", [link], 12.5e6)
        f2 = net.start_flow("f2", [link], 12.5e6)
        assert f1.rate == pytest.approx(6.25e6)
        assert f2.rate == pytest.approx(6.25e6)
        sim.run()
        assert f1.finished_at == pytest.approx(2.0)
        assert f2.finished_at == pytest.approx(2.0)

    def test_rate_rises_when_competitor_finishes(self, sim, net):
        link = Link("l", mbit(100))  # 12.5 MB/s
        short = net.start_flow("short", [link], 6.25e6)
        long = net.start_flow("long", [link], 12.5e6)
        sim.run(until_event=short.done)
        assert sim.now == pytest.approx(1.0)
        assert long.rate == pytest.approx(12.5e6)
        sim.run(until_event=long.done)
        # long did 6.25MB in first second, remaining 6.25MB at full rate
        assert sim.now == pytest.approx(1.5)

    def test_late_arrival_slows_existing_flow(self, sim, net):
        link = Link("l", mbit(80))  # 10 MB/s
        f1 = net.start_flow("f1", [link], 20e6)
        sim.run(until=1.0)
        f2 = net.start_flow("f2", [link], 5e6)
        assert f1.rate == pytest.approx(5e6)
        assert f2.rate == pytest.approx(5e6)
        sim.run(until_event=f2.done)
        assert sim.now == pytest.approx(2.0)
        sim.run(until_event=f1.done)
        # f1: 10MB in [0,1), 5MB in [1,2), last 5MB at 10MB/s => 2.5s total
        assert sim.now == pytest.approx(2.5)

    def test_maxmin_with_unequal_bottlenecks(self):
        # Classic example: flows A (link1), B (link1+link2), C (link2).
        # link1 = 10, link2 = 4 (bytes/s). B is bottlenecked on link2:
        # B=C=2; A gets the rest of link1 = 8.
        sim = Simulator()
        l1 = Link("l1", 80)  # 10 B/s
        l2 = Link("l2", 32)  # 4 B/s
        net = FlowNetwork(sim)
        a = net.start_flow("a", [l1], 1000)
        b = net.start_flow("b", [l1, l2], 1000)
        c = net.start_flow("c", [l2], 1000)
        assert a.rate == pytest.approx(8.0)
        assert b.rate == pytest.approx(2.0)
        assert c.rate == pytest.approx(2.0)

    def test_sum_of_rates_never_exceeds_capacity(self, sim, net):
        link = Link("l", mbit(100))
        flows = [net.start_flow(f"f{i}", [link], 1e6 * (i + 1)) for i in range(7)]
        total = sum(f.rate for f in flows)
        assert total <= link.capacity * (1 + 1e-9)
        assert total == pytest.approx(link.capacity)

    def test_utilisation(self, sim, net):
        link = Link("l", mbit(100))
        net.start_flow("f", [link], 1e9)
        assert net.utilisation(link) == pytest.approx(1.0)


class TestMaxminFunction:
    def test_empty(self):
        assert maxmin_rates([]) == {}

    def test_caps_leave_capacity_unused(self, sim, net):
        link = Link("l", 100 * 8)  # 100 B/s
        f1 = net.start_flow("f1", [link], 1e4, max_rate=10.0)
        f2 = net.start_flow("f2", [link], 1e4)
        assert f1.rate == pytest.approx(10.0)
        assert f2.rate == pytest.approx(90.0)

    def test_all_capped_below_capacity(self, sim, net):
        link = Link("l", 100 * 8)
        f1 = net.start_flow("f1", [link], 1e4, max_rate=20.0)
        f2 = net.start_flow("f2", [link], 1e4, max_rate=30.0)
        assert f1.rate == pytest.approx(20.0)
        assert f2.rate == pytest.approx(30.0)


class TestAbort:
    def test_abort_fails_done_event(self, sim, net):
        link = Link("l", mbit(100))
        flow = net.start_flow("f", [link], 1e9)
        sim.run(until=1.0)
        net.abort_flow(flow, reason="peer died")
        assert flow.aborted
        with pytest.raises(FlowError, match="peer died"):
            flow.done.value

    def test_abort_releases_bandwidth(self, sim, net):
        link = Link("l", mbit(100))
        f1 = net.start_flow("f1", [link], 1e9)
        f2 = net.start_flow("f2", [link], 1e9)
        assert f2.rate == pytest.approx(6.25e6)
        net.abort_flow(f1)
        assert f2.rate == pytest.approx(12.5e6)

    def test_abort_finished_flow_is_noop(self, sim, net):
        link = Link("l", mbit(100))
        flow = net.start_flow("f", [link], 100)
        sim.run(until_event=flow.done)
        net.abort_flow(flow)
        assert not flow.aborted

    def test_counters(self, sim, net):
        link = Link("l", mbit(100))
        f1 = net.start_flow("f1", [link], 100)
        f2 = net.start_flow("f2", [link], 1e9)
        sim.run(until_event=f1.done)
        net.abort_flow(f2)
        assert net.flows_completed == 1
        assert net.flows_aborted == 1
        assert net.bytes_delivered == pytest.approx(100)


class TestBackground:
    def test_background_gets_leftover_only(self, sim, net):
        link = Link("l", 100 * 8)  # 100 B/s
        fg = net.start_flow("fg", [link], 1e6)
        bg = net.start_flow("bg", [link], 1e6, background=True)
        assert fg.rate == pytest.approx(100.0)
        assert bg.rate == pytest.approx(0.0, abs=1e-6)

    def test_background_uses_capacity_when_foreground_capped(self, sim, net):
        link = Link("l", 100 * 8)
        fg = net.start_flow("fg", [link], 1e6, max_rate=30.0)
        bg = net.start_flow("bg", [link], 1e6, background=True)
        assert fg.rate == pytest.approx(30.0)
        assert bg.rate == pytest.approx(70.0)

    def test_background_completes_alone(self, sim, net):
        link = Link("l", 100 * 8)
        bg = net.start_flow("bg", [link], 1000, background=True)
        sim.run(until_event=bg.done)
        assert sim.now == pytest.approx(10.0)

    def test_background_resumes_after_foreground_done(self, sim, net):
        link = Link("l", 100 * 8)
        bg = net.start_flow("bg", [link], 1000, background=True)
        fg = net.start_flow("fg", [link], 500)
        sim.run(until_event=fg.done)
        assert sim.now == pytest.approx(5.0)
        sim.run(until_event=bg.done)
        # bg was starved for 5s, then 10s at full rate
        assert sim.now == pytest.approx(15.0)


class TestProgressAccounting:
    def test_eta(self, sim, net):
        link = Link("l", 100 * 8)
        flow = net.start_flow("f", [link], 1000)
        assert flow.eta() == pytest.approx(10.0)

    def test_eta_infinite_when_starved(self, sim, net):
        link = Link("l", 100 * 8)
        net.start_flow("fg", [link], 1e9)
        bg = net.start_flow("bg", [link], 1000, background=True)
        assert bg.eta() == math.inf

    def test_many_churning_flows_all_complete(self, sim, net):
        link = Link("l", mbit(8))  # 1 MB/s
        flows = []
        for i in range(20):
            sim.schedule(i * 0.3, lambda i=i: flows.append(
                net.start_flow(f"f{i}", [link], 1e5 * (1 + i % 5))))
        sim.run()
        assert len(flows) == 20
        assert all(f.finished for f in flows)
        total = sum(f.size for f in flows)
        assert net.bytes_delivered == pytest.approx(total)
        # Last byte cannot arrive before total/capacity seconds.
        assert sim.now >= total / link.capacity - 1e-6
