"""Unit tests for semaphores, endpoints, and peer downloads."""

import numpy as np
import pytest

from repro.net import (
    EMULAB_LINK,
    PUBLIC,
    ConnectivityPolicy,
    NatBox,
    NatType,
    Network,
    SimSemaphore,
    TransferEndpoint,
    TransferFailed,
    TraversalConfig,
    peer_download,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim)


def make_policy(seed=0):
    return ConnectivityPolicy(TraversalConfig(direct_setup_s=0.0),
                              rng=np.random.default_rng(seed))


class TestSimSemaphore:
    def test_acquire_under_capacity_immediate(self, sim):
        sem = SimSemaphore(sim, 2)
        assert sem.acquire().triggered
        assert sem.acquire().triggered
        assert sem.in_use == 2

    def test_acquire_over_capacity_queues(self, sim):
        sem = SimSemaphore(sim, 1)
        sem.acquire()
        third = sem.acquire()
        assert not third.triggered
        assert sem.waiting == 1

    def test_release_wakes_fifo(self, sim):
        sem = SimSemaphore(sim, 1)
        sem.acquire()
        w1 = sem.acquire()
        w2 = sem.acquire()
        sem.release()
        assert w1.triggered and not w2.triggered
        sem.release()
        assert w2.triggered

    def test_release_below_zero_rejected(self, sim):
        sem = SimSemaphore(sim, 1)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            SimSemaphore(sim, 0)

    def test_slots_conserved_under_churn(self, sim):
        sem = SimSemaphore(sim, 3)
        grants = [sem.acquire() for _ in range(10)]
        for _ in range(10):
            sem.release()
        assert sem.in_use == 0
        assert all(g.triggered for g in grants)


class TestPeerDownload:
    def make_pair(self, sim, net, src_nat=None, dst_nat=None, **ep_kwargs):
        a = net.add_host("src", EMULAB_LINK, nat=src_nat or PUBLIC)
        b = net.add_host("dst", EMULAB_LINK, nat=dst_nat or PUBLIC)
        return (TransferEndpoint(sim, a, **ep_kwargs),
                TransferEndpoint(sim, b, **ep_kwargs))

    def test_successful_download(self, sim, net):
        src, dst = self.make_pair(sim, net)
        proc = sim.process(peer_download(
            sim, net, make_policy(), src, dst, 12.5e6))
        sim.run()
        rec = proc.value
        assert rec.ok
        assert rec.duration == pytest.approx(1.0, rel=0.01)  # + rtt

    def test_traversal_failure_raises(self, sim, net):
        sym = NatBox(nat_type=NatType.SYMMETRIC)
        src, dst = self.make_pair(sim, net, src_nat=sym, dst_nat=sym)
        policy = ConnectivityPolicy(
            TraversalConfig(enable_relay=False, enable_hole_punch=False,
                            enable_reversal=False),
            rng=np.random.default_rng(0))

        def body():
            try:
                yield sim.process(peer_download(sim, net, policy, src, dst, 100))
            except TransferFailed as exc:
                return f"failed: {exc.reason}"

        proc = sim.process(body())
        sim.run()
        assert proc.value.startswith("failed: no connectivity")

    def test_relay_needs_relay_host(self, sim, net):
        sym = NatBox(nat_type=NatType.SYMMETRIC)
        src, dst = self.make_pair(sim, net, src_nat=sym, dst_nat=sym)

        def body():
            try:
                yield sim.process(peer_download(
                    sim, net, make_policy(seed=1), src, dst, 100))
            except TransferFailed as exc:
                return exc.reason

        proc = sim.process(body())
        sim.run()
        assert "relay required" in proc.value

    def test_relayed_download_uses_relay_links(self, sim, net):
        sym = NatBox(nat_type=NatType.SYMMETRIC)
        src, dst = self.make_pair(sim, net, src_nat=sym, dst_nat=sym)
        relay = net.add_host("relay", EMULAB_LINK)
        proc = sim.process(peer_download(
            sim, net, make_policy(seed=1), src, dst, 12.5e6, relay=relay))
        sim.run()
        rec = proc.value
        assert rec.ok and rec.relayed

    def test_connection_limit_serialises_uploads(self, sim, net):
        src_host = net.add_host("server_peer", EMULAB_LINK)
        src = TransferEndpoint(sim, src_host, max_upload_conns=1)
        dsts = []
        for i in range(3):
            h = net.add_host(f"d{i}", EMULAB_LINK)
            dsts.append(TransferEndpoint(sim, h))
        procs = [
            sim.process(peer_download(sim, net, make_policy(), src, d, 12.5e6))
            for d in dsts
        ]
        sim.run()
        ends = sorted(p.value.finished_at for p in procs)
        # One at a time over a 12.5MB/s uplink: finish ~1s apart.
        assert ends[1] - ends[0] == pytest.approx(1.0, rel=0.05)
        assert ends[2] - ends[1] == pytest.approx(1.0, rel=0.05)

    def test_unlimited_connections_share_bandwidth(self, sim, net):
        src_host = net.add_host("server_peer", EMULAB_LINK)
        src = TransferEndpoint(sim, src_host, max_upload_conns=8)
        dsts = []
        for i in range(3):
            h = net.add_host(f"d{i}", EMULAB_LINK)
            dsts.append(TransferEndpoint(sim, h))
        procs = [
            sim.process(peer_download(sim, net, make_policy(), src, d, 12.5e6))
            for d in dsts
        ]
        sim.run()
        ends = [p.value.finished_at for p in procs]
        assert max(ends) == pytest.approx(3.0, rel=0.05)
        assert max(ends) - min(ends) < 0.2

    def test_injected_failure(self, sim, net):
        src, dst = self.make_pair(sim, net)

        def body():
            try:
                yield sim.process(peer_download(
                    sim, net, make_policy(), src, dst, 12.5e6,
                    failure_rate=1.0, rng=np.random.default_rng(0)))
            except TransferFailed as exc:
                return f"failed: {exc.reason}"

        proc = sim.process(body())
        sim.run()
        assert "injected" in proc.value

    def test_offline_source_fails_cleanly(self, sim, net):
        src, dst = self.make_pair(sim, net)
        net.set_online(src.host, False)

        def body():
            try:
                yield sim.process(peer_download(
                    sim, net, make_policy(), src, dst, 100))
            except TransferFailed as exc:
                return f"failed: {exc.reason}"

        proc = sim.process(body())
        sim.run()
        assert "offline" in proc.value

    def test_slots_released_after_failure(self, sim, net):
        src, dst = self.make_pair(sim, net)

        def body():
            try:
                yield sim.process(peer_download(
                    sim, net, make_policy(), src, dst, 12.5e6,
                    failure_rate=1.0, rng=np.random.default_rng(0)))
            except TransferFailed:
                pass

        proc = sim.process(body())
        sim.run()
        assert proc.triggered
        assert src.upload_slots.in_use == 0
        assert dst.download_slots.in_use == 0


class TestSemaphoreSettle:
    """Unwinding acquires from a finally block, whatever state they reached."""

    def test_settle_releases_granted_slot(self, sim):
        sem = SimSemaphore(sim, 1)
        grant = sem.acquire()
        assert grant.triggered
        sem.settle(grant)
        assert sem.in_use == 0
        assert sem.balance == 0

    def test_settle_cancels_queued_waiter(self, sim):
        sem = SimSemaphore(sim, 1)
        sem.acquire()
        waiter = sem.acquire()
        assert not waiter.triggered
        sem.settle(waiter)
        assert sem.waiting == 0
        assert sem.cancelled_total == 1
        # The held slot is untouched and still releasable.
        sem.release()
        assert sem.in_use == 0

    def test_cancel_refuses_granted_event(self, sim):
        sem = SimSemaphore(sim, 1)
        grant = sem.acquire()
        assert sem.cancel(grant) is False

    def test_cancelled_waiter_never_steals_a_slot(self, sim):
        sem = SimSemaphore(sim, 1)
        sem.acquire()
        ghost = sem.acquire()
        sem.cancel(ghost)
        live = sem.acquire()
        sem.release()  # hands the slot to `live`, not the cancelled ghost
        assert live.triggered and not ghost.triggered
        assert sem.in_use == 1

    def test_balance_matches_in_use(self, sim):
        sem = SimSemaphore(sim, 2)
        grants = [sem.acquire() for _ in range(4)]
        sem.settle(grants[3])  # still queued: cancelled
        sem.release()
        assert sem.balance == sem.in_use


class TestPeerDownloadLeaks:
    """Interrupts must return connection slots in every intermediate state."""

    def make_pair(self, sim, net, **ep_kwargs):
        a = net.add_host("src", EMULAB_LINK, nat=PUBLIC)
        b = net.add_host("dst", EMULAB_LINK, nat=PUBLIC)
        return (TransferEndpoint(sim, a, **ep_kwargs),
                TransferEndpoint(sim, b, **ep_kwargs))

    def test_interrupt_while_waiting_for_slot_leaks_nothing(self, sim, net):
        """Regression: a process killed while QUEUED on the grant used to
        leave a phantom waiter that swallowed the next released slot."""
        src, dst = self.make_pair(sim, net, max_upload_conns=1)
        first = sim.process(peer_download(
            sim, net, make_policy(), src, dst, 12.5e6))
        second = sim.process(peer_download(
            sim, net, make_policy(), src, dst, 12.5e6))
        sim.schedule(0.5, second.interrupt, "churn kill while waiting")
        sim.run()
        assert first.value.ok
        assert src.upload_slots.waiting == 0
        assert src.upload_slots.in_use == 0
        assert src.upload_slots.cancelled_total == 1
        # The slot freed by `first` is immediately grantable again.
        assert src.upload_slots.acquire().triggered

    def test_interrupt_mid_flow_aborts_transfer(self, sim, net):
        src, dst = self.make_pair(sim, net)
        proc = sim.process(peer_download(
            sim, net, make_policy(), src, dst, 12.5e6))
        sim.schedule(0.5, proc.interrupt, "churn kill mid-flow")
        sim.run()
        assert not proc.alive
        assert list(net.flownet.active) == []
        assert src.upload_slots.in_use == 0
        assert dst.download_slots.in_use == 0

    def test_corrupt_serving_endpoint_marks_record(self, sim, net):
        src, dst = self.make_pair(sim, net)
        src.corrupt_serves = True
        proc = sim.process(peer_download(
            sim, net, make_policy(), src, dst, 12.5e6))
        sim.run()
        assert proc.value.ok and proc.value.corrupted
