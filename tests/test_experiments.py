"""Integration tests for the experiment harness (small geometries)."""

import pytest

from repro.experiments import (
    PAPER_TABLE1,
    Scenario,
    Table1Row,
    nat_scenario,
    run_scenario,
    scenario_for_row,
)
from repro.experiments.table1 import PaperCell, render, run_table1


class TestScenario:
    def small(self, **overrides):
        defaults = dict(name="t", n_nodes=6, n_maps=6, n_reducers=2,
                        input_size=60e6, seed=1)
        defaults.update(overrides)
        return Scenario(**defaults)

    def test_run_produces_metrics(self):
        result = run_scenario(self.small())
        m = result.metrics
        assert m.total > 0
        assert m.map_stats.n_tasks == 12  # 6 WUs x replication 2
        assert m.reduce_stats.n_tasks == 4
        assert m.map_stats.mean_discard_slowest <= m.map_stats.mean + 1e-9

    def test_mr_scenario_runs(self):
        result = run_scenario(self.small(mr_clients=True))
        assert result.job.finished

    def test_deterministic_per_seed(self):
        a = run_scenario(self.small(seed=5)).metrics.total
        b = run_scenario(self.small(seed=5)).metrics.total
        assert a == b

    def test_fast_nodes_shorten_makespan(self):
        slow = run_scenario(self.small(seed=3)).metrics
        fast = run_scenario(self.small(seed=3, name="t2",
                                       fast_node_fraction=1.0)).metrics
        assert fast.map_stats.mean < slow.map_stats.mean

    def test_nat_scenario_has_per_node_nats(self):
        s = nat_scenario(seed=1)
        assert s.nats is not None and len(s.nats) == s.n_nodes

    def test_nats_length_validated(self):
        with pytest.raises(ValueError):
            self.small(nats=[None])


class TestTable1Definitions:
    def test_paper_rows_complete(self):
        assert len(PAPER_TABLE1) == 9
        assert sum(1 for r in PAPER_TABLE1 if r.mr) == 1

    def test_paper_values_spotcheck(self):
        r = PAPER_TABLE1[2]  # 15 nodes, 15 maps
        assert (r.nodes, r.n_maps, r.n_reducers) == (15, 15, 3)
        assert r.paper_map.mean == 747 and r.paper_map.discarded == 396

    def test_scenario_for_row(self):
        s = scenario_for_row(PAPER_TABLE1[0], seed=9)
        assert (s.n_nodes, s.n_maps, s.n_reducers) == (10, 10, 2)
        assert s.seed == 9 and not s.mr_clients

    def test_cell_text(self):
        assert PaperCell(700, 400).text() == "700 [400]"
        assert PaperCell(383).text() == "383"

    def test_run_and_render_one_small_row(self):
        row = Table1Row(6, 6, 2, False, PaperCell(100), PaperCell(100),
                        PaperCell(300))
        records = run_table1([row], seed=1)
        text = render(records)
        assert "Table I" in text
        assert "BOINC" in text
        assert len(records) == 1
        assert records[0].measured_total[0] > 0


class TestFig4:
    def test_fig4_straggler_reproduces(self):
        from repro.experiments import run_fig4

        result = run_fig4(base_seed=1, min_straggler_lag=120.0,
                          max_seed_scans=10)
        assert result.straggler_lag >= 120.0
        # Straggler lag dominates the field (the Fig. 4 visual).
        other = [t.report_lag for t in result.timelines
                 if t.report_lag is not None
                 and t.host != result.straggler_host]
        assert result.straggler_lag > 2 * max(other)
        chart = result.render()
        assert "Fig. 4" in chart and "#" in chart

    def test_fig4_reduce_starts_after_straggler_report(self):
        from repro.experiments import run_fig4

        result = run_fig4(base_seed=1)
        last_map_report = max(t.reported_at for t in result.timelines)
        assert result.reduce_start >= last_map_report


class TestAblations:
    def test_report_immediately_removes_lag(self):
        from repro.experiments import ablate_report_immediately

        out = ablate_report_immediately(seed=1)
        assert out.mitigated_detail["mean_report_lag"] < \
            out.baseline_detail["mean_report_lag"] / 5

    def test_intermediate_downloads_shrink_transition(self):
        from repro.experiments import ablate_intermediate_downloads

        out = ablate_intermediate_downloads(seed=1)
        assert out.mitigated_detail["transition_gap"] < \
            out.baseline_detail["transition_gap"]
        assert out.mitigated_total < out.baseline_total

    def test_concurrent_jobs_remove_backoff_lag(self):
        from repro.experiments import ablate_concurrent_jobs

        out = ablate_concurrent_jobs(seed=1, n_jobs=2)
        assert out.mitigated_detail["mean_report_lag"] < \
            out.baseline_detail["mean_report_lag"] / 5


class TestChurnExperiment:
    def test_churn_outcome_fields(self):
        from repro.experiments import run_churn

        out = run_churn(seed=3, mean_on_s=1800.0, mean_off_s=600.0,
                        departure_prob=0.05)
        assert out.result.job.finished
        assert out.transitions > 0
        assert out.total > 0
