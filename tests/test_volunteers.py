"""Unit and integration tests for availability/churn modelling."""

import numpy as np
import pytest

from repro.core import BoincMRConfig, JobPhase, MapReduceJobSpec, VolunteerCloud
from repro.boinc.server import ServerConfig
from repro.sim import Simulator, Tracer
from repro.volunteers import AvailabilityModel, ChurnController


class TestAvailabilityModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityModel(mean_on_s=0)
        with pytest.raises(ValueError):
            AvailabilityModel(mean_off_s=-1)
        with pytest.raises(ValueError):
            AvailabilityModel(departure_prob=1.5)

    def test_draws_positive_and_seeded(self):
        model = AvailabilityModel(mean_on_s=100.0, mean_off_s=10.0)
        rng = np.random.default_rng(0)
        draws = [model.draw_on(rng) for _ in range(100)]
        assert all(d >= 0 for d in draws)
        assert np.mean(draws) == pytest.approx(100.0, rel=0.5)
        rng2 = np.random.default_rng(0)
        assert model.draw_on(rng2) == pytest.approx(draws[0])


def churn_cloud(seed=1, **model_kwargs):
    cloud = VolunteerCloud(
        seed=seed,
        mr_config=BoincMRConfig(upload_map_outputs=True),
        server_config=ServerConfig(delay_bound_s=900.0))
    cloud.add_volunteers(12, mr=True)
    model = AvailabilityModel(**model_kwargs)
    controller = ChurnController(cloud.sim, cloud.rngs.stream("churn"),
                                 model, tracer=cloud.tracer)
    return cloud, controller


class TestChurnController:
    def test_transitions_recorded(self):
        cloud, controller = churn_cloud(mean_on_s=300.0, mean_off_s=100.0)
        cloud.start()
        controller.manage_all(cloud.clients)
        cloud.sim.run(until=3600.0)
        offline = cloud.tracer.select("churn.offline")
        online = cloud.tracer.select("churn.online")
        assert len(offline) > 5
        assert len(online) > 0
        assert controller.transitions == len(offline) + len(online)

    def test_offline_host_drops_flows(self):
        cloud, controller = churn_cloud(mean_on_s=120.0, mean_off_s=60.0)
        cloud.start()
        controller.manage_all(cloud.clients)
        job = cloud.submit(MapReduceJobSpec(
            "churny", n_maps=6, n_reducers=2, input_size=120e6))
        cloud.sim.run(until=600.0)
        # At least one host must have gone offline while transferring or
        # computing; its tasks show up as failed or its results time out.
        assert len(cloud.tracer.select("churn.offline")) > 0

    def test_departure_is_permanent(self):
        cloud, controller = churn_cloud(mean_on_s=60.0, mean_off_s=30.0,
                                        departure_prob=1.0)
        cloud.start()
        controller.manage_all(cloud.clients)
        cloud.sim.run(until=2000.0)
        # Every host departs on its first OFF transition.
        assert len(controller.departed) == len(cloud.clients)
        onlines = cloud.tracer.select("churn.online")
        assert onlines == []

    def test_job_completes_under_churn(self):
        cloud, controller = churn_cloud(seed=4, mean_on_s=1200.0,
                                        mean_off_s=300.0)
        cloud.start()
        controller.manage_all(cloud.clients)
        job = cloud.run_job(MapReduceJobSpec(
            "survivor", n_maps=6, n_reducers=2, input_size=60e6),
            timeout=24 * 3600.0)
        assert job.phase is JobPhase.DONE

    def test_work_lost_to_churn_is_replaced(self):
        cloud, controller = churn_cloud(seed=6, mean_on_s=400.0,
                                        mean_off_s=300.0)
        cloud.start()
        controller.manage_all(cloud.clients)
        job = cloud.run_job(MapReduceJobSpec(
            "replaced", n_maps=8, n_reducers=2, input_size=160e6),
            timeout=24 * 3600.0)
        assert job.phase is JobPhase.DONE
        # Deadline timeouts / failures forced the transitioner to create
        # replacement results beyond the initial replication.
        n_results = len(cloud.server.db.results)
        initial = (8 + 2) * 2
        assert n_results > initial

    def test_client_resumes_pull_loop_after_outage(self):
        cloud, controller = churn_cloud(seed=2, mean_on_s=200.0,
                                        mean_off_s=100.0)
        cloud.start()
        controller.manage(cloud.clients[0])
        cloud.sim.run(until=2000.0)
        back = cloud.tracer.select("churn.online", host=cloud.clients[0].name)
        if back:  # it came back at least once: it must have RPC'd afterwards
            after = [r for r in cloud.tracer.select(
                "sched.rpc", host=cloud.clients[0].name)
                if r.time > back[0].time]
            assert after


class TestPermanentDeparture:
    """The departure path under load: lost results must be recovered."""

    def test_departed_work_recovered_by_deadline_timeout(self):
        cloud, controller = churn_cloud(seed=3, mean_on_s=250.0,
                                        mean_off_s=100.0, departure_prob=1.0)
        cloud.start()
        # Churn only a third of the fleet: the survivors finish the job.
        for client in cloud.clients[:4]:
            controller.manage(client)
        job = cloud.run_job(MapReduceJobSpec(
            "departures", n_maps=8, n_reducers=2, input_size=160e6),
            timeout=24 * 3600.0)
        assert job.phase is JobPhase.DONE
        assert controller.departed, "nobody departed — scenario too gentle"
        # Departed hosts never rejoin: no online transition afterwards.
        for name in controller.departed:
            assert cloud.tracer.select("churn.online", host=name) == []
        # Their in-flight results were recovered by deadline timeout, not
        # silently lost — and the end state passes the full audit.
        timeouts = cloud.tracer.select("transitioner.timeout")
        assert timeouts, "no deadline timeout fired for departed hosts' work"
        report = cloud.audit(job)
        assert report.ok, report.render()

    def test_departed_results_not_reassigned_to_departed_hosts(self):
        cloud, controller = churn_cloud(seed=3, mean_on_s=250.0,
                                        mean_off_s=100.0, departure_prob=1.0)
        cloud.start()
        for client in cloud.clients[:4]:
            controller.manage(client)
        cloud.run_job(MapReduceJobSpec(
            "departures2", n_maps=8, n_reducers=2, input_size=160e6),
            timeout=24 * 3600.0)
        departed_at = {}
        for rec in cloud.tracer.select("churn.offline"):
            departed_at.setdefault(rec.get("host"), rec.time)
        for rec in cloud.tracer.select("sched.assign"):
            host = rec.get("host")
            if host in controller.departed:
                assert rec.time <= departed_at[host]
