"""Additional client/server protocol tests: congestion, pacing, speed."""

import numpy as np
import pytest

from repro.boinc import (
    ClientConfig,
    FileRef,
    ProjectServer,
    SchedulerRequest,
    ServerConfig,
    Workunit,
    make_client,
)
from repro.net import Network, SERVER_LINK
from repro.sim import Simulator


def build(n_clients, client_config=None, server_config=None):
    sim = Simulator()
    net = Network(sim)
    server_host = net.add_host("server", SERVER_LINK)
    server = ProjectServer(sim, net, server_host,
                           config=server_config or ServerConfig())
    cfg = client_config or ClientConfig()
    clients = [make_client(sim, net, server, f"c{i}", config=cfg,
                           rng=np.random.default_rng(i))
               for i in range(n_clients)]
    return sim, net, server, clients


def submit(server, n=1, flops=30.0, replication=1, quorum=1):
    for i in range(n):
        server.submit_workunit(Workunit(
            id=server.db.new_wu_id(), app_name="app",
            input_files=(FileRef(f"in{i}", 1e5),), flops=flops,
            target_nresults=replication, min_quorum=quorum))


class TestRpcCongestion:
    def test_rpc_capacity_queues_excess_requests(self):
        sim, _net, server, _clients = build(
            0, server_config=ServerConfig(rpc_capacity=2, rpc_process_s=10.0))
        hosts = [server.register_host(f"h{i}", 1.0) for i in range(6)]
        procs = [sim.process(server.scheduler_rpc(SchedulerRequest(
            host_id=h.id, work_req_s=0.0))) for h in hosts]
        sim.run()
        # 6 RPCs, 2 at a time, 10s each -> three waves; last ends at t=30.
        assert all(p.ok for p in procs)
        assert sim.now == pytest.approx(30.0)

    def test_all_rpcs_eventually_served(self):
        sim, _net, server, _clients = build(
            0, server_config=ServerConfig(rpc_capacity=1, rpc_process_s=1.0))
        hosts = [server.register_host(f"h{i}", 1.0) for i in range(5)]
        procs = [sim.process(server.scheduler_rpc(SchedulerRequest(
            host_id=h.id, work_req_s=0.0))) for h in hosts]
        sim.run()
        assert all(p.ok for p in procs)
        assert sim.now == pytest.approx(5.0)


class TestPacing:
    def test_request_delay_limits_rpc_rate(self):
        cfg = ClientConfig(initial_stagger_s=0.0, backoff_min_s=1e9,
                           backoff_max_s=1e9)
        sim, _net, server, clients = build(
            1, client_config=cfg,
            server_config=ServerConfig(request_delay_s=30.0,
                                       rpc_process_s=0.1))
        submit(server, n=50, flops=5.0)
        server.start_daemons()
        clients[0].start()
        sim.run(until=300.0)
        rpcs = server.tracer.times("sched.rpc", host="c0")
        gaps = [b - a for a, b in zip(rpcs, rpcs[1:])]
        assert gaps and min(gaps) >= 30.0 - 1e-6

    def test_initial_stagger_bounds(self):
        cfg = ClientConfig(initial_stagger_s=20.0)
        sim, _net, server, clients = build(8, client_config=cfg)
        server.start_daemons()
        for c in clients:
            c.start()
        sim.run(until=60.0)
        firsts = [server.tracer.first("sched.rpc", host=c.name).time
                  for c in clients]
        assert all(t <= 20.0 + 2.0 for t in firsts)
        assert max(firsts) - min(firsts) > 1.0  # actually staggered


class TestSpeedFactor:
    def test_speed_factor_slows_compute_only(self):
        cfg = ClientConfig(initial_stagger_s=0.0, compute_jitter=0.0,
                           speed_factor=0.5)
        sim, _net, server, clients = build(1, client_config=cfg)
        submit(server, n=1, flops=40.0)
        server.start_daemons()
        clients[0].start()
        sim.run(until=300.0)
        rec = server.tracer.first("task.compute_start", host="c0")
        assert rec["runtime"] == pytest.approx(80.0)
        # The server's estimate was still 40s.
        assigns = server.tracer.first("sched.assign", host="c0")
        assert assigns is not None


class TestWorkRequestAccounting:
    def test_work_request_shrinks_with_queued_work(self):
        cfg = ClientConfig(initial_stagger_s=0.0, work_buffer_min_s=1000.0,
                           work_buffer_target_s=1000.0, compute_jitter=0.0)
        sim, _net, server, clients = build(
            1, client_config=cfg,
            server_config=ServerConfig(max_results_per_rpc=2,
                                       request_delay_s=1.0))
        submit(server, n=10, flops=100.0)
        server.start_daemons()
        clients[0].start()
        sim.run(until=30.0)
        reqs = [r["work_req"] for r in server.tracer.select(
            "sched.rpc", host="c0")]
        assert reqs[0] == pytest.approx(1000.0)
        # After receiving ~200s of work the next request is ~200s smaller.
        assert any(r < 900.0 for r in reqs[1:])
