"""Tests for speculative execution, homogeneous redundancy, and
locality-aware scheduling."""

import pytest

from repro.boinc import ClientConfig, ServerConfig
from repro.core import JobPhase, MapReduceJobSpec, VolunteerCloud


def spec(name="job", **kwargs):
    defaults = dict(n_maps=6, n_reducers=2, input_size=60e6)
    defaults.update(kwargs)
    return MapReduceJobSpec(name, **defaults)


class TestSpeculativeExecution:
    def slow_node_cloud(self, speculative, speed_factor=0.05, seed=1):
        cloud = VolunteerCloud(seed=seed, server_config=ServerConfig(
            speculative_execution=speculative,
            speculative_factor=3.0,
            speculative_min_elapsed_s=60.0))
        cloud.add_volunteers(7, mr=True)
        # One genuine straggler: the server's speed estimate is 20x off
        # (benchmark speed 1.0, real application speed 0.05).
        cloud.add_volunteer("slowpoke", mr=True,
                            config=ClientConfig(speed_factor=speed_factor))
        return cloud

    def test_backup_replicas_created_for_stragglers(self):
        cloud = self.slow_node_cloud(speculative=True)
        job = cloud.run_job(spec(), timeout=48 * 3600)
        assert job.phase is JobPhase.DONE
        speculative = cloud.tracer.select("transitioner.speculative")
        assert len(speculative) >= 1
        assert any(r["host"] == "slowpoke" for r in speculative)

    def test_no_speculation_when_disabled(self):
        cloud = self.slow_node_cloud(speculative=False)
        cloud.run_job(spec(), timeout=48 * 3600)
        assert cloud.tracer.select("transitioner.speculative") == []

    def test_speculation_shortens_makespan_with_slow_node(self):
        def run(speculative):
            cloud = self.slow_node_cloud(speculative)
            job = cloud.run_job(spec(), timeout=48 * 3600)
            return job.makespan()

        assert run(True) < run(False)

    def test_speculation_bounded_by_max_total_results(self):
        cloud = self.slow_node_cloud(speculative=True, speed_factor=0.01)
        job = cloud.run_job(spec(), timeout=72 * 3600)
        assert job.phase is JobPhase.DONE
        for wu in cloud.server.db.workunits.values():
            assert len(cloud.server.db.results_for_wu(wu.id)) <= \
                wu.max_total_results

    def test_healthy_cluster_barely_speculates(self):
        cloud = VolunteerCloud(seed=1, server_config=ServerConfig(
            speculative_execution=True, speculative_factor=3.0,
            speculative_min_elapsed_s=600.0))
        cloud.add_volunteers(8, mr=True)
        cloud.run_job(spec(), timeout=48 * 3600)
        assert len(cloud.tracer.select("transitioner.speculative")) <= 2


class TestHomogeneousRedundancy:
    def platform_cloud(self, hr_on, seed=3):
        cloud = VolunteerCloud(seed=seed, server_config=ServerConfig(
            homogeneous_redundancy=hr_on))
        for i in range(5):
            cloud.add_volunteer(f"linux{i}", mr=True, hr_class="x86-linux",
                                platform_variance=True)
        for i in range(5):
            cloud.add_volunteer(f"win{i}", mr=True, hr_class="x86-windows",
                                platform_variance=True)
        return cloud

    def test_hr_restricts_replicas_to_one_class(self):
        cloud = self.platform_cloud(hr_on=True)
        job = cloud.run_job(spec(), timeout=48 * 3600)
        assert job.phase is JobPhase.DONE
        for wu in cloud.server.db.workunits.values():
            classes = {
                cloud.server.db.hosts[r.host_id].hr_class
                for r in cloud.server.db.results_for_wu(wu.id)
                if r.host_id is not None
            }
            assert len(classes) == 1, f"wu {wu.id} crossed platforms"

    def test_platform_variant_app_validates_cleanly_under_hr(self):
        cloud = self.platform_cloud(hr_on=True)
        cloud.run_job(spec(), timeout=48 * 3600)
        assert len(cloud.tracer.select("validator.inconclusive")) == 0

    def test_without_hr_platform_variance_wastes_work(self):
        """Cross-platform replica pairs never match; the validator keeps
        asking for more replicas until two land on the same platform."""
        cloud = self.platform_cloud(hr_on=False)
        job = cloud.run_job(spec(), timeout=96 * 3600)
        assert job.phase is JobPhase.DONE
        assert len(cloud.tracer.select("validator.inconclusive")) > 0
        hr_cloud = self.platform_cloud(hr_on=True)
        hr_cloud.run_job(spec(), timeout=96 * 3600)
        assert len(hr_cloud.server.db.results) < len(cloud.server.db.results)


class TestLocalityScheduling:
    def run(self, locality, seed=2):
        cloud = VolunteerCloud(seed=seed, server_config=ServerConfig(
            locality_scheduling=locality))
        cloud.add_volunteers(8, mr=True)
        job = cloud.run_job(spec(), timeout=48 * 3600)
        assert job.phase is JobPhase.DONE
        local = len(cloud.tracer.select("peer.local"))
        fetched = len(cloud.tracer.select("peer.fetched"))
        return local, fetched

    def test_locality_increases_local_reads(self):
        local_on, fetched_on = self.run(True)
        local_off, fetched_off = self.run(False)
        assert local_on + fetched_on == local_off + fetched_off
        assert local_on >= local_off

    def test_job_completes_with_locality(self):
        local, fetched = self.run(True)
        assert local + fetched > 0
