"""Unit and integration tests for the BOINC client state machine."""

import numpy as np
import pytest

from repro.boinc import (
    Client,
    ClientConfig,
    FileRef,
    ProjectServer,
    ResultState,
    ServerConfig,
    TaskState,
    Workunit,
    WorkunitState,
    make_client,
)
from repro.net import EMULAB_LINK, Network, SERVER_LINK
from repro.sim import Simulator


def build(n_clients=2, client_config=None, server_config=None, flops=1.0,
          seed=0):
    sim = Simulator()
    net = Network(sim)
    server_host = net.add_host("server", SERVER_LINK)
    server = ProjectServer(sim, net, server_host,
                           config=server_config or ServerConfig())
    cfg = client_config or ClientConfig(initial_stagger_s=1.0,
                                        backoff_min_s=10.0,
                                        backoff_max_s=60.0,
                                        work_buffer_min_s=60.0,
                                        work_buffer_target_s=120.0)
    clients = [
        make_client(sim, net, server, f"c{i}", flops=flops, config=cfg,
                    rng=np.random.default_rng(seed + i))
        for i in range(n_clients)
    ]
    return sim, net, server, clients


def submit(server, n=1, flops=30.0, input_size=1e6, replication=2, quorum=2):
    wus = []
    for i in range(n):
        wu = Workunit(id=server.db.new_wu_id(), app_name="app",
                      input_files=(FileRef(f"in{i}", input_size),),
                      flops=flops, target_nresults=replication,
                      min_quorum=quorum)
        wus.append(server.submit_workunit(wu))
    return wus


def start_all(server, clients):
    server.start_daemons()
    for c in clients:
        c.start()


class TestWorkFetchCycle:
    def test_client_fetches_computes_reports(self):
        sim, _net, server, clients = build(n_clients=2)
        wus = submit(server, n=1)
        start_all(server, clients)
        sim.run(until=300.0)
        wu = wus[0]
        assert wu.state is WorkunitState.ASSIMILATED
        results = server.db.results_for_wu(wu.id)
        assert all(r.reported_success for r in results)

    def test_single_client_cannot_complete_quorum_alone(self):
        sim, _net, server, clients = build(n_clients=1)
        wus = submit(server, n=1, replication=2, quorum=2)
        start_all(server, clients)
        sim.run(until=300.0)
        # One replica done, the other unassignable (one-per-host rule).
        assert wus[0].state is WorkunitState.ACTIVE
        states = [r.state for r in server.db.results_for_wu(wus[0].id)]
        assert ResultState.OVER in states
        assert ResultState.UNSENT in states

    def test_tasks_run_sequentially_on_one_cpu(self):
        sim, _net, server, clients = build(
            n_clients=1,
            client_config=ClientConfig(initial_stagger_s=0.0,
                                       work_buffer_target_s=1000,
                                       compute_jitter=0.0))
        submit(server, n=3, flops=50.0, replication=1, quorum=1)
        start_all(server, clients)
        sim.run(until=400.0)
        starts = sorted(r.time for r in server.tracer.select(
            "task.compute_start", host="c0"))
        assert len(starts) == 3
        assert starts[1] - starts[0] == pytest.approx(50.0, rel=0.02)
        assert starts[2] - starts[1] == pytest.approx(50.0, rel=0.02)

    def test_multicore_runs_in_parallel(self):
        sim, _net, server, clients = build(
            n_clients=1,
            client_config=ClientConfig(ncpus=2, initial_stagger_s=0.0,
                                       work_buffer_target_s=1000,
                                       compute_jitter=0.0))
        submit(server, n=2, flops=50.0, replication=1, quorum=1)
        start_all(server, clients)
        sim.run(until=300.0)
        starts = sorted(r.time for r in server.tracer.select(
            "task.compute_start", host="c0"))
        assert len(starts) == 2
        assert starts[1] - starts[0] < 1.0

    def test_compute_time_scales_with_flops(self):
        sim, _net, server, clients = build(
            n_clients=1, flops=2.0,
            client_config=ClientConfig(initial_stagger_s=0.0,
                                       compute_jitter=0.0))
        submit(server, n=1, flops=100.0, replication=1, quorum=1)
        start_all(server, clients)
        sim.run(until=300.0)
        recs = server.tracer.select("task.compute_start", host="c0")
        assert recs[0]["runtime"] == pytest.approx(50.0)


class TestBackoff:
    def test_no_work_triggers_exponential_backoff(self):
        sim, _net, server, clients = build(n_clients=1)
        start_all(server, clients)  # no work submitted at all
        sim.run(until=500.0)
        backoffs = server.tracer.select("client.backoff", host="c0")
        assert len(backoffs) >= 3
        delays = [b["delay"] for b in backoffs]
        # Roughly doubling until the cap.
        assert delays[1] > delays[0]
        assert max(delays) <= 60.0 * 1.5 + 1e-9  # cap * (1 + jitter)

    def test_backoff_resets_after_work(self):
        sim, _net, server, clients = build(n_clients=2)
        start_all(server, clients)
        sim.run(until=200.0)  # accumulate backoff
        assert clients[0]._backoff_count >= 3
        submit(server, n=4, flops=10.0)
        sim.run(until=400.0)
        # Getting work reset the sequence: the first no-work backoff *after*
        # receiving an assignment starts again near the minimum, not the cap.
        first_assign = server.tracer.first("sched.assign", host="c0")
        assert first_assign is not None
        post = [r["delay"] for r in server.tracer.select(
            "client.backoff", host="c0") if r.time > first_assign.time]
        assert post, "client never backed off after draining the new work"
        assert post[0] <= 10.0 * 1.5  # backoff_min * (1 + jitter)

    def test_report_waits_for_backoff_window(self):
        """The paper's Fig. 4 pathology: a finished task cannot be reported
        while the client sits in a backoff window."""
        cfg = ClientConfig(initial_stagger_s=0.0, backoff_min_s=100.0,
                           backoff_max_s=100.0, backoff_jitter=0.0,
                           compute_jitter=0.0)
        sim, _net, server, clients = build(n_clients=1, client_config=cfg)
        submit(server, n=1, flops=30.0, replication=1, quorum=1)
        start_all(server, clients)
        sim.run(until=600.0)
        tracer = server.tracer
        ready = tracer.first("task.ready", host="c0")
        report = tracer.first("sched.report", host="c0")
        assert ready is not None and report is not None
        # While computing (~30s) the client polled for more work, got
        # nothing, and entered a 100s backoff; the report had to wait.
        gap = report.time - ready.time
        assert gap > 30.0

    def test_report_immediately_skips_backoff(self):
        cfg = ClientConfig(initial_stagger_s=0.0, backoff_min_s=100.0,
                           backoff_max_s=100.0, backoff_jitter=0.0,
                           compute_jitter=0.0, report_immediately=True)
        sim, _net, server, clients = build(n_clients=1, client_config=cfg)
        submit(server, n=1, flops=30.0, replication=1, quorum=1)
        start_all(server, clients)
        sim.run(until=600.0)
        tracer = server.tracer
        ready = tracer.first("task.ready", host="c0")
        report = tracer.first("sched.report", host="c0")
        gap = report.time - ready.time
        assert gap < 5.0


class TestUploadVsReport:
    def test_upload_precedes_report(self):
        """Outputs are uploaded as soon as ready; the report waits for the
        next scheduler RPC (Section IV.B)."""
        cfg = ClientConfig(initial_stagger_s=0.0, backoff_min_s=50.0,
                           backoff_max_s=50.0, backoff_jitter=0.0)
        sim, _net, server, clients = build(n_clients=1, client_config=cfg)
        submit(server, n=1, flops=30.0, replication=1, quorum=1)
        start_all(server, clients)
        sim.run(until=400.0)
        res = server.db.results_for_wu(1)[0]
        assert res.received_at is not None
        assert res.reported_at is not None
        assert res.received_at <= res.reported_at


class TestShutdown:
    def test_shutdown_stops_rpc_activity(self):
        sim, _net, server, clients = build(n_clients=1)
        start_all(server, clients)
        sim.run(until=50.0)
        clients[0].shutdown()
        rpcs_at_shutdown = clients[0].rpcs
        sim.run(until=500.0)
        assert clients[0].rpcs == rpcs_at_shutdown

    def test_shutdown_fails_running_task(self):
        sim, _net, server, clients = build(
            n_clients=1,
            client_config=ClientConfig(initial_stagger_s=0.0))
        submit(server, n=1, flops=1000.0, replication=1, quorum=1)
        start_all(server, clients)
        sim.run(until=60.0)  # task is computing
        assert any(t.state == TaskState.COMPUTING for t in clients[0].tasks)
        clients[0].shutdown()
        sim.run(until=70.0)
        assert clients[0].tasks[0].state == TaskState.FAILED

    def test_double_start_rejected(self):
        _sim, _net, _server, clients = build(n_clients=1)
        clients[0].start()
        with pytest.raises(RuntimeError):
            clients[0].start()


class TestFailureRecovery:
    def test_failed_task_reported_and_replaced(self):
        class ExplodingExecutor:
            def execute(self, client, task):
                raise RuntimeError("segfault")

        sim = Simulator()
        net = Network(sim)
        server_host = net.add_host("server", SERVER_LINK)
        server = ProjectServer(sim, net, server_host)
        cfg = ClientConfig(initial_stagger_s=0.0, backoff_min_s=5.0,
                           backoff_max_s=20.0)
        bad = make_client(sim, net, server, "bad", config=cfg,
                          rng=np.random.default_rng(0),
                          executor=ExplodingExecutor())
        good1 = make_client(sim, net, server, "good1", config=cfg,
                            rng=np.random.default_rng(1))
        good2 = make_client(sim, net, server, "good2", config=cfg,
                            rng=np.random.default_rng(2))
        wu = Workunit(id=server.db.new_wu_id(), app_name="app",
                      input_files=(FileRef("in", 1e6),), flops=30.0,
                      target_nresults=3, min_quorum=2)
        server.submit_workunit(wu)
        server.start_daemons()
        for c in (bad, good1, good2):
            c.start()
        sim.run(until=600.0)
        assert wu.state is WorkunitState.ASSIMILATED
        failed = server.tracer.select("task.failed", host="bad")
        assert failed and "segfault" in failed[0]["error"]
