"""Unit tests for the data server."""

import pytest

from repro.boinc import FileRef
from repro.boinc.dataserver import DataServer, FileMissing
from repro.net import EMULAB_LINK, Network, SERVER_LINK
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    net = Network(sim)
    server_host = net.add_host("server", EMULAB_LINK)
    ds = DataServer(sim, net, server_host)
    client = net.add_host("client", EMULAB_LINK)
    return sim, net, ds, client


class TestCatalogue:
    def test_publish_and_has(self, setup):
        _sim, _net, ds, _client = setup
        ds.publish(FileRef("f", 100))
        assert ds.has("f")
        assert not ds.has("g")

    def test_unpublish(self, setup):
        _sim, _net, ds, _client = setup
        ds.publish(FileRef("f", 100))
        ds.unpublish("f")
        assert not ds.has("f")
        ds.unpublish("f")  # idempotent

    def test_republish_overwrites(self, setup):
        _sim, _net, ds, _client = setup
        ds.publish(FileRef("f", 100))
        ds.publish(FileRef("f", 200))
        assert ds.files["f"].size == 200


class TestDownload:
    def test_download_time_matches_link(self, setup):
        sim, _net, ds, client = setup
        ds.publish(FileRef("f", 12.5e6))
        flow = ds.download("f", client)
        sim.run(until_event=flow.done)
        assert sim.now == pytest.approx(1.0)
        assert ds.bytes_served == 12.5e6

    def test_download_missing_raises(self, setup):
        _sim, _net, ds, client = setup
        with pytest.raises(FileMissing):
            ds.download("nope", client)

    def test_concurrent_downloads_share_server_uplink(self, setup):
        sim, net, ds, client = setup
        other = net.add_host("other", EMULAB_LINK)
        ds.publish(FileRef("f", 12.5e6))
        f1 = ds.download("f", client)
        f2 = ds.download("f", other)
        assert f1.rate == pytest.approx(6.25e6)
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert f2.finished


class TestUpload:
    def test_upload_publishes_on_completion(self, setup):
        sim, _net, ds, client = setup
        ds.upload(FileRef("out", 12.5e6), client)
        assert not ds.has("out")  # not yet
        sim.run()  # drain: publication runs one callback pass after the flow
        assert ds.has("out")
        assert ds.bytes_received == 12.5e6

    def test_upload_callback(self, setup):
        sim, _net, ds, client = setup
        done = []
        ds.upload(FileRef("out", 100), client, on_done=lambda: done.append(1))
        sim.run()
        assert done == [1]

    def test_aborted_upload_leaves_no_file(self, setup):
        sim, net, ds, client = setup
        flow = ds.upload(FileRef("out", 1e9), client)
        sim.run(until=1.0)
        net.flownet.abort_flow(flow, reason="client died")
        sim.run(until=2.0)
        assert not ds.has("out")
        assert ds.bytes_received == 0
