"""Unit tests for the project server: scheduler, daemons, validation."""

import pytest

from repro.boinc import (
    FileRef,
    OutputData,
    ProjectServer,
    ReportedResult,
    ResultOutcome,
    ResultState,
    SchedulerRequest,
    ServerConfig,
    ValidateState,
    Workunit,
    WorkunitState,
)
from repro.net import Network, SERVER_LINK
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def server(sim):
    net = Network(sim)
    host = net.add_host("server", SERVER_LINK)
    return ProjectServer(sim, net, host, config=ServerConfig())


def make_wu(server, replication=2, quorum=2, **kwargs):
    defaults = dict(app_name="app", input_files=(FileRef("in", 100.0),),
                    flops=10.0, target_nresults=replication, min_quorum=quorum)
    defaults.update(kwargs)
    return server.submit_workunit(
        Workunit(id=server.db.new_wu_id(), **defaults))


def rpc(sim, server, host, work_req=600.0, reports=()):
    """Run one scheduler RPC synchronously and return the reply."""
    proc = sim.process(server.scheduler_rpc(SchedulerRequest(
        host_id=host.id, work_req_s=work_req, reports=list(reports))))
    sim.run(until_event=proc)
    return proc.value


def feed(server):
    server._feeder_pass()


class TestSubmission:
    def test_submit_creates_replicas(self, server):
        wu = make_wu(server, replication=3, quorum=2)
        assert len(server.db.results_for_wu(wu.id)) == 3

    def test_inputs_published(self, server):
        make_wu(server)
        assert server.dataserver.has("in")

    def test_publish_can_be_suppressed(self, sim, server):
        wu = Workunit(id=server.db.new_wu_id(), app_name="a",
                      input_files=(FileRef("x", 10),), flops=1.0)
        server.submit_workunit(wu, publish_inputs=False)
        assert not server.dataserver.has("x")


class TestScheduler:
    def test_assigns_after_feeder_pass(self, sim, server):
        make_wu(server)
        host = server.register_host("h1", 1.0)
        feed(server)
        reply = rpc(sim, server, host)
        assert len(reply.assignments) == 1
        assert not reply.no_work

    def test_nothing_visible_before_feeder(self, sim, server):
        make_wu(server)
        host = server.register_host("h1", 1.0)
        reply = rpc(sim, server, host)
        assert reply.assignments == []
        assert reply.no_work

    def test_one_replica_per_host(self, sim, server):
        make_wu(server, replication=2)
        host = server.register_host("h1", 1.0)
        feed(server)
        first = rpc(sim, server, host)
        assert len(first.assignments) == 1
        second = rpc(sim, server, host)
        assert second.assignments == []  # the other replica is off-limits

    def test_two_hosts_get_different_replicas(self, sim, server):
        wu = make_wu(server, replication=2)
        h1 = server.register_host("h1", 1.0)
        h2 = server.register_host("h2", 1.0)
        feed(server)
        a1 = rpc(sim, server, h1)
        a2 = rpc(sim, server, h2)
        assert a1.assignments[0].result_id != a2.assignments[0].result_id
        assert {r.host_id for r in server.db.results_for_wu(wu.id)} == {h1.id, h2.id}

    def test_work_request_size_limits_assignments(self, sim, server):
        for _ in range(5):
            make_wu(server, replication=2, flops=100.0)
        host = server.register_host("h1", 1.0)
        feed(server)
        reply = rpc(sim, server, host, work_req=150.0)
        # First WU books 100s >= nothing, second pushes over 150.
        assert len(reply.assignments) == 2

    def test_max_results_per_rpc(self, sim):
        net = Network(sim)
        host_net = net.add_host("server", SERVER_LINK)
        server = ProjectServer(sim, net, host_net,
                               config=ServerConfig(max_results_per_rpc=3))
        for _ in range(10):
            make_wu(server, flops=1.0)
        host = server.register_host("h1", 1.0)
        feed(server)
        reply = rpc(sim, server, host, work_req=1e9)
        assert len(reply.assignments) == 3

    def test_est_runtime_scales_with_host_speed(self, sim, server):
        make_wu(server, flops=100.0)
        fast = server.register_host("fast", 4.0)
        feed(server)
        reply = rpc(sim, server, fast)
        assert reply.assignments[0].est_runtime_s == pytest.approx(25.0)

    def test_zero_work_request_reports_only(self, sim, server):
        make_wu(server)
        host = server.register_host("h1", 1.0)
        feed(server)
        reply = rpc(sim, server, host, work_req=0.0)
        assert reply.assignments == []
        assert not reply.no_work  # we didn't ask

    def test_rpc_counts_tracked(self, sim, server):
        host = server.register_host("h1", 1.0)
        rpc(sim, server, host)
        rpc(sim, server, host)
        assert host.rpc_count == 2


class TestReporting:
    def assign_one(self, sim, server, host):
        feed(server)
        reply = rpc(sim, server, host)
        return reply.assignments[0]

    def test_successful_report(self, sim, server):
        make_wu(server)
        host = server.register_host("h1", 1.0)
        a = self.assign_one(sim, server, host)
        out = OutputData(digest="d1")
        rpc(sim, server, host, work_req=0,
            reports=[ReportedResult(a.result_id, True, out, 10.0)])
        res = server.db.results[a.result_id]
        assert res.state is ResultState.OVER
        assert res.outcome is ResultOutcome.SUCCESS
        assert res.output.digest == "d1"
        assert res.reported_at is not None

    def test_error_report(self, sim, server):
        make_wu(server)
        host = server.register_host("h1", 1.0)
        a = self.assign_one(sim, server, host)
        rpc(sim, server, host, work_req=0,
            reports=[ReportedResult(a.result_id, False, None, 0.0)])
        res = server.db.results[a.result_id]
        assert res.outcome is ResultOutcome.CLIENT_ERROR

    def test_report_unknown_result_ignored(self, sim, server):
        host = server.register_host("h1", 1.0)
        rpc(sim, server, host, work_req=0,
            reports=[ReportedResult(9999, True, OutputData("d"), 1.0)])
        # no crash, nothing recorded

    def test_record_upload_sets_received_at(self, sim, server):
        make_wu(server)
        host = server.register_host("h1", 1.0)
        a = self.assign_one(sim, server, host)
        server.record_upload(a.result_id)
        res = server.db.results[a.result_id]
        assert res.received_at == sim.now
        assert res.reported_at is None  # upload is not a report


class TestTransitioner:
    def test_quorum_flagging(self, sim, server):
        wu = make_wu(server, replication=2, quorum=2)
        h1, h2 = (server.register_host(n, 1.0) for n in ("h1", "h2"))
        feed(server)
        a1 = rpc(sim, server, h1).assignments[0]
        a2 = rpc(sim, server, h2).assignments[0]
        for host, a in ((h1, a1), (h2, a2)):
            rpc(sim, server, host, work_req=0,
                reports=[ReportedResult(a.result_id, True, OutputData("d"), 1.0)])
        server._transitioner_pass()
        assert wu.need_validate

    def test_error_spawns_replacement(self, sim, server):
        wu = make_wu(server, replication=2, quorum=2)
        h1 = server.register_host("h1", 1.0)
        feed(server)
        a1 = rpc(sim, server, h1).assignments[0]
        rpc(sim, server, h1, work_req=0,
            reports=[ReportedResult(a1.result_id, False, None, 0.0)])
        server._transitioner_pass()
        results = server.db.results_for_wu(wu.id)
        assert len(results) == 3  # 2 original + 1 replacement
        assert sum(1 for r in results if r.state is ResultState.UNSENT) == 2

    def test_deadline_timeout_marks_no_reply(self, sim, server):
        wu = make_wu(server)
        h1 = server.register_host("h1", 1.0)
        feed(server)
        a1 = rpc(sim, server, h1).assignments[0]
        sim.run(until=server.config.delay_bound_s + 10)
        server._transitioner_pass()
        res = server.db.results[a1.result_id]
        assert res.outcome is ResultOutcome.NO_REPLY
        # and a replacement exists
        assert len(server.db.results_for_wu(wu.id)) == 3

    def test_too_many_errors_kills_wu(self, sim, server):
        wu = make_wu(server, replication=2, quorum=2)
        wu.max_error_results = 2
        errors = []
        server.on_wu_error = errors.append
        hosts = [server.register_host(f"h{i}", 1.0) for i in range(4)]
        for host in hosts[:2]:
            feed(server)
            reply = rpc(sim, server, host)
            if reply.assignments:
                rpc(sim, server, host, work_req=0, reports=[
                    ReportedResult(reply.assignments[0].result_id, False,
                                   None, 0.0)])
        server._transitioner_pass()
        assert wu.state is WorkunitState.ERROR
        assert errors == [wu]


class TestValidator:
    def run_replicas(self, sim, server, wu, digests):
        """Assign and report one replica per digest; returns results."""
        out = []
        for i, digest in enumerate(digests):
            host = server.register_host(f"v{i}", 1.0)
            feed(server)
            reply = rpc(sim, server, host)
            assert reply.assignments, f"no assignment for replica {i}"
            a = reply.assignments[0]
            rpc(sim, server, host, work_req=0, reports=[
                ReportedResult(a.result_id, True, OutputData(digest), 1.0)])
            out.append(server.db.results[a.result_id])
        server._transitioner_pass()
        server._validator_pass()
        return out

    def test_matching_pair_validates(self, sim, server):
        wu = make_wu(server, replication=2, quorum=2)
        r1, r2 = self.run_replicas(sim, server, wu, ["d", "d"])
        assert wu.state is WorkunitState.VALIDATED
        assert wu.canonical_result_id == min(r1.id, r2.id)
        assert r1.validate_state is ValidateState.VALID
        assert r2.validate_state is ValidateState.VALID

    def test_mismatch_spawns_tiebreaker(self, sim, server):
        wu = make_wu(server, replication=2, quorum=2)
        self.run_replicas(sim, server, wu, ["a", "b"])
        assert wu.state is WorkunitState.ACTIVE
        assert wu.target_nresults == 3  # validator asked for one more
        server._transitioner_pass()
        assert len(server.db.results_for_wu(wu.id)) == 3

    def test_tiebreaker_resolves_majority(self, sim, server):
        wu = make_wu(server, replication=2, quorum=2)
        self.run_replicas(sim, server, wu, ["good", "bad"])
        server._transitioner_pass()
        # third replica agrees with "good"
        host = server.register_host("v2", 1.0)
        feed(server)
        a = rpc(sim, server, host).assignments[0]
        rpc(sim, server, host, work_req=0, reports=[
            ReportedResult(a.result_id, True, OutputData("good"), 1.0)])
        server._transitioner_pass()
        server._validator_pass()
        assert wu.state is WorkunitState.VALIDATED
        states = {r.output.digest: r.validate_state
                  for r in server.db.results_for_wu(wu.id) if r.output}
        assert states["good"] is ValidateState.VALID
        assert states["bad"] is ValidateState.INVALID

    def test_quorum_of_one(self, sim, server):
        wu = make_wu(server, replication=1, quorum=1)
        self.run_replicas(sim, server, wu, ["only"])
        assert wu.state is WorkunitState.VALIDATED


class TestAssimilator:
    def test_handler_called_once_with_canonical(self, sim, server):
        seen = []
        server.assimilate_handler = lambda wu, res: seen.append((wu.id, res.id))
        wu = make_wu(server, replication=2, quorum=2)
        validator = TestValidator()
        validator.run_replicas(sim, server, wu, ["d", "d"])
        server._assimilator_pass()
        server._assimilator_pass()  # idempotent
        assert len(seen) == 1
        assert seen[0][0] == wu.id
        assert wu.state is WorkunitState.ASSIMILATED

    def test_valid_hosts_for_wu(self, sim, server):
        wu = make_wu(server, replication=2, quorum=2)
        validator = TestValidator()
        validator.run_replicas(sim, server, wu, ["d", "d"])
        hosts = server.valid_hosts_for_wu(wu.id)
        assert {h.name for h in hosts} == {"v0", "v1"}


class TestDaemonsEndToEnd:
    def test_daemon_loop_drives_wu_to_assimilation(self, sim, server):
        seen = []
        server.assimilate_handler = lambda wu, res: seen.append(wu.id)
        wu = make_wu(server, replication=2, quorum=2)
        server.start_daemons()
        h1 = server.register_host("h1", 1.0)
        h2 = server.register_host("h2", 1.0)
        sim.run(until=6.0)  # let the feeder pass
        for host in (h1, h2):
            reply = rpc(sim, server, host)
            a = reply.assignments[0]
            rpc(sim, server, host, work_req=0, reports=[
                ReportedResult(a.result_id, True, OutputData("d"), 1.0)])
        sim.run(until=60.0)
        assert seen == [wu.id]

    def test_double_start_rejected(self, server):
        server.start_daemons()
        with pytest.raises(RuntimeError):
            server.start_daemons()
