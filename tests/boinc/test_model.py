"""Unit tests for the BOINC data model."""

import pytest

from repro.boinc import (
    Database,
    FileRef,
    OutputData,
    ResultState,
    Workunit,
    WorkunitState,
)


def make_wu(db, **kwargs):
    defaults = dict(app_name="app", input_files=(FileRef("in", 100.0),),
                    flops=10.0)
    defaults.update(kwargs)
    return db.insert_workunit(Workunit(id=db.new_wu_id(), **defaults))


class TestFileRef:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FileRef("f", -1)

    def test_frozen(self):
        ref = FileRef("f", 10)
        with pytest.raises(AttributeError):
            ref.size = 20


class TestOutputData:
    def test_total_size(self):
        out = OutputData(digest="d", files=(FileRef("a", 10), FileRef("b", 5)))
        assert out.total_size == 15

    def test_empty_files(self):
        assert OutputData(digest="d").total_size == 0


class TestWorkunitValidation:
    def test_quorum_bounds(self):
        with pytest.raises(ValueError):
            Workunit(id=1, app_name="a", input_files=(), flops=1,
                     min_quorum=0)

    def test_target_below_quorum_rejected(self):
        with pytest.raises(ValueError):
            Workunit(id=1, app_name="a", input_files=(), flops=1,
                     target_nresults=1, min_quorum=2)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            Workunit(id=1, app_name="a", input_files=(), flops=-1)


class TestDatabase:
    def test_insert_workunit_allocates_results_separately(self):
        db = Database()
        wu = make_wu(db)
        assert db.results_for_wu(wu.id) == []

    def test_duplicate_wu_id_rejected(self):
        db = Database()
        wu = make_wu(db)
        with pytest.raises(ValueError):
            db.insert_workunit(wu)

    def test_insert_result_names_are_sequential(self):
        db = Database()
        wu = make_wu(db)
        r0 = db.insert_result(wu)
        r1 = db.insert_result(wu)
        assert r0.name.endswith("_0")
        assert r1.name.endswith("_1")

    def test_unsent_results_fifo(self):
        db = Database()
        wu1 = make_wu(db)
        wu2 = make_wu(db)
        a = db.insert_result(wu1)
        b = db.insert_result(wu2)
        c = db.insert_result(wu1)
        assert [r.id for r in db.unsent_results()] == [a.id, b.id, c.id]

    def test_mark_sent_removes_from_unsent(self):
        db = Database()
        wu = make_wu(db)
        res = db.insert_result(wu)
        host = db.insert_host("h", 1.0)
        db.mark_sent(res, host, now=5.0, deadline=100.0)
        assert res.state is ResultState.IN_PROGRESS
        assert res.host_id == host.id
        assert db.unsent_results() == []
        assert host.results_assigned == 1

    def test_mark_sent_twice_rejected(self):
        db = Database()
        wu = make_wu(db)
        res = db.insert_result(wu)
        host = db.insert_host("h", 1.0)
        db.mark_sent(res, host, 0.0, 10.0)
        with pytest.raises(ValueError):
            db.mark_sent(res, host, 1.0, 10.0)

    def test_requeue_restores_unsent(self):
        db = Database()
        wu = make_wu(db)
        res = db.insert_result(wu)
        host = db.insert_host("h", 1.0)
        db.mark_sent(res, host, 0.0, 10.0)
        db.requeue(res)
        assert res.state is ResultState.UNSENT
        assert res.host_id is None
        assert [r.id for r in db.unsent_results()] == [res.id]

    def test_hosts_with_result_of_wu(self):
        db = Database()
        wu = make_wu(db)
        r1, r2 = db.insert_result(wu), db.insert_result(wu)
        h1, h2 = db.insert_host("a", 1.0), db.insert_host("b", 1.0)
        db.mark_sent(r1, h1, 0.0, 10.0)
        assert db.hosts_with_result_of_wu(wu.id) == {h1.id}
        db.mark_sent(r2, h2, 0.0, 10.0)
        assert db.hosts_with_result_of_wu(wu.id) == {h1.id, h2.id}

    def test_workunits_by_job_and_kind(self):
        db = Database()
        make_wu(db, mr_job="j1", mr_kind="map", mr_index=0)
        make_wu(db, mr_job="j1", mr_kind="reduce", mr_index=0)
        make_wu(db, mr_job="j2", mr_kind="map", mr_index=0)
        assert len(db.workunits_by_job("j1")) == 2
        assert len(db.workunits_by_job("j1", "map")) == 1
        assert len(db.workunits_by_job("j3")) == 0

    def test_in_progress_results(self):
        db = Database()
        wu = make_wu(db)
        res = db.insert_result(wu)
        host = db.insert_host("h", 1.0)
        assert db.in_progress_results() == []
        db.mark_sent(res, host, 0.0, 10.0)
        assert db.in_progress_results() == [res]

    def test_counts(self):
        db = Database()
        wu = make_wu(db)
        db.insert_result(wu)
        db.insert_host("h", 1.0)
        counts = db.counts()
        assert counts == {"workunits": 1, "results": 1, "hosts": 1, "unsent": 1}

    def test_host_address_format(self):
        db = Database()
        rec = db.insert_host("worker7", 2.0)
        assert rec.address == "worker7:31416"

    def test_wu_state_starts_active(self):
        db = Database()
        wu = make_wu(db)
        assert wu.state is WorkunitState.ACTIVE
        assert wu.canonical_result_id is None
