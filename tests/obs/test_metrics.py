"""Tests for the metric instruments, registry, and sampler."""

import math

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sampler,
)
from repro.sim import Simulator


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(4)
        g.add(-1)
        assert g.value == 3.0

    def test_callback_backed(self):
        state = {"n": 7}
        g = Gauge("live", fn=lambda: state["n"])
        assert g.value == 7
        state["n"] = 9
        assert g.value == 9

    def test_callback_gauge_rejects_set(self):
        g = Gauge("live", fn=lambda: 1)
        with pytest.raises(ValueError, match="callback-backed"):
            g.set(5)


class TestHistogram:
    def test_buckets_and_stats(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.mean == pytest.approx(55.5 / 3)
        assert h.min == 0.5 and h.max == 50.0

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram("h").mean)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(5.0, 1.0))

    def test_small_sample_quantiles_exact(self):
        h = Histogram("h", quantiles=(0.5,))
        h.observe(3.0)
        h.observe(1.0)
        assert h.quantile(0.5) == pytest.approx(1.0, abs=2.0)

    def test_p2_median_converges(self):
        rng = np.random.default_rng(1)
        h = Histogram("h", quantiles=(0.5, 0.9))
        data = rng.normal(loc=100.0, scale=10.0, size=5000)
        for v in data:
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(
            float(np.median(data)), rel=0.05)
        assert h.quantile(0.9) == pytest.approx(
            float(np.percentile(data, 90)), rel=0.05)

    def test_p2_uniform_tail(self):
        rng = np.random.default_rng(2)
        h = Histogram("h", quantiles=(0.99,))
        for v in rng.uniform(0.0, 1.0, size=10000):
            h.observe(float(v))
        assert h.quantile(0.99) == pytest.approx(0.99, abs=0.03)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("a")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"]["value"] == 3.0
        assert snap["h"]["count"] == 1
        assert "p50" in snap["h"]["quantiles"]

    def test_render_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("zz").inc()
        reg.gauge("aa").set(1)
        text = reg.render()
        assert text.index("aa") < text.index("zz")


class TestSampler:
    def test_samples_gauges_on_cadence(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.gauge("clock", fn=lambda: sim.now)
        Sampler(sim, reg, period_s=10.0)
        sim.run(until=35.0)
        series = reg.series["clock"]
        assert [s.time for s in series] == [0.0, 10.0, 20.0, 30.0]
        assert [s.value for s in series] == [0.0, 10.0, 20.0, 30.0]

    def test_stop_halts_sampling(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        sampler = Sampler(sim, reg, period_s=5.0)
        sim.run(until=11.0)
        sampler.stop()
        sim.run(until=50.0)
        assert len(reg.series["g"]) == 3  # t=0, 5, 10 only

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Sampler(Simulator(), MetricsRegistry(), period_s=0.0)
