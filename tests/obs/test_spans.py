"""Tests for SpanBuilder: stitching, hierarchy, RPC spans, leak detection."""

import pytest

from repro.obs.spans import SpanBuilder
from repro.sim import Tracer


def emit_task(tracer, rid, host="h0", assign=0.0, dl=1.0, compute=5.0,
              runtime=10.0, ready=20.0, report=30.0):
    """Emit the full per-result record sequence for one task."""
    tracer.record(assign, "sched.assign", host=host, result=rid, wu=rid,
                  job="wc", kind="map", index=rid)
    tracer.record(dl, "task.download_start", host=host, result=rid)
    tracer.record(compute, "task.compute_start", host=host, result=rid,
                  runtime=runtime)
    tracer.record(ready, "task.ready", host=host, result=rid, wu=rid)
    tracer.record(report, "sched.report", host=host, result=rid, wu=rid,
                  success=True, job="wc", kind="map", index=rid)


class TestResultSpans:
    def test_complete_task_produces_span_with_phases(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        emit_task(tracer, rid=1)
        builder.finish(100.0)
        results = [s for s in builder.spans if s.category == "result"]
        assert len(results) == 1
        span = results[0]
        assert span.track == "host:h0"
        assert (span.start, span.end) == (0.0, 30.0)
        assert not span.leaked
        phases = {c.name: (c.start, c.end) for c in span.children}
        assert phases["download"] == (1.0, 5.0)
        assert phases["compute"] == (5.0, 15.0)
        assert phases["upload"] == (15.0, 20.0)
        assert phases["report-wait"] == (20.0, 30.0)

    def test_leaked_span_closed_and_flagged(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(0.0, "sched.assign", host="h1", result=7, wu=7,
                      job="wc", kind="map", index=0)
        tracer.record(2.0, "task.download_start", host="h1", result=7)
        assert builder.open_count == 1
        leaked = builder.finish(50.0)
        assert len(leaked) == 1
        assert leaked[0].leaked
        assert (leaked[0].start, leaked[0].end) == (0.0, 50.0)
        assert builder.open_count == 0

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(0.0, "sched.assign", host="h1", result=7, wu=7)
        assert builder.finish(10.0) is builder.finish(99.0)
        assert len(builder.leaked) == 1

    def test_report_without_assign_ignored(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(1.0, "sched.report", host="h0", result=3, wu=3,
                      success=True)
        builder.finish(10.0)
        assert [s for s in builder.spans if s.category == "result"] == []


class TestRpcSpans:
    def test_rpc_round_trip_becomes_span(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(4.0, "client.rpc_start", host="h0", work_req=120.0,
                      n_reports=0)
        tracer.record(5.5, "client.rpc_done", host="h0", n_assignments=2,
                      no_work=False)
        rpcs = [s for s in builder.spans if s.category == "rpc"]
        assert len(rpcs) == 1
        assert (rpcs[0].start, rpcs[0].end) == (4.0, 5.5)
        assert rpcs[0].args["n_assignments"] == 2

    def test_unanswered_rpc_leaks(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(4.0, "client.rpc_start", host="h0", work_req=0.0)
        builder.finish(9.0)
        assert len(builder.leaked) == 1
        assert builder.leaked[0].category == "rpc"


class TestInstants:
    def test_backoff_lands_on_host_track(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(3.0, "client.backoff", host="h2", count=2, delay=120.0)
        inst = [i for i in builder.instants if i.category == "backoff"]
        assert len(inst) == 1
        assert inst[0].track == "host:h2"

    def test_daemon_events_route_to_daemon_tracks(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(1.0, "validator.validated", wu=1, canonical=2)
        tracer.record(2.0, "transitioner.timeout", result=5, wu=1)
        tracer.record(3.0, "assimilator.done", wu=1)
        tracks = {i.track for i in builder.instants}
        assert {"daemon:validator", "daemon:transitioner",
                "daemon:assimilator"} <= tracks

    def test_unknown_kind_ignored(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(1.0, "peer.fetched", host="h0")
        assert builder.instants == []

    def test_tracks_hosts_before_daemons(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(1.0, "validator.validated", wu=1)
        emit_task(tracer, rid=1, host="zz")
        builder.finish(99.0)
        tracks = builder.tracks()
        assert tracks[0].startswith("host:")
        assert tracks[-1].startswith("daemon:")


class TestFailureMarkers:
    def test_failed_task_emits_error_instant_then_closes_on_report(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(0.0, "sched.assign", host="h0", result=1, wu=1)
        tracer.record(1.0, "task.failed", host="h0", result=1, error="boom")
        tracer.record(2.0, "sched.report", host="h0", result=1, wu=1,
                      success=False)
        errors = [i for i in builder.instants if i.category == "error"]
        assert len(errors) == 1
        span = [s for s in builder.spans if s.category == "result"][0]
        assert span.args["success"] is False
