"""Tests for the standard probes and the engine self-profiler."""

import pytest

from repro.core import BoincMRConfig, MapReduceJobSpec, VolunteerCloud
from repro.obs import MetricsRegistry, SelfProfiler, attach_standard_probes
from repro.sim import Simulator


class TestStandardProbes:
    def make_cloud(self):
        cloud = VolunteerCloud(seed=2, mr_config=BoincMRConfig())
        cloud.add_volunteers(6, mr=True)
        return cloud

    def test_registers_expected_gauges(self):
        cloud = self.make_cloud()
        reg = attach_standard_probes(cloud)
        assert reg is cloud.metrics
        for name in ("sched.rpc_in_use", "sched.rpc_queue_depth",
                     "daemon.transitioner.backlog",
                     "daemon.validator.backlog",
                     "daemon.assimilator.backlog",
                     "net.flows_active", "net.server_uplink_util",
                     "client.tasks_computing"):
            assert name in reg

    def test_idempotent(self):
        cloud = self.make_cloud()
        attach_standard_probes(cloud)
        attach_standard_probes(cloud)  # no TypeError from re-registration

    def test_gauges_track_live_state_through_a_run(self):
        cloud = self.make_cloud()
        cloud.attach_observability(probes=True, sample_period_s=10.0)
        cloud.run_job(MapReduceJobSpec("wc", n_maps=6, n_reducers=2,
                                       input_size=60e6))
        series = cloud.metrics.series
        assert series  # sampler ran
        # Tasks computed at some point during the run.
        computing = [s.value for s in series["client.tasks_computing"]]
        assert max(computing) > 0
        # RPC counters moved.
        assert cloud.metrics.counter("sched.rpc_total").value > 0


class TestSelfProfiler:
    def test_accounts_dispatches_by_kind(self):
        sim = Simulator()
        prof = SelfProfiler(sim)

        def tick():
            pass

        def proc():
            yield 1.0
            yield 1.0

        sim.schedule(0.5, tick)
        sim.process(proc(), name="worker:a")
        sim.run(until=5.0)
        assert prof.total_seconds > 0
        kinds = dict((k, c) for k, c, _s in prof.top(10))
        assert "process:worker" in kinds
        assert any(k.endswith("tick") for k in kinds)

    def test_top_sorted_by_wall_time(self):
        prof = SelfProfiler()
        prof.totals = {"a": [1, 0.5], "b": [1, 2.0], "c": [1, 1.0]}
        assert [k for k, _c, _s in prof.top(2)] == ["b", "c"]

    def test_double_install_rejected(self):
        sim = Simulator()
        SelfProfiler(sim)
        with pytest.raises(RuntimeError, match="already has a dispatch hook"):
            SelfProfiler(sim)

    def test_uninstall_restores_fast_path(self):
        sim = Simulator()
        prof = SelfProfiler(sim)
        prof.uninstall()
        assert sim.dispatch_hook is None
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert prof.totals == {}

    def test_wall_clock_does_not_perturb_sim_time(self):
        def run(profile):
            sim = Simulator()
            if profile:
                SelfProfiler(sim)
            times = []

            def proc():
                for _ in range(5):
                    yield 1.0
                    times.append(sim.now)

            sim.process(proc(), name="p")
            sim.run()
            return times

        assert run(True) == run(False)

    def test_render_lists_top5(self):
        sim = Simulator()
        prof = SelfProfiler(sim)
        sim.schedule(0.0, lambda: None)
        sim.run()
        text = prof.render(top=5)
        assert "total dispatch wall time" in text
