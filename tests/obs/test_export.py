"""Tests for Chrome trace / JSONL export and the run summary.

Includes the golden determinism test: two runs under the same seed must
produce byte-identical Chrome trace JSON.
"""

import json

import pytest

from repro.core import BoincMRConfig, MapReduceJobSpec, VolunteerCloud
from repro.obs import SpanBuilder, chrome_trace_json, run_summary, trace_to_jsonl
from repro.sim import Tracer

from .test_spans import emit_task


def small_cloud_trace(seed=3):
    cloud = VolunteerCloud(seed=seed, mr_config=BoincMRConfig())
    cloud.add_volunteers(6, mr=True)
    cloud.attach_observability(spans=True, probes=True, profile=True)
    cloud.run_job(MapReduceJobSpec("wc", n_maps=6, n_reducers=2,
                                   input_size=60e6))
    cloud.finish_observability()
    return cloud


class TestChromeTrace:
    def test_document_is_valid_and_complete(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        emit_task(tracer, rid=1)
        builder.finish(100.0)
        doc = json.loads(chrome_trace_json(builder))
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        # Metadata names both processes and the host thread.
        metas = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metas}
        assert {"volunteer hosts", "project server", "h0"} <= names
        # Complete events carry microsecond timestamps and durations.
        spans = [e for e in events if e["ph"] == "X"]
        parent = next(e for e in spans if e["cat"] == "result")
        assert parent["ts"] == 0.0 and parent["dur"] == pytest.approx(30e6)
        children = {e["name"] for e in spans if e["cat"] == "phase"}
        assert children == {"download", "compute", "upload", "report-wait"}

    def test_leaked_span_marked_in_args(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(0.0, "sched.assign", host="h0", result=1, wu=1)
        builder.finish(10.0)
        doc = json.loads(chrome_trace_json(builder))
        leaked = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["args"].get("leaked")]
        assert leaked

    def test_end_to_end_contains_complete_span_per_finished_task(self):
        cloud = small_cloud_trace()
        doc = json.loads(chrome_trace_json(cloud.span_builder))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        results = [e for e in spans if e["cat"] == "result"]
        reported = len(cloud.tracer.select("sched.report"))
        assert len(results) == reported > 0
        # Every result span has the full download->compute->upload chain.
        by_tid = {}
        for e in spans:
            if e["cat"] == "phase":
                by_tid.setdefault((e["tid"], e["name"]), 0)
                by_tid[(e["tid"], e["name"])] += 1
        assert any(name == "compute" for _tid, name in by_tid)

    def test_golden_determinism_byte_identical(self):
        a = chrome_trace_json(small_cloud_trace(seed=5).span_builder)
        b = chrome_trace_json(small_cloud_trace(seed=5).span_builder)
        assert a == b

    def test_different_seeds_differ(self):
        a = chrome_trace_json(small_cloud_trace(seed=5).span_builder)
        b = chrome_trace_json(small_cloud_trace(seed=6).span_builder)
        assert a != b


class TestJsonl:
    def test_one_object_per_record(self):
        tracer = Tracer()
        tracer.record(1.0, "sched.rpc", host="h0", work_req=1.0)
        tracer.record(2.0, "client.backoff", host="h0", count=1, delay=60.0)
        lines = trace_to_jsonl(tracer).strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"time": 1.0, "kind": "sched.rpc", "host": "h0",
                         "work_req": 1.0}

    def test_payload_kind_does_not_clobber_record_kind(self):
        tracer = Tracer()
        tracer.record(0.0, "sched.assign", host="h0", result=1, wu=1,
                      job="wc", kind="map", index=0)
        row = json.loads(trace_to_jsonl(tracer))
        assert row["kind"] == "sched.assign"
        assert row["field.kind"] == "map"

    def test_kind_filter(self):
        tracer = Tracer()
        tracer.record(1.0, "a")
        tracer.record(2.0, "b")
        assert trace_to_jsonl(tracer, kinds=["b"]).count("\n") == 1

    def test_empty_trace_is_empty_string(self):
        assert trace_to_jsonl(Tracer()) == ""


class TestRunSummary:
    def test_reports_counts_metrics_leaks_and_profile(self):
        cloud = small_cloud_trace()
        text = run_summary(cloud.tracer, metrics=cloud.metrics,
                           builder=cloud.span_builder,
                           profiler=cloud.profiler)
        assert "trace records:" in text
        assert "sched.rpc_total" in text
        assert "leaked" in text
        assert "engine self-profile" in text
        assert "process:" in text  # at least one process kind in the top-5

    def test_leaked_spans_listed(self):
        tracer = Tracer()
        builder = SpanBuilder(tracer)
        tracer.record(0.0, "sched.assign", host="h0", result=1, wu=1)
        builder.finish(25.0)
        text = run_summary(tracer, builder=builder)
        assert "LEAKED" in text and "25.0s" in text
