"""Additional property-based tests: overlay balance, XML round-trips,
peer-store invariants, corpus structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boinc.model import FileRef
from repro.core import BoincMRConfig, MapReduceJobSpec, PeerStore
from repro.core.xmlconfig import dump_jobtracker_xml, load_jobtracker_xml
from repro.net import EMULAB_LINK, NatBox, NatType, Network, SupernodeOverlay
from repro.sim import Simulator

# ---------------------------------------------------------------------------
# Supernode overlay invariants
# ---------------------------------------------------------------------------

population = st.lists(st.booleans(), min_size=2, max_size=25).filter(any)


@given(population, st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=50)
def test_overlay_attachment_invariants(public_flags, n_supernodes, fanout):
    net = Network(Simulator())
    hosts = []
    for i, is_public in enumerate(public_flags):
        nat = None if is_public else NatBox(nat_type=NatType.SYMMETRIC)
        hosts.append(net.add_host(f"h{i:02d}", EMULAB_LINK, nat=nat))
    overlay = SupernodeOverlay(hosts, n_supernodes=n_supernodes, fanout=fanout)
    # 1. Every supernode is publicly reachable.
    for sn in overlay.supernodes:
        assert sn.nat is None or sn.nat.accepts_inbound()
    # 2. Every host resolves to >= 1 supernode, and relays always resolve.
    for h in hosts:
        assert overlay.supernodes_of(h)
        relay = overlay.pick_relay(h, hosts[0])
        assert relay in overlay.supernodes
    # 3. Attachment load is balanced within one unit.
    counts = overlay.attachment_counts().values()
    assert max(counts) - min(counts) <= 1


# ---------------------------------------------------------------------------
# mr_jobtracker.xml round trip
# ---------------------------------------------------------------------------

config_strategy = st.builds(
    BoincMRConfig,
    reduce_from_peers=st.booleans(),
    upload_map_outputs=st.just(True),
    serve_timeout_s=st.floats(min_value=1.0, max_value=1e6),
    peer_retries=st.integers(min_value=0, max_value=9),
    peer_failure_rate=st.floats(min_value=0.0, max_value=1.0),
    reduce_creation_fraction=st.floats(min_value=0.01, max_value=1.0),
)

spec_strategy = st.builds(
    MapReduceJobSpec,
    name=st.text(alphabet="abcdefgh", min_size=1, max_size=10),
    n_maps=st.integers(min_value=1, max_value=100),
    n_reducers=st.integers(min_value=1, max_value=20),
    input_size=st.floats(min_value=1.0, max_value=1e10),
    replication=st.just(2),
    quorum=st.just(2),
)


@given(config_strategy, st.lists(spec_strategy, max_size=3))
@settings(max_examples=50)
def test_xml_round_trip(config, specs):
    # unique job names required by nothing in the XML layer, but keep sane
    text = dump_jobtracker_xml(config, specs)
    config2, specs2 = load_jobtracker_xml(text)
    assert config2.reduce_from_peers == config.reduce_from_peers
    assert config2.peer_retries == config.peer_retries
    assert config2.serve_timeout_s == pytest.approx(config.serve_timeout_s)
    assert config2.reduce_creation_fraction == pytest.approx(
        config.reduce_creation_fraction)
    assert len(specs2) == len(specs)
    for a, b in zip(specs, specs2):
        assert (a.name, a.n_maps, a.n_reducers) == (b.name, b.n_maps,
                                                    b.n_reducers)
        assert b.input_size == pytest.approx(a.input_size)


# ---------------------------------------------------------------------------
# Peer store invariants under arbitrary operation sequences
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["serve", "get", "renew", "stop", "advance"]),
              st.integers(min_value=0, max_value=4),
              st.floats(min_value=0.0, max_value=200.0)),
    max_size=60,
)


@given(ops)
@settings(max_examples=60)
def test_peer_store_never_serves_expired(operations):
    sim = Simulator()
    store = PeerStore(sim, serve_timeout_s=100.0)
    served_at: dict[str, float] = {}
    for op, idx, amount in operations:
        name = f"f{idx}"
        if op == "serve":
            store.serve(FileRef(name, 1.0), job="j")
            served_at[name] = sim.now
        elif op == "get":
            try:
                store.get(name)
                # Success implies within the window of its last serve/renew.
                assert store.available(name)
            except KeyError:
                assert not store.available(name)
        elif op == "renew":
            renewed = store.renew(name)
            assert renewed == (name in store._files)
            if renewed:
                served_at[name] = sim.now
        elif op == "stop":
            store.stop_job("j")
            served_at.clear()
        elif op == "advance":
            sim.schedule(amount, lambda: None)
            sim.run()
    for name, t in served_at.items():
        expected = sim.now <= t + 100.0
        assert store.available(name) == expected


# ---------------------------------------------------------------------------
# Corpus generator structure
# ---------------------------------------------------------------------------

@given(st.integers(min_value=100, max_value=30_000),
       st.integers(min_value=1, max_value=500),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25)
def test_corpus_structure(target, vocab, seed):
    from repro.workloads import generate_corpus

    corpus = generate_corpus(target, vocabulary_size=vocab, seed=seed)
    assert len(corpus) >= target
    assert corpus.endswith(b"\n")
    words = set(corpus.split())
    assert 0 < len(words) <= vocab
