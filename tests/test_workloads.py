"""Unit tests for corpus generation."""

import collections

import numpy as np
import pytest

from repro.workloads import generate_corpus, make_vocabulary, tag_documents, zipf_weights


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = make_vocabulary(500, np.random.default_rng(0))
        assert len(vocab) == 500
        assert len(set(vocab)) == 500

    def test_deterministic(self):
        a = make_vocabulary(100, np.random.default_rng(1))
        b = make_vocabulary(100, np.random.default_rng(1))
        assert a == b

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_vocabulary(0, np.random.default_rng(0))


class TestZipfWeights:
    def test_normalised(self):
        w = zipf_weights(100)
        assert w.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, s=1.2)
        assert all(w[i] >= w[i + 1] for i in range(49))

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, s=0)


class TestCorpus:
    def test_size_close_to_target(self):
        corpus = generate_corpus(50_000, seed=0)
        assert 50_000 <= len(corpus) <= 50_000 + 200

    def test_deterministic(self):
        assert generate_corpus(10_000, seed=4) == generate_corpus(10_000, seed=4)

    def test_seeds_differ(self):
        assert generate_corpus(10_000, seed=1) != generate_corpus(10_000, seed=2)

    def test_line_structure(self):
        corpus = generate_corpus(20_000, words_per_line=8, seed=0)
        lines = corpus.splitlines()
        assert all(len(line.split()) == 8 for line in lines)
        assert corpus.endswith(b"\n")

    def test_zipf_skew_visible(self):
        corpus = generate_corpus(200_000, vocabulary_size=1000, seed=0)
        counts = collections.Counter(corpus.split()).most_common()
        top_share = sum(c for _w, c in counts[:10]) / sum(c for _w, c in counts)
        assert top_share > 0.2  # heavy head, as in natural language

    def test_vocabulary_respected(self):
        corpus = generate_corpus(30_000, vocabulary_size=50, seed=0)
        assert len(set(corpus.split())) <= 50

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            generate_corpus(0)


class TestTagDocuments:
    def test_tab_separated(self):
        tagged = tag_documents(b"a b\nc d\ne f\ng h\n", n_docs=2)
        lines = tagged.splitlines()
        assert len(lines) == 4
        assert all(b"\t" in line for line in lines)
        docs = {line.split(b"\t")[0] for line in lines}
        assert len(docs) == 2

    def test_invalid_docs(self):
        with pytest.raises(ValueError):
            tag_documents(b"x\n", 0)
