"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "9", "table1"])
        assert args.seed == 9

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert (args.nodes, args.maps, args.reducers) == (20, 20, 5)
        assert not args.mr
        assert args.trace_out is None and args.trace_format == "chrome"

    def test_trace_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace-format", "svg"])

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.sample_period == 30.0


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--nodes", "6", "--maps", "6", "--reducers", "2",
                     "--input-gb", "0.06"]) == 0
        out = capsys.readouterr().out
        assert "total" in out and "map" in out

    def test_run_mr_command(self, capsys):
        assert main(["run", "--mr", "--nodes", "6", "--maps", "6",
                     "--reducers", "2", "--input-gb", "0.06"]) == 0
        assert "total" in capsys.readouterr().out

    def test_wordcount_command(self, capsys):
        assert main(["wordcount", "--size-mb", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "verified against collections.Counter" in out

    def test_fig4_command(self, capsys):
        assert main(["fig4", "--width", "40"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_nat_command(self, capsys):
        assert main(["nat"]) == 0
        out = capsys.readouterr().out
        assert "full_ladder" in out

    def test_churn_command(self, capsys):
        assert main(["--seed", "3", "churn", "--mean-on", "1800",
                     "--mean-off", "600", "--departures", "0.05"]) == 0
        assert "transitions" in capsys.readouterr().out

    def test_planetlab_command(self, capsys):
        assert main(["planetlab"]) == 0
        out = capsys.readouterr().out
        assert "lan_mr" in out and "planetlab_mr" in out

    def test_ablations_command(self, capsys):
        assert main(["ablations"]) == 0
        assert "report_immediately" in capsys.readouterr().out


class TestObservabilityCommands:
    RUN = ["run", "--mr", "--nodes", "6", "--maps", "6", "--reducers", "2",
           "--input-gb", "0.06"]

    def test_run_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main([*self.RUN, "--trace-out", str(out)]) == 0
        assert "wrote chrome trace" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "X", "i"}
        assert any(e["ph"] == "X" and e["cat"] == "result"
                   for e in doc["traceEvents"])

    def test_run_trace_identical_across_same_seed_runs(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for p in paths:
            assert main(["--seed", "4", *self.RUN,
                         "--trace-out", str(p)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_run_jsonl_and_csv_formats(self, tmp_path):
        import json

        jl = tmp_path / "t.jsonl"
        assert main([*self.RUN, "--trace-out", str(jl),
                     "--trace-format", "jsonl"]) == 0
        first = json.loads(jl.read_text().splitlines()[0])
        assert "kind" in first and "time" in first

        cs = tmp_path / "t.csv"
        assert main([*self.RUN, "--trace-out", str(cs),
                     "--trace-format", "csv"]) == 0
        assert cs.read_text().splitlines()[0].startswith("time,kind")

    def test_metrics_command(self, capsys):
        assert main(["metrics", "--nodes", "6", "--maps", "6",
                     "--reducers", "2", "--input-gb", "0.06"]) == 0
        out = capsys.readouterr().out
        assert "sched.rpc_total" in out
        assert "daemon.transitioner.backlog" in out
        assert "engine self-profile" in out


class TestSeedHandling:
    """--seed is accepted (and validated) uniformly on every subcommand."""

    COMMANDS = ["table1", "fig4", "ablations", "nat", "churn", "planetlab",
                "run", "metrics", "wordcount", "chaos"]

    def test_every_subcommand_accepts_seed(self):
        for cmd in self.COMMANDS:
            args = build_parser().parse_args([cmd, "--seed", "7"])
            assert args.seed == 7, cmd

    def test_global_seed_reaches_subcommand(self):
        args = build_parser().parse_args(["--seed", "3", "run"])
        assert args.seed == 3

    def test_subcommand_seed_overrides_global(self):
        args = build_parser().parse_args(["--seed", "3", "run", "--seed", "9"])
        assert args.seed == 9

    def test_negative_seed_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--seed", "-2"])

    def test_non_integer_seed_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--seed", "banana", "table1"])


class TestCampaignCommand:
    def _toml_grid(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            'name = "naps"\n'
            '[[cell]]\n'
            'kind = "sleep"\n'
            'seeds = [1, 2]\n'
            'group = "naps"\n'
            'params = { duration_s = 0.0 }\n')
        return path

    def test_list_grids(self, capsys):
        assert main(["campaign", "--list-grids"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "churn" in out

    def test_run_resume_and_aggregate(self, tmp_path, capsys):
        grid = self._toml_grid(tmp_path)
        store = tmp_path / "naps.jsonl"
        assert main(["campaign", "--grid", str(grid), "--workers", "0",
                     "--out", str(store), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 ran, 0 skipped" in out
        assert main(["campaign", "--grid", str(grid), "--workers", "0",
                     "--out", str(store), "--quiet", "--resume"]) == 0
        assert "0 ran, 2 skipped" in capsys.readouterr().out
        assert main(["campaign", "--aggregate", str(store)]) == 0
        out = capsys.readouterr().out
        assert "naps" in out and "mean" in out

    def test_aggregate_missing_store_errors(self, tmp_path, capsys):
        missing = tmp_path / "absent.jsonl"
        assert main(["campaign", "--aggregate", str(missing)]) == 2
        assert "no such store" in capsys.readouterr().err


class TestCampaignControlPlane:
    """The distributed modes: coordinate / work / merge / diff."""

    def _toml_grid(self, tmp_path, n=4):
        path = tmp_path / "grid.toml"
        path.write_text(
            'name = "naps"\n'
            '[[cell]]\n'
            'kind = "sleep"\n'
            f'seeds = {list(range(1, n + 1))}\n'
            'group = "naps"\n'
            'params = { duration_s = 0.05 }\n')
        return path

    def test_coordinate_parser_defaults(self):
        args = build_parser().parse_args(["campaign", "coordinate"])
        assert args.mode == "coordinate"
        assert args.spawn == 3 and args.port == 0
        assert args.heartbeat == 0.5 and args.kill_workers == 0
        assert args.steal_after is None

    def test_legacy_campaign_mode_still_parses(self):
        args = build_parser().parse_args(["campaign", "--workers", "0"])
        assert args.mode is None and args.workers == 0

    def test_work_requires_address(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "work"])

    def test_work_rejects_bad_address(self, capsys):
        assert main(["campaign", "work", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_merge_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "merge", "a.jsonl"])

    def test_coordinate_merge_diff_roundtrip(self, tmp_path, capsys):
        grid = self._toml_grid(tmp_path)
        dist = tmp_path / "dist.jsonl"
        seq = tmp_path / "seq.jsonl"
        summary = tmp_path / "summary.json"
        assert main(["campaign", "coordinate", "--grid", str(grid),
                     "--out", str(dist), "--spawn", "2",
                     "--heartbeat", "0.2",
                     "--shard-dir", str(tmp_path / "shards"),
                     "--summary-out", str(summary), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "4 ran" in out and "wrote control-plane summary" in out
        assert main(["campaign", "--grid", str(grid), "--workers", "0",
                     "--out", str(seq), "--quiet"]) == 0
        capsys.readouterr()

        import json
        doc = json.loads(summary.read_text())
        assert doc["completed"] == 4 and doc["quarantined"] == []

        shards = sorted(str(p)
                        for p in (tmp_path / "shards").glob("*.jsonl"))
        assert len(shards) == 2
        merged = tmp_path / "merged.jsonl"
        assert main(["campaign", "merge", *shards,
                     "--out", str(merged)]) == 0
        assert "merged 2 shard(s)" in capsys.readouterr().out

        assert main(["campaign", "diff", str(dist), str(seq)]) == 0
        assert main(["campaign", "diff", str(merged), str(seq)]) == 0
        out = capsys.readouterr().out
        assert "result-equivalent" in out

    def test_diff_detects_divergence(self, tmp_path, capsys):
        from repro.campaign import CellRecord, ResultStore

        spec = {"kind": "sleep", "seed": 1, "params": {}, "faults": None,
                "group": "g"}
        ResultStore(tmp_path / "a.jsonl").append(CellRecord(
            key="k0", spec=spec, status="ok",
            result={"value": 1}, meta={}))
        ResultStore(tmp_path / "b.jsonl").append(CellRecord(
            key="k0", spec=spec, status="ok",
            result={"value": 2}, meta={}))
        assert main(["campaign", "diff", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 1
        assert "payloads differ" in capsys.readouterr().out

    def test_merge_refuses_self_merge(self, tmp_path, capsys):
        from repro.campaign import CellRecord, ResultStore

        shard = tmp_path / "shard.jsonl"
        ResultStore(shard).append(CellRecord(
            key="k0", spec={"kind": "sleep", "seed": 1, "params": {},
                            "faults": None, "group": "g"},
            status="ok", result={}, meta={}))
        assert main(["campaign", "merge", str(shard),
                     "--out", str(shard)]) == 2
        assert "itself" in capsys.readouterr().err


class TestChaosCommand:
    def test_list_plans(self, capsys):
        assert main(["chaos", "--list-plans"]) == 0
        out = capsys.readouterr().out
        assert "kitchen-sink" in out and "dataserver-degraded" in out

    def test_plan_required(self, capsys):
        assert main(["chaos"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_plan_raises(self):
        with pytest.raises(ValueError, match="unknown chaos plan"):
            main(["chaos", "no-such-plan"])

    def test_chaos_run_green(self, capsys, tmp_path):
        summary = tmp_path / "summary.json"
        trace = tmp_path / "trace.json"
        assert main(["chaos", "flaky-network", "--seed", "1",
                     "--summary-out", str(summary),
                     "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "fault(s) injected" in out

        import json
        doc = json.loads(summary.read_text())
        assert doc["audit"]["ok"] is True
        assert doc["job_done"] is True
        assert doc["faults"]
        assert trace.read_text().startswith("{")

    def test_run_with_faults_flag(self, capsys):
        assert main(["run", "--mr", "--nodes", "6", "--maps", "6",
                     "--reducers", "2", "--input-gb", "0.06",
                     "--faults", "flaky-network", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out and "audit" in out
