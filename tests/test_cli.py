"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "9", "table1"])
        assert args.seed == 9

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert (args.nodes, args.maps, args.reducers) == (20, 20, 5)
        assert not args.mr


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--nodes", "6", "--maps", "6", "--reducers", "2",
                     "--input-gb", "0.06"]) == 0
        out = capsys.readouterr().out
        assert "total" in out and "map" in out

    def test_run_mr_command(self, capsys):
        assert main(["run", "--mr", "--nodes", "6", "--maps", "6",
                     "--reducers", "2", "--input-gb", "0.06"]) == 0
        assert "total" in capsys.readouterr().out

    def test_wordcount_command(self, capsys):
        assert main(["wordcount", "--size-mb", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "verified against collections.Counter" in out

    def test_fig4_command(self, capsys):
        assert main(["fig4", "--width", "40"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_nat_command(self, capsys):
        assert main(["nat"]) == 0
        out = capsys.readouterr().out
        assert "full_ladder" in out

    def test_churn_command(self, capsys):
        assert main(["--seed", "3", "churn", "--mean-on", "1800",
                     "--mean-off", "600", "--departures", "0.05"]) == 0
        assert "transitions" in capsys.readouterr().out

    def test_planetlab_command(self, capsys):
        assert main(["planetlab"]) == 0
        out = capsys.readouterr().out
        assert "lan_mr" in out and "planetlab_mr" in out

    def test_ablations_command(self, capsys):
        assert main(["ablations"]) == 0
        assert "report_immediately" in capsys.readouterr().out
