"""Tests for CSV/JSON export and utilisation timelines."""

import csv
import io
import json

import pytest

from repro.analysis import (
    intervals_to_csv,
    job_metrics,
    metrics_to_dict,
    metrics_to_json,
    trace_to_csv,
    utilisation_timeline,
)
from repro.sim import Tracer
from tests.test_analysis import synth_trace


class TestTraceCsv:
    def test_roundtrip_columns(self):
        text = trace_to_csv(synth_trace())
        rows = list(csv.reader(io.StringIO(text)))
        header = rows[0]
        assert header[:2] == ["time", "kind"]
        assert "host" in header
        assert len(rows) == 1 + len(synth_trace().records)

    def test_kind_filter(self):
        text = trace_to_csv(synth_trace(), kinds=["task.ready"])
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 1 + 3
        assert all(r[1] == "task.ready" for r in rows[1:])

    def test_writes_to_stream(self):
        buf = io.StringIO()
        text = trace_to_csv(synth_trace(), out=buf)
        assert buf.getvalue() == text

    def test_empty_tracer(self):
        text = trace_to_csv(Tracer())
        assert text.splitlines() == ["time,kind"]


class TestIntervalsCsv:
    def test_rows_match_intervals(self):
        text = intervals_to_csv(synth_trace(), "j")
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3
        by_result = {r["result_id"]: r for r in rows}
        assert float(by_result["2"]["duration"]) == 400.0
        assert by_result["2"]["host"] == "B"


class TestMetricsJson:
    def test_dict_shape(self):
        d = metrics_to_dict(job_metrics(synth_trace(), "j"))
        assert d["job"] == "j"
        assert d["map"]["mean"] == pytest.approx(250.0)
        assert d["reduce"]["n_tasks"] == 1
        assert "transition_gap" in d

    def test_json_parses(self):
        text = metrics_to_json(job_metrics(synth_trace(), "j"))
        assert json.loads(text)["total"] == 600.0


class TestUtilisationTimeline:
    def test_bucketing(self):
        tr = Tracer()
        for t in (0.0, 10.0, 35.0, 65.0):
            tr.record(t, "sched.rpc", host="h")
        buckets = utilisation_timeline(tr, bucket_s=30.0)
        assert buckets == [(0.0, 2), (30.0, 1), (60.0, 1)]

    def test_empty_buckets_included(self):
        tr = Tracer()
        tr.record(0.0, "sched.rpc")
        tr.record(95.0, "sched.rpc")
        buckets = utilisation_timeline(tr, bucket_s=30.0)
        assert buckets[1] == (30.0, 0)
        assert buckets[2] == (60.0, 0)

    def test_empty_trace(self):
        assert utilisation_timeline(Tracer()) == []

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            utilisation_timeline(Tracer(), bucket_s=0)
