"""Tests for mr_jobtracker.xml parsing and serialisation."""

import pytest

from repro.core import BoincMRConfig, MapReduceJobSpec
from repro.core.xmlconfig import (
    ConfigError,
    dump_jobtracker_xml,
    load_jobtracker_xml,
)

SAMPLE = """
<mr_jobtracker>
  <config>
    <reduce_from_peers>1</reduce_from_peers>
    <upload_map_outputs>0</upload_map_outputs>
    <serve_timeout>7200</serve_timeout>
    <peer_retries>5</peer_retries>
  </config>
  <job>
    <name>wordcount</name>
    <n_maps>20</n_maps>
    <n_reducers>5</n_reducers>
    <input_size>1e9</input_size>
  </job>
  <job>
    <name>grep</name>
    <n_maps>10</n_maps>
    <n_reducers>2</n_reducers>
    <replication>3</replication>
    <quorum>2</quorum>
    <app_name>grep</app_name>
  </job>
</mr_jobtracker>
"""


class TestLoad:
    def test_parses_config(self):
        config, _jobs = load_jobtracker_xml(SAMPLE)
        assert config.reduce_from_peers is True
        assert config.upload_map_outputs is False
        assert config.serve_timeout_s == 7200.0
        assert config.peer_retries == 5

    def test_parses_jobs(self):
        _config, jobs = load_jobtracker_xml(SAMPLE)
        assert [j.name for j in jobs] == ["wordcount", "grep"]
        wc = jobs[0]
        assert (wc.n_maps, wc.n_reducers) == (20, 5)
        assert wc.input_size == 1e9
        assert wc.replication == 2  # default
        assert jobs[1].replication == 3

    def test_missing_config_uses_defaults(self):
        config, jobs = load_jobtracker_xml(
            "<mr_jobtracker><job><name>x</name><n_maps>1</n_maps>"
            "<n_reducers>1</n_reducers></job></mr_jobtracker>")
        assert config == BoincMRConfig()
        assert len(jobs) == 1

    def test_loads_from_file(self, tmp_path):
        path = tmp_path / "mr_jobtracker.xml"
        path.write_text(SAMPLE)
        config, jobs = load_jobtracker_xml(path)
        assert len(jobs) == 2

    def test_wrong_root_rejected(self):
        with pytest.raises(ConfigError, match="root"):
            load_jobtracker_xml("<boinc></boinc>")

    def test_invalid_xml_rejected(self):
        with pytest.raises(ConfigError, match="invalid XML"):
            load_jobtracker_xml("<mr_jobtracker>")

    def test_missing_required_job_field(self):
        with pytest.raises(ConfigError, match="n_maps"):
            load_jobtracker_xml(
                "<mr_jobtracker><job><name>x</name>"
                "<n_reducers>1</n_reducers></job></mr_jobtracker>")

    def test_bad_boolean_rejected(self):
        with pytest.raises(ConfigError, match="boolean"):
            load_jobtracker_xml(
                "<mr_jobtracker><config>"
                "<reduce_from_peers>maybe</reduce_from_peers>"
                "</config></mr_jobtracker>")

    def test_semantic_validation_propagates(self):
        with pytest.raises(ConfigError):
            load_jobtracker_xml(
                "<mr_jobtracker><job><name>x</name><n_maps>0</n_maps>"
                "<n_reducers>1</n_reducers></job></mr_jobtracker>")


class TestRoundTrip:
    def test_dump_and_load(self):
        config = BoincMRConfig(upload_map_outputs=True, peer_retries=7,
                               serve_timeout_s=1234.0)
        jobs = [MapReduceJobSpec("wc", n_maps=4, n_reducers=2,
                                 input_size=5e7, replication=3, quorum=2)]
        text = dump_jobtracker_xml(config, jobs)
        config2, jobs2 = load_jobtracker_xml(text)
        assert config2.upload_map_outputs == config.upload_map_outputs
        assert config2.peer_retries == config.peer_retries
        assert config2.serve_timeout_s == config.serve_timeout_s
        assert jobs2[0] == jobs[0]

    def test_parsed_spec_drives_a_real_run(self):
        from repro.core import VolunteerCloud

        xml = """
        <mr_jobtracker>
          <config><upload_map_outputs>1</upload_map_outputs></config>
          <job>
            <name>fromxml</name>
            <n_maps>4</n_maps>
            <n_reducers>2</n_reducers>
            <input_size>4e7</input_size>
          </job>
        </mr_jobtracker>
        """
        config, jobs = load_jobtracker_xml(xml)
        cloud = VolunteerCloud(seed=1, mr_config=config)
        cloud.add_volunteers(6, mr=True)
        job = cloud.run_job(jobs[0], timeout=24 * 3600)
        assert job.finished
