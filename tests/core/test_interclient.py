"""Unit tests for the peer-serving store (Section III.C semantics)."""

import pytest

from repro.boinc import FileRef
from repro.core import PeerStore
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def store(sim):
    return PeerStore(sim, serve_timeout_s=100.0)


class TestServing:
    def test_serve_and_get(self, store):
        store.serve(FileRef("f", 10), job="j")
        assert store.available("f")
        ref = store.get("f")
        assert ref.size == 10
        assert store.bytes_served == 10

    def test_unserved_file_unavailable(self, store):
        assert not store.available("nope")
        with pytest.raises(KeyError):
            store.get("nope")

    def test_timeout_expires_serving(self, sim, store):
        store.serve(FileRef("f", 10), job="j")
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert not store.available("f")
        with pytest.raises(KeyError, match="timeout"):
            store.get("f")

    def test_renew_resets_expiry_even_after_reached(self, sim, store):
        """Section III.C: "the map outputs' timeout is reset (even if it
        has already been reached in the meantime)"."""
        store.serve(FileRef("f", 10), job="j")
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert not store.available("f")
        assert store.renew("f") is True
        assert store.available("f")

    def test_renew_unknown_file(self, store):
        assert store.renew("nope") is False

    def test_renew_job_renews_all(self, sim, store):
        store.serve(FileRef("a", 1), job="j1")
        store.serve(FileRef("b", 1), job="j1")
        store.serve(FileRef("c", 1), job="j2")
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert store.renew_job("j1") == 2
        assert store.available("a") and store.available("b")
        assert not store.available("c")

    def test_stop_job_withdraws_files(self, store):
        store.serve(FileRef("a", 1), job="j1")
        store.serve(FileRef("b", 1), job="j2")
        assert store.stop_job("j1") == 1
        assert not store.available("a")
        assert store.available("b")

    def test_serving_count_excludes_expired(self, sim, store):
        store.serve(FileRef("a", 1), job="j")
        assert store.serving_count == 1
        sim.schedule(150.0, lambda: None)
        sim.run()
        store.serve(FileRef("b", 1), job="j")
        assert store.serving_count == 1

    def test_reserve_restarts_window(self, sim, store):
        store.serve(FileRef("f", 10), job="j")
        sim.schedule(90.0, lambda: store.serve(FileRef("f", 10), job="j"))
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert store.available("f")  # re-serve at t=90 extends to t=190

    def test_download_counter(self, store):
        store.serve(FileRef("f", 10), job="j")
        store.get("f")
        store.get("f")
        assert store._files["f"].downloads == 2

    def test_invalid_timeout(self, sim):
        with pytest.raises(ValueError):
            PeerStore(sim, serve_timeout_s=0)
