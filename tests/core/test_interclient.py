"""Unit tests for the peer-serving store (Section III.C semantics)."""

import pytest

from repro.boinc import FileRef
from repro.core import PeerStore
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def store(sim):
    return PeerStore(sim, serve_timeout_s=100.0)


class TestServing:
    def test_serve_and_get(self, store):
        store.serve(FileRef("f", 10), job="j")
        assert store.available("f")
        ref = store.get("f")
        assert ref.size == 10
        assert store.bytes_served == 10

    def test_unserved_file_unavailable(self, store):
        assert not store.available("nope")
        with pytest.raises(KeyError):
            store.get("nope")

    def test_timeout_expires_serving(self, sim, store):
        store.serve(FileRef("f", 10), job="j")
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert not store.available("f")
        with pytest.raises(KeyError, match="timeout"):
            store.get("f")

    def test_renew_resets_expiry_even_after_reached(self, sim, store):
        """Section III.C: "the map outputs' timeout is reset (even if it
        has already been reached in the meantime)"."""
        store.serve(FileRef("f", 10), job="j")
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert not store.available("f")
        assert store.renew("f") is True
        assert store.available("f")

    def test_renew_unknown_file(self, store):
        assert store.renew("nope") is False

    def test_renew_job_renews_all(self, sim, store):
        store.serve(FileRef("a", 1), job="j1")
        store.serve(FileRef("b", 1), job="j1")
        store.serve(FileRef("c", 1), job="j2")
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert store.renew_job("j1") == 2
        assert store.available("a") and store.available("b")
        assert not store.available("c")

    def test_stop_job_withdraws_files(self, store):
        store.serve(FileRef("a", 1), job="j1")
        store.serve(FileRef("b", 1), job="j2")
        assert store.stop_job("j1") == 1
        assert not store.available("a")
        assert store.available("b")

    def test_serving_count_excludes_expired(self, sim, store):
        store.serve(FileRef("a", 1), job="j")
        assert store.serving_count == 1
        sim.schedule(150.0, lambda: None)
        sim.run()
        store.serve(FileRef("b", 1), job="j")
        assert store.serving_count == 1

    def test_reserve_restarts_window(self, sim, store):
        store.serve(FileRef("f", 10), job="j")
        sim.schedule(90.0, lambda: store.serve(FileRef("f", 10), job="j"))
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert store.available("f")  # re-serve at t=90 extends to t=190

    def test_download_counter(self, store):
        store.serve(FileRef("f", 10), job="j")
        store.get("f")
        store.get("f")
        assert store._files["f"].downloads == 2

    def test_invalid_timeout(self, sim):
        with pytest.raises(ValueError):
            PeerStore(sim, serve_timeout_s=0)


class TestEviction:
    def test_evict_withdraws_file(self, store):
        store.serve(FileRef("f", 10), job="j")
        assert store.evict("f") is True
        assert not store.available("f")
        with pytest.raises(KeyError):
            store.get("f")
        assert store.evictions == 1

    def test_evict_unknown_or_already_evicted(self, store):
        assert store.evict("nope") is False
        store.serve(FileRef("f", 10), job="j")
        store.evict("f")
        assert store.evict("f") is False  # concurrent downloader lost the race
        assert store.evictions == 1

    def test_evicted_file_can_be_reserved(self, store):
        """A mapper re-serving after eviction starts a clean window."""
        store.serve(FileRef("f", 10), job="j")
        store.evict("f")
        store.serve(FileRef("f", 10), job="j")
        assert store.available("f")
        assert store.renew("f") is True


class TestExpiryRaces:
    def test_expiry_mid_download_does_not_kill_the_transfer(self, sim, store):
        """The serving window gates *lookups*, not in-flight transfers: a
        download that called get() just inside the window completes even
        though the timeout expires while its bytes are still moving."""
        import numpy as np

        from repro.net import (EMULAB_LINK, PUBLIC, ConnectivityPolicy,
                               Network, TransferEndpoint, TraversalConfig,
                               peer_download)

        net = Network(sim)
        a = net.add_host("mapper", EMULAB_LINK, nat=PUBLIC)
        b = net.add_host("reducer", EMULAB_LINK, nat=PUBLIC)
        src, dst = TransferEndpoint(sim, a), TransferEndpoint(sim, b)
        policy = ConnectivityPolicy(TraversalConfig(direct_setup_s=0.0),
                                    rng=np.random.default_rng(0))
        store.serve(FileRef("part0", 12.5e6), job="j")

        def reducer():
            yield sim.timeout(99.5)        # just inside the 100 s window
            ref = store.get("part0")       # lookup succeeds...
            rec = yield sim.process(peer_download(
                sim, net, policy, src, dst, ref.size))
            return rec

        proc = sim.process(reducer())
        sim.run()
        # ...the window expired mid-flight (the ~1 s transfer crossed
        # t=100), yet the download finished intact.
        assert proc.value.ok
        assert sim.now > 100.0
        assert not store.available("part0")

    def test_expired_entry_still_evictable(self, sim, store):
        store.serve(FileRef("f", 10), job="j")
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert not store.available("f")
        assert store.evict("f") is True  # corrupt + expired: still purged
